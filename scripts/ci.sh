#!/usr/bin/env bash
# Local CI: the exact gate a change must pass before merging.
#
# Offline-safe: pass --offline (or set CARGO_NET_OFFLINE=true) to forbid
# network access; the build then uses only vendored/cached dependencies.

set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
for arg in "$@"; do
    case "$arg" in
    --offline) CARGO_FLAGS+=(--offline) ;;
    *)
        echo "usage: scripts/ci.sh [--offline]" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    local t0=$SECONDS
    "$@"
    echo "    ($(($SECONDS - t0))s) $1 ${2-}"
}

run cargo build --release --workspace "${CARGO_FLAGS[@]}"
run cargo test --workspace -q "${CARGO_FLAGS[@]}"
# In-tree static analysis (NaN ordering, panic freedom, paper constants);
# offline-safe and fast, so it runs before the slower clippy pass. The
# --fixtures pass lints the linter itself against seeded violations.
run cargo run -p xtask "${CARGO_FLAGS[@]}" -- lint
run cargo run -p xtask "${CARGO_FLAGS[@]}" -- lint --fixtures
# Streaming-ingest smoke: replays the Tiny world day by day through the
# incremental engine; exercises the same path the batch_streaming_parity
# tests pin down, from the CLI.
run cargo run --release -p dlinfma-cli "${CARGO_FLAGS[@]}" -- replay --preset dowbj --scale tiny
# Machine-readable pipeline timing artifact (prepare + per-day ingest).
run cargo run --release -p dlinfma-bench "${CARGO_FLAGS[@]}" --bin bench_pipeline -- BENCH_pipeline.json
run cargo fmt --all --check
run cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

echo "ci: all green"
