#!/usr/bin/env bash
# Local CI: the exact gate a change must pass before merging.
#
# Offline-safe: pass --offline (or set CARGO_NET_OFFLINE=true) to forbid
# network access; the build then uses only vendored/cached dependencies.
#
# --quick runs the short loop (build + test + in-tree lint) for inner-dev
# iteration; the full run adds the replay smoke, the pipeline timing
# artifact with its regression gate, rustfmt, and clippy.

set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
QUICK=0
for arg in "$@"; do
    case "$arg" in
    --offline) CARGO_FLAGS+=(--offline) ;;
    --quick) QUICK=1 ;;
    *)
        echo "usage: scripts/ci.sh [--offline] [--quick]" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    local t0=$SECONDS
    "$@"
    echo "    ($(($SECONDS - t0))s) $1 ${2-}"
}

run cargo build --release --workspace "${CARGO_FLAGS[@]}"
run cargo test --workspace -q "${CARGO_FLAGS[@]}"
# In-tree static analysis (NaN ordering, panic freedom, paper constants,
# unpooled threads, and the L9-L12 determinism audit); offline-safe and
# fast, so it runs before the slower clippy pass. The --json invocation is
# the gate: it writes the machine-readable findings report (uploaded as a
# CI artifact) and prints the per-rule timing table to stderr. The
# --fixtures pass lints the linter itself against seeded violations.
echo "==> cargo run -p xtask -- lint --json (> LINT_report.json)"
cargo run -p xtask "${CARGO_FLAGS[@]}" -- lint --json > LINT_report.json ||
    { cargo run -p xtask "${CARGO_FLAGS[@]}" -- lint; exit 1; }
run cargo run -p xtask "${CARGO_FLAGS[@]}" -- lint --fixtures

# Fleet-mode smoke: the Tiny replay partitioned over two station shards,
# driven end to end from the CLI (`--shards` → ShardedEngine). The merged
# totals it prints must match the single-engine replay's — the shard-count
# parity tests pin that bit-for-bit; this exercises the same path from the
# binary.
run cargo run --release -p dlinfma-cli "${CARGO_FLAGS[@]}" -- replay --preset dowbj --scale tiny --shards 2

# Durable-snapshot round trip: replay Tiny, write one checkpoint, read it
# back (CRC-validated) and require the re-encode to be byte-identical.
# Cheap enough for the quick loop; the full loop adds the resume-parity
# and byte-determinism smokes below.
rm -rf SNAP_quick
run cargo run --release -p dlinfma-cli "${CARGO_FLAGS[@]}" -- checkpoint --preset dowbj --scale tiny --snapshot-dir SNAP_quick

if [[ $QUICK -eq 1 ]]; then
    echo "ci: quick loop green (build + test + lint + 2-shard replay + snapshot round trip)"
    exit 0
fi

# Checkpoint/resume smoke: replay Tiny checkpointing every 2 days, copy
# the day-2 checkpoint into a fresh directory, resume from it, and require
# (a) the resumed run's printed stay/candidate/sample totals to match the
# cold run's (timings excluded — they are not deterministic) and (b) every
# checkpoint file the resumed run re-writes to be byte-identical to the
# cold run's. This drives the resume-parity invariant end to end from the
# release binary.
echo "==> checkpoint/resume smoke"
rm -rf SNAP_replay SNAP_resume
cold_line=$(cargo run --release -p dlinfma-cli "${CARGO_FLAGS[@]}" -- replay --preset dowbj --scale tiny --snapshot-dir SNAP_replay --checkpoint-every 2 | tail -1)
mkdir -p SNAP_resume
cp -r SNAP_replay/day-00002 SNAP_resume/
warm_line=$(cargo run --release -p dlinfma-cli "${CARGO_FLAGS[@]}" -- resume --preset dowbj --scale tiny --snapshot-dir SNAP_resume --checkpoint-every 2 | tail -1)
cold_totals=$(grep -o '[0-9]* stays, [0-9]* candidates, [0-9]* sampled addresses' <<<"$cold_line")
warm_totals=$(grep -o '[0-9]* stays, [0-9]* candidates, [0-9]* sampled addresses' <<<"$warm_line")
if [[ -z $cold_totals || "$cold_totals" != "$warm_totals" ]]; then
    echo "ci: resumed totals diverge from the cold run" >&2
    echo "  cold: $cold_line" >&2
    echo "  warm: $warm_line" >&2
    exit 1
fi
last_day=$(ls SNAP_replay | sort | tail -1)
for f in "SNAP_replay/$last_day"/*; do
    cmp "$f" "SNAP_resume/$last_day/$(basename "$f")" || {
        echo "ci: resumed checkpoint $f diverges from the cold run" >&2
        exit 1
    }
done
echo "    resume smoke green ($cold_totals; $last_day byte-identical)"

# Snapshot byte determinism: two independent cold replays — at different
# worker counts — must produce byte-identical checkpoint trees. diff -r
# also catches a missing or extra file, not just differing bytes.
echo "==> snapshot byte determinism"
rm -rf SNAP_det_a SNAP_det_b
cargo run --release -p dlinfma-cli "${CARGO_FLAGS[@]}" -- replay --preset dowbj --scale tiny --snapshot-dir SNAP_det_a --checkpoint-every 2 > /dev/null
cargo run --release -p dlinfma-cli "${CARGO_FLAGS[@]}" -- replay --preset dowbj --scale tiny --workers 1 --snapshot-dir SNAP_det_b --checkpoint-every 2 > /dev/null
diff -r SNAP_det_a SNAP_det_b || {
    echo "ci: snapshot bytes differ between identical replays" >&2
    exit 1
}
echo "    determinism green (checkpoint trees byte-identical across worker counts)"

# Streaming-ingest smoke: replays the Tiny world day by day through the
# incremental engine with tracing on; exercises the same path the
# batch_streaming_parity tests pin down, from the CLI. The metrics export
# and the Chrome trace are CI artifacts; trace-check validates the trace's
# golden shape (matched B/E pairs per thread, monotonic timestamps).
run cargo run --release -p dlinfma-cli "${CARGO_FLAGS[@]}" -- replay --preset dowbj --scale tiny --metrics-out METRICS_report.json --trace-out TRACE_replay.json
run cargo run -p xtask "${CARGO_FLAGS[@]}" -- trace-check TRACE_replay.json
# Machine-readable pipeline timing artifact (prepare + workers sweep +
# per-day ingest), gated against the committed baseline. The gate compares
# calibrated ratios (prepare time / in-process calibration workload), so it
# is comparable across machines; it fails on a >30% regression — a
# tolerance that absorbs shared-runner scheduler noise without hiding a
# real slowdown (see GATE_TOLERANCE in bench_pipeline.rs).
run cargo run --release -p dlinfma-bench "${CARGO_FLAGS[@]}" --bin bench_pipeline -- BENCH_pipeline.json --gate BENCH_baseline.json
# Serving smoke + latency artifact: boots the HTTP server, replays the
# Tiny world through the background ingest thread, and hammers it with
# closed-loop clients plus an open-loop arrival stream while epochs are
# being published live. Every response is checked for epoch consistency
# (a backwards epoch or non-OK status fails the run) and the server must
# shut down cleanly. The calibrated mean-latency gate is a loose 3x —
# a smoke alarm for order-of-magnitude serving regressions, not a
# microbenchmark (see SERVE_GATE_TOLERANCE in bench_serve.rs).
run cargo run --release -p dlinfma-bench "${CARGO_FLAGS[@]}" --bin bench_serve -- BENCH_serve.json --gate BENCH_serve_baseline.json
run cargo fmt --all --check
run cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

echo "ci: all green"
