//! Offline stand-in for the `parking_lot` 0.12 crate.
//!
//! Wraps `std::sync` locks with parking_lot's panic-free, non-poisoning
//! API (`lock()` / `read()` / `write()` return guards directly). A thread
//! panicking while holding a lock does not poison it: the wrapper recovers
//! the inner guard from the poison error, matching parking_lot semantics.
//! Substituted for the real crate via `[patch.crates-io]` because the build
//! container has no registry access.

use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
