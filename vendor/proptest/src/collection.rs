//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for [`vec`]: either fixed or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec strategy: empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec strategy: empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy generating a `Vec` whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
