//! Offline stand-in for the `proptest` 1.x crate.
//!
//! The build container has no registry access, so the workspace patches
//! `proptest` to this crate (see `[patch.crates-io]` in the root manifest).
//! It implements the subset the workspace's tests use: the [`proptest!`]
//! macro, `prop_assert!` / `prop_assert_eq!`, range and tuple strategies,
//! `proptest::collection::vec`, `.prop_map`, `Just`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design of a stand-in:
//! - deterministic per-test seeding (derived from the test name) rather
//!   than OS entropy + a persisted regression file;
//! - no shrinking: a failing case reports the panic from the original
//!   sampled inputs.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test entry point; mirrors `proptest::proptest!`.
///
/// Each `fn name(pat in strategy, ...) { body }` expands to a `fn` that
/// samples every strategy `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` without shrinking is just `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` without shrinking is just `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` without shrinking is just `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, f64)> {
        (-10.0..10.0f64, 0.0..1.0f64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0..5.0f64, n in 1u8..=12, mut k in 0usize..9) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..=12).contains(&n));
            k += 1;
            prop_assert!(k >= 1 && k < 10);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            pts in crate::collection::vec((-1.0..1.0f64, -2.0..2.0f64), 0..20),
            pair in arb_pair(),
        ) {
            prop_assert!(pts.len() < 20);
            for (a, b) in &pts {
                prop_assert!(a.abs() <= 1.0 && b.abs() <= 2.0);
            }
            prop_assert!(pair.0.abs() <= 10.0);
        }

        #[test]
        fn prop_map_transforms(v in crate::collection::vec(0.0..1.0f64, 3..6).prop_map(|v| v.len())) {
            prop_assert!((3..6).contains(&v));
        }

        #[test]
        fn just_yields_constant(v in Just(41)) {
            prop_assert_eq!(v + 1, 42);
        }
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }
}
