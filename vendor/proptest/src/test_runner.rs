//! Test configuration and the deterministic generator behind the stub.

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default; properties here are cheap enough.
        Self { cases: 256 }
    }
}

/// Deterministic xoshiro256++ generator seeded from the test name, so runs
/// are reproducible without a persisted regression file.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Generator seeded from `name` (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        let mut seed = h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut seed);
        }
        Self { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `0..span` (rejection sampled, no modulo bias).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}
