//! Value-generation strategies: ranges, tuples, `Just`, and `prop_map`.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_strategy!(f32, f64);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// `&S` delegates, so strategies stored in locals can be reused by reference.
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}
