//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build container has no registry access, so the workspace patches
//! `rand` to this crate (see `[patch.crates-io]` in the root manifest). It
//! implements exactly the API surface the workspace uses — `Rng::gen_range`
//! / `gen` / `gen_bool`, `SeedableRng::seed_from_u64`, `rngs::StdRng`,
//! `rngs::ThreadRng` + [`thread_rng`], and `seq::SliceRandom` — on top of a
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`, so any
//! golden values derived from upstream seeds will not match; the workspace's
//! tests assert statistical properties rather than exact streams.

pub mod rngs;
pub mod seq;

/// A generator of a stream of `u64`s; everything else derives from this.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a [`Rng`] can sample uniformly via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a [`Rng`] can sample uniformly via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `0..span` by rejection sampling (no modulo bias).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % span);
    loop {
        let v = u128::from(rng.next_u64());
        if v < zone {
            return v % span;
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample(self)
    }

    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-independent fallback entropy (the
    /// address-space layout plus a process-global counter).
    fn from_entropy() -> Self {
        Self::seed_from_u64(rngs::entropy_seed())
    }
}

/// A fresh [`rngs::ThreadRng`].
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniform_ints_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 9];
        for _ in 0..1_000 {
            let v = rng.gen_range(-4i64..=4);
            seen[(v + 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
