//! Sequence helpers: the subset of `rand::seq` the workspace uses.

use crate::{Rng, RngCore};

/// Slice shuffling and random element selection.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` when empty.
    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
