//! Concrete generators: the seedable [`StdRng`] and per-thread
//! [`ThreadRng`], both xoshiro256++ under the hood.

use crate::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64 step; used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++: fast, full-period 2^256-1, passes BigCrush. A stand-in for
/// upstream `StdRng` (ChaCha12); streams differ from upstream by design.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut seed: u64) -> Self {
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut seed);
        }
        // The all-zero state is a fixed point; SplitMix64 cannot emit four
        // consecutive zeros, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = 1;
        }
        Self { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_state(seed)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

static ENTROPY_COUNTER: AtomicU64 = AtomicU64::new(0x5DEE_CE66);

/// Weak process-local entropy: a global counter mixed with a stack address
/// (ASLR). Good enough for a non-cryptographic default generator.
pub(crate) fn entropy_seed() -> u64 {
    let stack_probe = 0u8;
    let addr = std::ptr::addr_of!(stack_probe) as u64;
    let mut state = ENTROPY_COUNTER
        .fetch_add(0x9E37_79B9, Ordering::Relaxed)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        ^ addr;
    splitmix64(&mut state)
}

/// The default generator handed out by [`crate::thread_rng`].
#[derive(Debug, Clone)]
pub struct ThreadRng {
    inner: StdRng,
}

impl ThreadRng {
    pub(crate) fn new() -> Self {
        Self {
            inner: StdRng::seed_from_u64(entropy_seed()),
        }
    }
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn thread_rngs_differ() {
        let mut a = ThreadRng::new();
        let mut b = ThreadRng::new();
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
