//! Offline stand-in for the `criterion` 0.5 crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `Throughput`, `BatchSize`, `black_box`
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! measurement loop (fixed warm-up, then per-sample medians) instead of
//! criterion's statistical machinery. Substituted for the real crate via
//! `[patch.crates-io]` because the build container has no registry access.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup; the stub treats all variants alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Throughput annotation attached to a group (printed, not analysed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last run, for reporting.
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up plus auto-scaled iteration count targeting ~10ms/sample.
        let once = time_once(&mut routine);
        let per_sample = iters_for(once);
        let mut medians: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            medians.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        self.result_ns = median(&mut medians);
    }

    /// Times `routine` over values produced by `setup`, excluding setup time
    /// only at batch granularity (the stub times whole batches).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut medians: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            medians.push(t.elapsed().as_nanos() as f64);
        }
        self.result_ns = median(&mut medians);
    }
}

fn time_once<O, R: FnMut() -> O>(routine: &mut R) -> Duration {
    let t = Instant::now();
    black_box(routine());
    t.elapsed()
}

fn iters_for(once: Duration) -> u64 {
    let target = Duration::from_millis(10).as_nanos();
    let once = once.as_nanos().max(1);
    (target / once).clamp(1, 100_000) as u64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    if xs.is_empty() {
        0.0
    } else {
        xs[xs.len() / 2]
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            println!(
                "{name:<50} {time:>12}  ({:.0} elem/s)",
                n as f64 / (ns / 1e9)
            );
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            println!("{name:<50} {time:>12}  ({:.0} B/s)", n as f64 / (ns / 1e9));
        }
        _ => println!("{name:<50} {time:>12}"),
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// No-op in the stub (upstream parses CLI filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        report(&name, b.result_ns, None);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b, input);
        report(&name, b.result_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the group's throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        report(&name, b.result_ns, self.throughput);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b, input);
        report(&name, b.result_ns, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0u64;
        Criterion::default()
            .sample_size(2)
            .bench_function("noop", |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
        assert!(calls > 0);
    }

    #[test]
    fn groups_run_batched_and_parameterised_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(3));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &p| {
            b.iter_batched(|| vec![p; 4], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
