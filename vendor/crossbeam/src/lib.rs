//! Offline stand-in for the `crossbeam` 0.8 crate.
//!
//! Implements only [`scope`], the one API the workspace uses, on top of
//! `std::thread::scope` (std's scoped threads subsume crossbeam's original
//! motivation). Substituted for the real crate via `[patch.crates-io]`
//! because the build container has no registry access.

use std::any::Any;

/// Error type of [`scope`]: the payload of a panicked child thread.
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A handle for spawning scoped threads; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it
    /// can spawn nested work, as in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which borrowed-data threads can be spawned; all
/// threads are joined before `scope` returns.
///
/// Unlike crossbeam, a panicking child makes the whole call panic (std
/// semantics) rather than returning `Err`; callers here use
/// `.expect("...")` on the result, so both behaviors end in the same panic.
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod thread {
    //! Alias module mirroring `crossbeam::thread`.
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = [0u64; 4];
        scope(|s| {
            for (d, o) in data.chunks(2).zip(out.chunks_mut(2)) {
                s.spawn(move |_| {
                    for (x, y) in d.iter().zip(o.iter_mut()) {
                        *y = x * 10;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(out, [10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let total = scope(|s| s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2).join().unwrap())
            .unwrap();
        assert_eq!(total, 42);
    }
}
