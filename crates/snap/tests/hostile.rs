//! Hostile-bytes coverage for the snapshot container: every mutilation of
//! a valid file must come back as the right typed [`SnapError`], never a
//! panic — plus a property-based round-trip over the section codec.

#![allow(clippy::unwrap_used)]

use dlinfma_snap::{crc32, write_container, Dec, Enc, Sections, SnapError, FORMAT_VERSION, MAGIC};
use proptest::prelude::*;

fn sample_file() -> Vec<u8> {
    let mut a = Enc::new();
    a.u32(7);
    a.str("stays");
    a.f64(40.0);
    let mut b = Enc::new();
    for i in 0..32u64 {
        b.u64(i * i);
    }
    write_container(&[(1, a.into_bytes()), (2, b.into_bytes())])
}

#[test]
fn every_truncation_is_a_typed_error() {
    let file = sample_file();
    assert!(Sections::parse(&file).is_ok());
    for cut in 0..file.len() {
        let err = Sections::parse(&file[..cut]).expect_err("truncated file must not parse");
        assert!(
            matches!(
                err,
                SnapError::Truncated { .. }
                    | SnapError::BadMagic
                    | SnapError::LengthOverflow { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
    // Cuts inside the header are plain truncation (or a short magic).
    assert_eq!(
        Sections::parse(&file[..4]).unwrap_err(),
        SnapError::Truncated {
            needed: 8,
            available: 4
        }
    );
}

#[test]
fn bad_magic_is_rejected_before_anything_else() {
    let mut file = sample_file();
    file[0] ^= 0xFF;
    assert_eq!(Sections::parse(&file).unwrap_err(), SnapError::BadMagic);
}

#[test]
fn unknown_version_is_rejected_with_both_versions() {
    let mut file = sample_file();
    let v = (FORMAT_VERSION + 41).to_le_bytes();
    file[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&v);
    assert_eq!(
        Sections::parse(&file).unwrap_err(),
        SnapError::UnknownVersion {
            found: FORMAT_VERSION + 41,
            supported: FORMAT_VERSION
        }
    );
}

#[test]
fn flipping_any_payload_byte_fails_the_checksum() {
    let file = sample_file();
    // First section: tag 1, header at offset 16, payload right after its
    // 16-byte section header.
    let payload_start = MAGIC.len() + 8 + 16;
    for offset in [payload_start, payload_start + 5, file.len() - 1] {
        let mut mutated = file.clone();
        mutated[offset] ^= 0x01;
        let err = Sections::parse(&mutated).unwrap_err();
        assert!(
            matches!(err, SnapError::ChecksumMismatch { .. }),
            "flip at {offset}: unexpected error {err:?}"
        );
    }
}

#[test]
fn section_length_overflow_is_typed_not_an_allocation() {
    let mut file = write_container(&[(3, vec![0xAB; 8])]);
    // Rewrite the section's declared length to something absurd; the
    // parser must fail on the length check, not attempt the slice.
    let len_at = MAGIC.len() + 8 + 4;
    file[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        Sections::parse(&file).unwrap_err(),
        SnapError::LengthOverflow {
            declared: u64::MAX,
            ..
        }
    ));
}

#[test]
fn trailing_bytes_and_duplicate_tags_are_rejected() {
    let mut file = sample_file();
    file.push(0);
    assert_eq!(
        Sections::parse(&file).unwrap_err(),
        SnapError::TrailingBytes { remaining: 1 }
    );

    let dup = write_container(&[(5, vec![1]), (5, vec![2])]);
    assert_eq!(
        Sections::parse(&dup).unwrap_err(),
        SnapError::DuplicateSection { tag: 5 }
    );
}

#[test]
fn random_garbage_never_panics() {
    // A cheap deterministic byte soup; value is in the "no panic" claim.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for len in 0..256usize {
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let _ = Sections::parse(&bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn section_codec_round_trips(payloads in proptest::collection::vec(
        proptest::collection::vec(0u8..=255, 0..64), 0..8)) {
        let sections: Vec<(u32, Vec<u8>)> = payloads
            .into_iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        let file = write_container(&sections);
        let parsed = Sections::parse(&file).expect("a written container parses");
        prop_assert_eq!(parsed.len(), sections.len());
        for (tag, payload) in &sections {
            prop_assert_eq!(parsed.require(*tag).expect("section present"), payload.as_slice());
            prop_assert_eq!(crc32(payload), crc32(parsed.require(*tag).expect("present")));
        }
    }

    #[test]
    fn scalar_codec_round_trips(
        a in 0u64..=u64::MAX,
        b in 0u32..=u32::MAX,
        c in i64::MIN..=i64::MAX,
        fbits in 0u64..=u64::MAX,
        chars in proptest::collection::vec(b'a'..=b'z', 0..12),
        flag_byte in 0u8..2,
    ) {
        let s = String::from_utf8(chars).expect("ascii");
        let flag = flag_byte == 1;
        let mut e = Enc::new();
        e.u64(a);
        e.u32(b);
        e.i64(c);
        e.f64(f64::from_bits(fbits));
        e.str(&s);
        e.bool(flag);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        prop_assert_eq!(d.u64().expect("u64"), a);
        prop_assert_eq!(d.u32().expect("u32"), b);
        prop_assert_eq!(d.i64().expect("i64"), c);
        prop_assert_eq!(d.f64().expect("f64").to_bits(), fbits);
        prop_assert_eq!(d.str().expect("str"), s);
        prop_assert_eq!(d.bool().expect("bool"), flag);
        d.finish().expect("fully consumed");
    }
}
