//! The snapshot wire format: a zero-dependency, versioned, checksummed
//! binary container for durable engine checkpoints.
//!
//! A snapshot file is a sequence of *tagged sections* behind a fixed
//! header. Every scalar is explicit little-endian; floats travel as their
//! IEEE-754 bit patterns, so encode∘decode is the identity on every value
//! including NaN payloads — the property the engine's bit-identical
//! resume-parity guarantee rests on:
//!
//! ```text
//! +----------------+---------+---------+
//! | magic (8)      | version | n_sec   |      header
//! | "DLINSNAP"     | u32 LE  | u32 LE  |
//! +----------------+---------+---------+
//! | tag u32 | len u64 | crc32 u32 | payload (len bytes) |   section 0
//! | tag u32 | len u64 | crc32 u32 | payload (len bytes) |   section 1
//! | ...                                                 |
//! +-----------------------------------------------------+
//! ```
//!
//! The CRC-32 (IEEE 802.3 polynomial) covers each section's payload, so a
//! flipped byte anywhere in a payload is caught before any typed decoding
//! runs. Decoding is **panic-free on arbitrary bytes**: every failure mode
//! is a typed [`SnapError`] — truncation, bad magic, unknown version,
//! checksum mismatch, and declared lengths that overflow the bytes
//! actually present. Unknown *section tags* are preserved and exposed, so
//! a newer writer can add sections without breaking an older reader that
//! ignores them; changing the meaning of an existing section requires a
//! format-version bump (see `DESIGN.md`, "Snapshot format").
//!
//! The crate knows nothing about the engine: it provides the container
//! ([`write_container`] / [`Sections`]) and the primitive codec
//! ([`Enc`] / [`Dec`]); the typed artifact sections live next to the
//! artifacts themselves in `dlinfma-core`.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

use std::fmt;

/// File magic: the first eight bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"DLINSNAP";

/// Current wire-format version. Bump only on incompatible layout changes,
/// together with the golden-fixture procedure documented in
/// `crates/core/tests/fixtures/README.md`.
pub const FORMAT_VERSION: u32 = 1;

/// Every way decoding snapshot bytes can fail. Decoding never panics on
/// hostile input; it returns one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before a declared value: `needed` more bytes were
    /// required, `available` remained.
    Truncated { needed: usize, available: usize },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// The header declares a format version this build does not read.
    UnknownVersion { found: u32, supported: u32 },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch { tag: u32 },
    /// A declared length (section payload or sequence count) exceeds the
    /// bytes actually present.
    LengthOverflow { declared: u64, available: u64 },
    /// Bytes remained after the last declared section or field.
    TrailingBytes { remaining: usize },
    /// The same section tag appears twice.
    DuplicateSection { tag: u32 },
    /// A required section is absent.
    MissingSection { tag: u32 },
    /// A value decoded but violates the format's invariants.
    Malformed { what: &'static str },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated snapshot: needed {needed} bytes, {available} available"
                )
            }
            Self::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            Self::UnknownVersion { found, supported } => {
                write!(
                    f,
                    "unknown snapshot format version {found} (this build reads {supported})"
                )
            }
            Self::ChecksumMismatch { tag } => {
                write!(f, "section 0x{tag:08x} failed its CRC-32 check")
            }
            Self::LengthOverflow {
                declared,
                available,
            } => {
                write!(
                    f,
                    "declared length {declared} overflows the {available} bytes present"
                )
            }
            Self::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the last section")
            }
            Self::DuplicateSection { tag } => write!(f, "duplicate section 0x{tag:08x}"),
            Self::MissingSection { tag } => write!(f, "missing required section 0x{tag:08x}"),
            Self::Malformed { what } => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

// --- CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFF_FFFF) -------------

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (the IEEE polynomial used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- Primitive encoder ---------------------------------------------------

/// Little-endian append-only encoder for section payloads.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit everywhere).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (NaN-exact).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern (NaN-exact).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string (u64 byte length).
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

// --- Primitive decoder ---------------------------------------------------

/// Little-endian cursor over a section payload. Every read is
/// bounds-checked; a short buffer yields [`SnapError::Truncated`].
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let available = self.remaining();
        if n > available {
            return Err(SnapError::Truncated {
                needed: n,
                available,
            });
        }
        let start = self.pos;
        self.pos += n;
        self.buf.get(start..self.pos).ok_or(SnapError::Truncated {
            needed: n,
            available,
        })
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed {
                what: "bool byte out of range",
            }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `f32` from its bit pattern.
    pub fn f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a `usize` stored as `u64`, rejecting values this platform
    /// cannot represent.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::LengthOverflow {
            declared: v,
            available: self.remaining() as u64,
        })
    }

    /// Reads a sequence length declared as `u64` and validates it against
    /// the bytes actually remaining, assuming each element occupies at
    /// least `min_elem_bytes` — the guard that stops a hostile length from
    /// provoking a giant allocation before any element decodes.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let declared = self.u64()?;
        let available = self.remaining() as u64;
        let budget = available / (min_elem_bytes.max(1) as u64);
        if declared > budget {
            return Err(SnapError::LengthOverflow {
                declared,
                available,
            });
        }
        usize::try_from(declared).map_err(|_| SnapError::LengthOverflow {
            declared,
            available,
        })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.seq_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Malformed {
            what: "invalid UTF-8 in string",
        })
    }

    /// Asserts the payload is fully consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        let remaining = self.remaining();
        if remaining == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes { remaining })
        }
    }
}

// --- Section container ---------------------------------------------------

/// Size of a section header: tag (4) + length (8) + crc (4).
const SECTION_HEADER: usize = 16;

/// Serializes tagged sections into one snapshot file: magic, format
/// version, section count, then each section with its CRC-32.
pub fn write_container(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let payload: usize = sections.iter().map(|(_, p)| p.len() + SECTION_HEADER).sum();
    let mut out = Vec::with_capacity(MAGIC.len() + 8 + payload);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in sections {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// The parsed sections of one snapshot file, in file order.
#[derive(Debug)]
pub struct Sections<'a> {
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> Sections<'a> {
    /// Parses and fully validates a snapshot container: magic, version,
    /// every section's declared length and CRC-32, no duplicate tags, no
    /// trailing bytes. Never panics on hostile input.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SnapError> {
        let mut d = Dec::new(bytes);
        let magic = d.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = d.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapError::UnknownVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let n_sections = d.u32()?;
        let mut sections: Vec<(u32, &'a [u8])> = Vec::new();
        for _ in 0..n_sections {
            let tag = d.u32()?;
            let len = d.u64()?;
            let crc = d.u32()?;
            let available = d.remaining() as u64;
            if len > available {
                return Err(SnapError::LengthOverflow {
                    declared: len,
                    available,
                });
            }
            let payload = d.take(len as usize)?;
            if crc32(payload) != crc {
                return Err(SnapError::ChecksumMismatch { tag });
            }
            if sections.iter().any(|&(t, _)| t == tag) {
                return Err(SnapError::DuplicateSection { tag });
            }
            sections.push((tag, payload));
        }
        d.finish()?;
        Ok(Self { sections })
    }

    /// A required section's payload.
    pub fn require(&self, tag: u32) -> Result<&'a [u8], SnapError> {
        self.get(tag).ok_or(SnapError::MissingSection { tag })
    }

    /// An optional section's payload.
    pub fn get(&self, tag: u32) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|&&(t, _)| t == tag)
            .map(|&(_, p)| p)
    }

    /// All sections in file order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &'a [u8])> + '_ {
        self.sections.iter().copied()
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when the container holds no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.bool(false);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.usize(12345);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.f32(3.5);
        e.str("héllo");
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.f32().unwrap(), 3.5);
        assert_eq!(d.str().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn seq_len_rejects_lengths_beyond_the_buffer() {
        let mut e = Enc::new();
        e.u64(1 << 40);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(
            d.seq_len(4),
            Err(SnapError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn container_round_trips_and_preserves_order() {
        let file = write_container(&[(1, vec![1, 2, 3]), (9, vec![]), (2, b"xyz".to_vec())]);
        let s = Sections::parse(&file).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.require(1).unwrap(), &[1, 2, 3]);
        assert_eq!(s.require(9).unwrap(), b"");
        assert_eq!(s.get(2).unwrap(), b"xyz");
        assert!(s.get(7).is_none());
        assert_eq!(s.require(7), Err(SnapError::MissingSection { tag: 7 }));
        let tags: Vec<u32> = s.iter().map(|(t, _)| t).collect();
        assert_eq!(tags, vec![1, 9, 2]);
    }

    #[test]
    fn bool_rejects_other_bytes() {
        let mut d = Dec::new(&[2]);
        assert_eq!(
            d.bool(),
            Err(SnapError::Malformed {
                what: "bool byte out of range"
            })
        );
    }
}
