//! Stay-point detection (Definition 4; Li et al. 2008).
//!
//! A stay point is a maximal run of consecutive fixes `<p_i .. p_j>` such
//! that every fix stays within `D_max` meters of the anchor `p_i` and the run
//! spans at least `T_min` seconds. Its *location* is the spatial centroid of
//! the run and its *time* is the middle of its interval — both exactly as the
//! paper defines, because the candidate-retrieval step compares this time
//! against recorded delivery times.

use crate::types::Trajectory;
use dlinfma_geo::{centroid, Point};

/// Thresholds for stay-point detection. The paper (following its ref [5])
/// uses `D_max = 20 m` and `T_min = 30 s`.
#[derive(Debug, Clone, Copy)]
pub struct StayPointConfig {
    /// Maximum distance from the anchor fix, in meters.
    pub d_max_m: f64,
    /// Minimum dwell duration, in seconds.
    pub t_min_s: f64,
}

impl Default for StayPointConfig {
    fn default() -> Self {
        Self {
            d_max_m: dlinfma_params::D_MAX_M,
            t_min_s: dlinfma_params::T_MIN_S,
        }
    }
}

/// A detected stay: where a courier lingered and for how long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StayPoint {
    /// Spatial centroid of the member fixes.
    pub pos: Point,
    /// Time the stay began (first member fix).
    pub t_start: f64,
    /// Time the stay ended (last member fix).
    pub t_end: f64,
    /// Number of member fixes.
    pub n_points: usize,
}

impl StayPoint {
    /// The representative time of the stay: the middle of its interval
    /// (Definition 4).
    pub fn mid_time(&self) -> f64 {
        (self.t_start + self.t_end) / 2.0
    }

    /// Dwell duration in seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Extracts all stay points from a (cleaned) trajectory.
///
/// Implements the anchor-advance algorithm of Li et al. (2008): grow a window
/// from anchor `i` while every fix remains within `d_max_m` of `p_i`; when the
/// window breaks, emit it as a stay point if it lasted at least `t_min_s`,
/// then restart after the window (or at `i + 1` if it was too short).
pub fn detect_stay_points(traj: &Trajectory, cfg: &StayPointConfig) -> Vec<StayPoint> {
    let pts = traj.points();
    let n = pts.len();
    let mut stays = Vec::new();
    let mut i = 0;
    while i < n {
        // Grow j while p_j stays within D_max of the anchor p_i.
        let mut j = i + 1;
        while j < n && pts[i].pos.distance(&pts[j].pos) <= cfg.d_max_m {
            j += 1;
        }
        // Window is pts[i..j] (j exclusive); it spans [t_i, t_{j-1}].
        let last = j - 1;
        if pts[last].t - pts[i].t >= cfg.t_min_s {
            let member_pos: Vec<Point> = pts[i..j].iter().map(|p| p.pos).collect();
            if let Some(pos) = centroid(&member_pos) {
                stays.push(StayPoint {
                    pos,
                    t_start: pts[i].t,
                    t_end: pts[last].t,
                    n_points: j - i,
                });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    stays
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TrajPoint;
    use proptest::prelude::*;

    const CFG: StayPointConfig = StayPointConfig {
        d_max_m: 20.0,
        t_min_s: 30.0,
    };

    /// A courier that walks, dwells, then walks again.
    fn walk_dwell_walk(dwell_secs: f64) -> Trajectory {
        let mut pts = Vec::new();
        let mut t = 0.0;
        // Walk east 1.4 m/s for 60 s.
        for i in 0..6 {
            pts.push(TrajPoint::xyt(i as f64 * 14.0, 0.0, t));
            t += 10.0;
        }
        // Dwell at (100, 0) within a 3 m jitter.
        let dwell_start = t;
        let mut k = 0;
        while t - dwell_start <= dwell_secs {
            let dx = if k % 2 == 0 { 1.5 } else { -1.5 };
            pts.push(TrajPoint::xyt(100.0 + dx, 0.0, t));
            t += 10.0;
            k += 1;
        }
        // Walk away northward.
        for i in 0..6 {
            pts.push(TrajPoint::xyt(100.0, (i + 1) as f64 * 30.0, t));
            t += 10.0;
        }
        Trajectory::from_points(pts)
    }

    #[test]
    fn detects_a_single_dwell() {
        let traj = walk_dwell_walk(120.0);
        let stays = detect_stay_points(&traj, &CFG);
        assert_eq!(stays.len(), 1);
        let sp = stays[0];
        assert!(sp.pos.distance(&Point::new(100.0, 0.0)) < 5.0);
        assert!(sp.duration() >= 30.0);
    }

    #[test]
    fn short_dwell_is_not_a_stay() {
        // Dwell of only ~20 s is below T_min = 30 s.
        let traj = walk_dwell_walk(20.0);
        let stays = detect_stay_points(&traj, &CFG);
        assert!(stays.is_empty());
    }

    #[test]
    fn continuous_walk_has_no_stays() {
        let traj: Trajectory = (0..100)
            .map(|i| TrajPoint::xyt(i as f64 * 14.0, 0.0, i as f64 * 10.0))
            .collect();
        assert!(detect_stay_points(&traj, &CFG).is_empty());
    }

    #[test]
    fn stationary_trajectory_is_one_stay() {
        let traj: Trajectory = (0..20)
            .map(|i| TrajPoint::xyt(0.0, 0.0, i as f64 * 10.0))
            .collect();
        let stays = detect_stay_points(&traj, &CFG);
        assert_eq!(stays.len(), 1);
        assert_eq!(stays[0].n_points, 20);
        assert_eq!(stays[0].t_start, 0.0);
        assert_eq!(stays[0].t_end, 190.0);
        assert!((stays[0].mid_time() - 95.0).abs() < 1e-12);
    }

    #[test]
    fn two_separate_dwells() {
        let mut pts = Vec::new();
        let mut t = 0.0;
        for _ in 0..10 {
            pts.push(TrajPoint::xyt(0.0, 0.0, t));
            t += 10.0;
        }
        // Move 500 m away quickly.
        for i in 0..10 {
            pts.push(TrajPoint::xyt((i + 1) as f64 * 50.0, 0.0, t));
            t += 10.0;
        }
        for _ in 0..10 {
            pts.push(TrajPoint::xyt(500.0, 0.0, t));
            t += 10.0;
        }
        let stays = detect_stay_points(&Trajectory::from_points(pts), &CFG);
        assert_eq!(stays.len(), 2);
        assert!(stays[0].pos.distance(&Point::new(0.0, 0.0)) < 1.0);
        assert!(stays[1].pos.distance(&Point::new(500.0, 0.0)) < 1.0);
        assert!(stays[0].t_end < stays[1].t_start);
    }

    #[test]
    fn empty_and_single_point_trajectories() {
        assert!(detect_stay_points(&Trajectory::new(), &CFG).is_empty());
        let one: Trajectory = std::iter::once(TrajPoint::xyt(0.0, 0.0, 0.0)).collect();
        assert!(detect_stay_points(&one, &CFG).is_empty());
    }

    #[test]
    fn definition4_anchor_distance_respected() {
        // A slow drift: each fix 5 m from the previous. Fixes stay within
        // 20 m of the anchor for 5 fixes (0,5,10,15,20), then break.
        let traj: Trajectory = (0..10)
            .map(|i| TrajPoint::xyt(i as f64 * 5.0, 0.0, i as f64 * 10.0))
            .collect();
        let stays = detect_stay_points(&traj, &CFG);
        // First window: fixes 0..=4 spans 40 s >= 30 s -> stay at centroid x=10.
        assert_eq!(stays.len(), 2, "drift splits into anchored windows");
        assert!((stays[0].pos.x - 10.0).abs() < 1e-9);
        assert_eq!(stays[0].n_points, 5);
    }

    proptest! {
        #[test]
        fn stays_obey_definition(
            coords in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..80)
        ) {
            let traj: Trajectory = coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| TrajPoint::xyt(x, y, i as f64 * 10.0))
                .collect();
            let stays = detect_stay_points(&traj, &CFG);
            for sp in &stays {
                prop_assert!(sp.duration() >= CFG.t_min_s);
                prop_assert!(sp.n_points >= 2);
                prop_assert!(sp.t_start <= sp.mid_time() && sp.mid_time() <= sp.t_end);
            }
            // Stays are disjoint and ordered in time.
            for w in stays.windows(2) {
                prop_assert!(w[0].t_end <= w[1].t_start);
            }
        }

        #[test]
        fn centroid_is_near_anchor(
            coords in proptest::collection::vec((-15.0..15.0f64, -15.0..15.0f64), 4..40)
        ) {
            // All fixes within 5 m of origin (max pairwise distance
            // 10*sqrt(2) < D_max) and spanning > T_min: exactly one stay
            // containing every fix.
            let traj: Trajectory = coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| TrajPoint::xyt(x / 3.0, y / 3.0, i as f64 * 15.0))
                .collect();
            let stays = detect_stay_points(&traj, &CFG);
            prop_assert_eq!(stays.len(), 1);
            prop_assert_eq!(stays[0].n_points, traj.len());
        }
    }
}
