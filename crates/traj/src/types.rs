//! Core trajectory data types (Definition 3 of the paper).

use dlinfma_geo::Point;

/// A single spatio-temporal GPS fix: a location at a time.
///
/// Times throughout the pipeline are seconds since the dataset epoch
/// (f64 so sub-second sampling is representable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajPoint {
    /// Location in the local metric frame.
    pub pos: Point,
    /// Seconds since the dataset epoch.
    pub t: f64,
}

impl TrajPoint {
    /// Creates a fix at `pos` observed at time `t`.
    pub const fn new(pos: Point, t: f64) -> Self {
        Self { pos, t }
    }

    /// Convenience constructor from raw coordinates.
    pub const fn xyt(x: f64, y: f64, t: f64) -> Self {
        Self {
            pos: Point::new(x, y),
            t,
        }
    }
}

/// A chronologically ordered sequence of GPS fixes produced by one courier
/// (Definition 3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    points: Vec<TrajPoint>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trajectory from fixes, sorting them chronologically.
    ///
    /// Fixes with non-finite coordinates or times are dropped — upstream GPS
    /// decoders occasionally emit them and they would poison every distance
    /// computation downstream.
    pub fn from_points(mut points: Vec<TrajPoint>) -> Self {
        points.retain(|p| p.pos.is_finite() && p.t.is_finite());
        points.sort_by(|a, b| a.t.total_cmp(&b.t));
        Self { points }
    }

    /// Appends a fix.
    ///
    /// # Panics
    /// Panics if `p` is earlier than the current last fix; trajectories are
    /// append-only in time order.
    pub fn push(&mut self, p: TrajPoint) {
        if let Some(last) = self.points.last() {
            assert!(
                p.t >= last.t,
                "fixes must be appended in chronological order ({} < {})",
                p.t,
                last.t
            );
        }
        self.points.push(p);
    }

    /// The fixes in chronological order.
    pub fn points(&self) -> &[TrajPoint] {
        &self.points
    }

    /// Number of fixes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the trajectory has no fixes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Time of the first fix, or `None` when empty.
    pub fn start_time(&self) -> Option<f64> {
        self.points.first().map(|p| p.t)
    }

    /// Time of the last fix, or `None` when empty.
    pub fn end_time(&self) -> Option<f64> {
        self.points.last().map(|p| p.t)
    }

    /// Duration in seconds covered by the trajectory (zero when fewer than
    /// two fixes).
    pub fn duration(&self) -> f64 {
        match (self.start_time(), self.end_time()) {
            (Some(s), Some(e)) => e - s,
            _ => 0.0,
        }
    }

    /// Total path length in meters (sum of segment lengths).
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].pos.distance(&w[1].pos))
            .sum()
    }

    /// The sub-trajectory with fixes in the closed time interval `[t0, t1]`.
    pub fn slice_time(&self, t0: f64, t1: f64) -> Trajectory {
        let points = self
            .points
            .iter()
            .filter(|p| p.t >= t0 && p.t <= t1)
            .copied()
            .collect();
        Trajectory { points }
    }

    /// Mean interval between consecutive fixes, or `None` with fewer than
    /// two fixes. The paper's datasets average 13.5 s.
    pub fn mean_sampling_interval(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        Some(self.duration() / (self.points.len() - 1) as f64)
    }

    /// The courier's (interpolated) position at time `t`: linear between the
    /// surrounding fixes, clamped to the first/last fix outside the covered
    /// interval. `None` for an empty trajectory.
    ///
    /// This is how annotation-based baselines derive the "annotated
    /// location" of a delivery from its confirmation timestamp.
    pub fn position_at(&self, t: f64) -> Option<Point> {
        let pts = &self.points;
        let first = pts.first()?;
        if t <= first.t {
            return Some(first.pos);
        }
        let last = pts.last()?;
        if t >= last.t {
            return Some(last.pos);
        }
        // Binary search for the segment containing t.
        let idx = pts.partition_point(|p| p.t <= t);
        let (a, b) = (pts.get(idx.checked_sub(1)?)?, pts.get(idx)?);
        let span = b.t - a.t;
        if span <= 0.0 {
            return Some(a.pos);
        }
        Some(a.pos.lerp(&b.pos, (t - a.t) / span))
    }
}

impl FromIterator<TrajPoint> for Trajectory {
    fn from_iter<I: IntoIterator<Item = TrajPoint>>(iter: I) -> Self {
        Trajectory::from_points(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_points_sorts_chronologically() {
        let t = Trajectory::from_points(vec![
            TrajPoint::xyt(0.0, 0.0, 10.0),
            TrajPoint::xyt(1.0, 0.0, 5.0),
            TrajPoint::xyt(2.0, 0.0, 7.5),
        ]);
        let times: Vec<f64> = t.points().iter().map(|p| p.t).collect();
        assert_eq!(times, vec![5.0, 7.5, 10.0]);
    }

    #[test]
    fn from_points_drops_non_finite() {
        let t = Trajectory::from_points(vec![
            TrajPoint::xyt(0.0, 0.0, 0.0),
            TrajPoint::xyt(f64::NAN, 0.0, 1.0),
            TrajPoint::xyt(0.0, f64::INFINITY, 2.0),
            TrajPoint::xyt(1.0, 1.0, f64::NAN),
            TrajPoint::xyt(1.0, 1.0, 3.0),
        ]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "chronological order")]
    fn push_out_of_order_panics() {
        let mut t = Trajectory::new();
        t.push(TrajPoint::xyt(0.0, 0.0, 10.0));
        t.push(TrajPoint::xyt(0.0, 0.0, 5.0));
    }

    #[test]
    fn duration_and_length() {
        let t = Trajectory::from_points(vec![
            TrajPoint::xyt(0.0, 0.0, 0.0),
            TrajPoint::xyt(3.0, 4.0, 10.0),
            TrajPoint::xyt(3.0, 10.0, 20.0),
        ]);
        assert!((t.duration() - 20.0).abs() < 1e-12);
        assert!((t.path_length() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trajectory_edge_cases() {
        let t = Trajectory::new();
        assert!(t.is_empty());
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.path_length(), 0.0);
        assert!(t.start_time().is_none());
        assert!(t.mean_sampling_interval().is_none());
    }

    #[test]
    fn slice_time_is_inclusive() {
        let t: Trajectory = (0..10)
            .map(|i| TrajPoint::xyt(i as f64, 0.0, i as f64))
            .collect();
        let s = t.slice_time(2.0, 5.0);
        assert_eq!(s.len(), 4);
        assert_eq!(s.start_time(), Some(2.0));
        assert_eq!(s.end_time(), Some(5.0));
    }

    #[test]
    fn mean_sampling_interval() {
        let t: Trajectory = (0..5)
            .map(|i| TrajPoint::xyt(0.0, 0.0, i as f64 * 13.5))
            .collect();
        assert!((t.mean_sampling_interval().unwrap() - 13.5).abs() < 1e-12);
    }

    #[test]
    fn position_at_interpolates_and_clamps() {
        let t = Trajectory::from_points(vec![
            TrajPoint::xyt(0.0, 0.0, 10.0),
            TrajPoint::xyt(10.0, 0.0, 20.0),
            TrajPoint::xyt(10.0, 20.0, 40.0),
        ]);
        assert_eq!(
            t.position_at(5.0),
            Some(crate::types::TrajPoint::xyt(0.0, 0.0, 0.0).pos)
        );
        assert_eq!(
            t.position_at(15.0).unwrap(),
            dlinfma_geo::Point::new(5.0, 0.0)
        );
        assert_eq!(
            t.position_at(30.0).unwrap(),
            dlinfma_geo::Point::new(10.0, 10.0)
        );
        assert_eq!(
            t.position_at(100.0).unwrap(),
            dlinfma_geo::Point::new(10.0, 20.0)
        );
        assert!(Trajectory::new().position_at(0.0).is_none());
    }

    #[test]
    fn position_at_exact_fix_times() {
        let t = Trajectory::from_points(vec![
            TrajPoint::xyt(1.0, 1.0, 0.0),
            TrajPoint::xyt(2.0, 2.0, 10.0),
        ]);
        assert_eq!(
            t.position_at(0.0).unwrap(),
            dlinfma_geo::Point::new(1.0, 1.0)
        );
        assert_eq!(
            t.position_at(10.0).unwrap(),
            dlinfma_geo::Point::new(2.0, 2.0)
        );
    }

    proptest! {
        #[test]
        fn from_points_always_sorted(
            ts in proptest::collection::vec(0.0..1e6f64, 0..50)
        ) {
            let pts: Vec<TrajPoint> = ts.iter().map(|&t| TrajPoint::xyt(0.0, 0.0, t)).collect();
            let traj = Trajectory::from_points(pts);
            for w in traj.points().windows(2) {
                prop_assert!(w[0].t <= w[1].t);
            }
        }

        #[test]
        fn slice_never_exceeds_bounds(
            ts in proptest::collection::vec(0.0..1000.0f64, 0..50),
            t0 in 0.0..1000.0f64,
            dt in 0.0..500.0f64,
        ) {
            let traj: Trajectory = ts.iter().map(|&t| TrajPoint::xyt(0.0, 0.0, t)).collect();
            let s = traj.slice_time(t0, t0 + dt);
            for p in s.points() {
                prop_assert!(p.t >= t0 && p.t <= t0 + dt);
            }
        }
    }
}
