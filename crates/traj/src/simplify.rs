//! Douglas–Peucker trajectory simplification.
//!
//! The deployed system stores 20 months of raw GPS (tens of millions of
//! fixes); simplification is the standard storage/transfer optimization for
//! such archives. Stay-point detection runs on the *raw* stream — this
//! module is for downstream storage, rendering and map-matching substrates.

use crate::types::{TrajPoint, Trajectory};
use dlinfma_geo::Point;

/// Perpendicular distance from `p` to the segment `a`-`b` (or to the points
/// themselves when the segment degenerates).
fn segment_distance(p: &Point, a: &Point, b: &Point) -> f64 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len2 = dx * dx + dy * dy;
    if len2 <= f64::EPSILON {
        return p.distance(a);
    }
    let t = (((p.x - a.x) * dx + (p.y - a.y) * dy) / len2).clamp(0.0, 1.0);
    p.distance(&Point::new(a.x + t * dx, a.y + t * dy))
}

/// Simplifies a trajectory with Douglas–Peucker: keeps the subset of fixes
/// such that every dropped fix is within `epsilon_m` of the simplified
/// polyline. The first and last fix are always kept.
pub fn simplify(traj: &Trajectory, epsilon_m: f64) -> Trajectory {
    assert!(epsilon_m >= 0.0, "epsilon must be non-negative");
    let pts = traj.points();
    if pts.len() <= 2 {
        return traj.clone();
    }
    let last = pts.len() - 1;
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[last] = true;
    let mut stack = vec![(0usize, last)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo + 1, -1.0f64);
        for i in (lo + 1)..hi {
            let d = segment_distance(&pts[i].pos, &pts[lo].pos, &pts[hi].pos);
            if d > worst_d {
                worst = i;
                worst_d = d;
            }
        }
        if worst_d > epsilon_m {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    let kept: Vec<TrajPoint> = pts
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| *p)
        .collect();
    Trajectory::from_points(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let t: Trajectory = (0..50)
            .map(|i| TrajPoint::xyt(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        let s = simplify(&t, 1.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[0].pos.x, 0.0);
        assert_eq!(s.points()[1].pos.x, 490.0);
    }

    #[test]
    fn corner_is_preserved() {
        let mut pts: Vec<TrajPoint> = (0..10)
            .map(|i| TrajPoint::xyt(i as f64 * 10.0, 0.0, i as f64))
            .collect();
        pts.extend((1..10).map(|i| TrajPoint::xyt(90.0, i as f64 * 10.0, 9.0 + i as f64)));
        let t = Trajectory::from_points(pts);
        let s = simplify(&t, 1.0);
        assert_eq!(s.len(), 3, "endpoints plus the corner");
        assert_eq!(s.points()[1].pos, Point::new(90.0, 0.0));
    }

    #[test]
    fn epsilon_zero_keeps_everything_off_line() {
        let t = Trajectory::from_points(vec![
            TrajPoint::xyt(0.0, 0.0, 0.0),
            TrajPoint::xyt(5.0, 0.1, 1.0),
            TrajPoint::xyt(10.0, 0.0, 2.0),
        ]);
        assert_eq!(simplify(&t, 0.0).len(), 3);
    }

    #[test]
    fn tiny_trajectories_untouched() {
        let one: Trajectory = std::iter::once(TrajPoint::xyt(1.0, 1.0, 0.0)).collect();
        assert_eq!(simplify(&one, 5.0).len(), 1);
        assert!(simplify(&Trajectory::new(), 5.0).is_empty());
    }

    proptest! {
        #[test]
        fn every_dropped_point_is_within_epsilon(
            coords in proptest::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 2..60),
            eps in 0.5..50.0f64,
        ) {
            let t: Trajectory = coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| TrajPoint::xyt(x, y, i as f64))
                .collect();
            let s = simplify(&t, eps);
            // Endpoints kept.
            prop_assert_eq!(s.points()[0], t.points()[0]);
            prop_assert_eq!(*s.points().last().unwrap(), *t.points().last().unwrap());
            // Every original fix lies within eps of the simplified polyline.
            for p in t.points() {
                let min_d = s
                    .points()
                    .windows(2)
                    .map(|w| segment_distance(&p.pos, &w[0].pos, &w[1].pos))
                    .fold(f64::MAX, f64::min)
                    .min(s.points().iter().map(|q| q.pos.distance(&p.pos)).fold(f64::MAX, f64::min));
                prop_assert!(min_d <= eps + 1e-6, "dropped point {min_d} > {eps}");
            }
        }

        #[test]
        fn simplification_never_grows(
            coords in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 0..40),
            eps in 0.0..20.0f64,
        ) {
            let t: Trajectory = coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| TrajPoint::xyt(x, y, i as f64))
                .collect();
            prop_assert!(simplify(&t, eps).len() <= t.len());
        }
    }
}
