//! Trip segmentation: splitting a courier's continuous GPS stream into
//! delivery trips.
//!
//! The paper's pipeline consumes *trips* (Definition 5), but a production
//! GPS feed is one long stream per courier per day. The deployed system must
//! therefore segment first; this module provides the standard heuristics:
//! a new segment starts after a temporal gap (the courier's app went
//! offline / the courier went home) and segments are optionally required to
//! start and end near the depot.

use crate::types::{TrajPoint, Trajectory};
use dlinfma_geo::Point;

/// Segmentation rules.
#[derive(Debug, Clone, Copy)]
pub struct SegmentConfig {
    /// A gap between consecutive fixes larger than this starts a new
    /// segment.
    pub max_gap_s: f64,
    /// Segments shorter than this (in fixes) are discarded as noise.
    pub min_points: usize,
    /// When set, a segment is only kept if both its first and last fix are
    /// within `depot_radius_m` of the depot.
    pub depot: Option<(Point, f64)>,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self {
            max_gap_s: 45.0 * 60.0,
            min_points: 10,
            depot: None,
        }
    }
}

/// Splits a continuous fix stream into trip-like segments.
pub fn segment_trips(stream: &Trajectory, cfg: &SegmentConfig) -> Vec<Trajectory> {
    assert!(cfg.max_gap_s > 0.0, "max_gap_s must be positive");
    let mut segments: Vec<Vec<TrajPoint>> = Vec::new();
    let mut current: Vec<TrajPoint> = Vec::new();
    for &p in stream.points() {
        if let Some(last) = current.last() {
            if p.t - last.t > cfg.max_gap_s {
                segments.push(std::mem::take(&mut current));
            }
        }
        current.push(p);
    }
    if !current.is_empty() {
        segments.push(current);
    }

    segments
        .into_iter()
        .filter(|seg| seg.len() >= cfg.min_points)
        .filter(|seg| match cfg.depot {
            None => true,
            Some((depot, r)) => {
                seg.first().is_some_and(|p| p.pos.distance(&depot) <= r)
                    && seg.last().is_some_and(|p| p.pos.distance(&depot) <= r)
            }
        })
        .map(Trajectory::from_points)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_with_gap() -> Trajectory {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(TrajPoint::xyt(i as f64, 0.0, i as f64 * 10.0));
        }
        // One-hour gap, then a second trip.
        for i in 0..15 {
            pts.push(TrajPoint::xyt(i as f64, 100.0, 3_800.0 + i as f64 * 10.0));
        }
        Trajectory::from_points(pts)
    }

    #[test]
    fn splits_at_temporal_gap() {
        let cfg = SegmentConfig {
            max_gap_s: 600.0,
            min_points: 5,
            depot: None,
        };
        let segs = segment_trips(&stream_with_gap(), &cfg);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len(), 20);
        assert_eq!(segs[1].len(), 15);
        assert!(segs[0].end_time().unwrap() < segs[1].start_time().unwrap());
    }

    #[test]
    fn short_segments_are_dropped() {
        let cfg = SegmentConfig {
            max_gap_s: 600.0,
            min_points: 16,
            depot: None,
        };
        let segs = segment_trips(&stream_with_gap(), &cfg);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 20);
    }

    #[test]
    fn depot_filter_keeps_round_trips_only() {
        let depot = Point::new(0.0, 0.0);
        // Round trip: starts and ends at the depot.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(TrajPoint::xyt(i as f64 * 10.0, 0.0, i as f64 * 10.0));
        }
        for i in 0..10 {
            pts.push(TrajPoint::xyt(
                90.0 - i as f64 * 10.0,
                0.0,
                100.0 + i as f64 * 10.0,
            ));
        }
        let round = Trajectory::from_points(pts);
        let cfg = SegmentConfig {
            max_gap_s: 600.0,
            min_points: 5,
            depot: Some((depot, 20.0)),
        };
        assert_eq!(segment_trips(&round, &cfg).len(), 1);

        // One-way drift away from the depot is rejected.
        let one_way: Trajectory = (0..20)
            .map(|i| TrajPoint::xyt(i as f64 * 10.0, 0.0, i as f64 * 10.0))
            .collect();
        assert!(segment_trips(&one_way, &cfg).is_empty());
    }

    #[test]
    fn empty_stream() {
        assert!(segment_trips(&Trajectory::new(), &SegmentConfig::default()).is_empty());
    }

    #[test]
    fn no_gap_is_one_segment() {
        let t: Trajectory = (0..30)
            .map(|i| TrajPoint::xyt(i as f64, 0.0, i as f64 * 13.5))
            .collect();
        let segs = segment_trips(&t, &SegmentConfig::default());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 30);
    }
}
