#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! Trajectory types and preprocessing for the DLInfMA reproduction.
//!
//! A courier's GPS stream enters the pipeline as a [`Trajectory`] of
//! [`TrajPoint`]s. Before stay points can be extracted it is cleaned with the
//! heuristics-based [`noise`] filter (speed outlier removal, following Zheng,
//! "Trajectory Data Mining", 2015), and then segmented into [`StayPoint`]s
//! with the classic detector of Li et al. (2008) exactly as Definition 4 of
//! the paper prescribes (`D_max = 20 m`, `T_min = 30 s` by default).

pub mod noise;
pub mod segment;
pub mod simplify;
pub mod staypoint;
pub mod types;

pub use noise::{filter_noise, NoiseFilterConfig};
pub use segment::{segment_trips, SegmentConfig};
pub use simplify::simplify;
pub use staypoint::{detect_stay_points, StayPoint, StayPointConfig};
pub use types::{TrajPoint, Trajectory};
