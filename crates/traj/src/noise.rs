//! Heuristics-based GPS noise filtering.
//!
//! Section III-A of the paper cleans trajectories with the heuristic outlier
//! filter from Zheng's trajectory-mining survey before stay-point detection:
//! a fix whose implied travel speed from the previous *kept* fix exceeds a
//! physical threshold is discarded. Couriers move on foot or by tricycle, so
//! the default threshold is generous (30 m/s ≈ 108 km/h) and only removes
//! true jumps such as urban-canyon multipath spikes.

use crate::types::{TrajPoint, Trajectory};

/// Configuration for [`filter_noise`].
#[derive(Debug, Clone, Copy)]
pub struct NoiseFilterConfig {
    /// Maximum plausible speed in m/s; fixes implying a higher speed from the
    /// previous kept fix are dropped.
    pub max_speed_mps: f64,
    /// When two fixes share a timestamp (`dt <= min_dt_s`) the later one is
    /// dropped if it moved further than `max_speed_mps * min_dt_s`; otherwise
    /// it is kept. Guards the speed computation against division by zero.
    pub min_dt_s: f64,
}

impl Default for NoiseFilterConfig {
    fn default() -> Self {
        Self {
            // lint: allow(L3, courier speed cap in m/s, unrelated to the 30 s T_min)
            max_speed_mps: 30.0,
            min_dt_s: 1.0,
        }
    }
}

/// Removes speed-outlier fixes from `traj`, returning the cleaned trajectory.
///
/// The first fix is always kept; each subsequent fix is kept iff its speed
/// relative to the previous *kept* fix is plausible. This is the standard
/// greedy heuristic: after a spike, the next genuine fix is close to the last
/// kept fix again, so only the spike is lost.
pub fn filter_noise(traj: &Trajectory, cfg: &NoiseFilterConfig) -> Trajectory {
    let pts = traj.points();
    if pts.is_empty() {
        return Trajectory::new();
    }
    let mut kept: Vec<TrajPoint> = Vec::with_capacity(pts.len());
    let mut last = pts[0];
    kept.push(last);
    for &p in &pts[1..] {
        let dt = (p.t - last.t).max(cfg.min_dt_s);
        let speed = last.pos.distance(&p.pos) / dt;
        if speed <= cfg.max_speed_mps {
            kept.push(p);
            last = p;
        }
    }
    Trajectory::from_points(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn walk(speed: f64, dt: f64, n: usize) -> Vec<TrajPoint> {
        (0..n)
            .map(|i| TrajPoint::xyt(i as f64 * speed * dt, 0.0, i as f64 * dt))
            .collect()
    }

    #[test]
    fn clean_walk_is_untouched() {
        let traj = Trajectory::from_points(walk(1.4, 13.5, 50));
        let cleaned = filter_noise(&traj, &NoiseFilterConfig::default());
        assert_eq!(cleaned.len(), 50);
    }

    #[test]
    fn single_spike_is_removed() {
        let mut pts = walk(1.4, 10.0, 20);
        // Teleport fix 10 a kilometer away: 100 m/s implied speed.
        pts[10].pos = dlinfma_geo::Point::new(pts[10].pos.x + 1000.0, 0.0);
        let cleaned = filter_noise(&Trajectory::from_points(pts), &NoiseFilterConfig::default());
        assert_eq!(cleaned.len(), 19);
        // No remaining segment implies a speed above the threshold.
        for w in cleaned.points().windows(2) {
            let v = w[0].pos.distance(&w[1].pos) / (w[1].t - w[0].t).max(1.0);
            assert!(v <= 30.0);
        }
    }

    #[test]
    fn consecutive_spikes_are_removed() {
        let mut pts = walk(1.4, 10.0, 30);
        for p in pts.iter_mut().take(15).skip(12) {
            p.pos = dlinfma_geo::Point::new(5000.0, 5000.0);
        }
        let cleaned = filter_noise(&Trajectory::from_points(pts), &NoiseFilterConfig::default());
        assert_eq!(cleaned.len(), 27);
    }

    #[test]
    fn empty_input() {
        let cleaned = filter_noise(&Trajectory::new(), &NoiseFilterConfig::default());
        assert!(cleaned.is_empty());
    }

    #[test]
    fn first_fix_always_kept() {
        let pts = vec![
            TrajPoint::xyt(1e9, 1e9, 0.0),
            TrajPoint::xyt(0.0, 0.0, 10.0),
        ];
        let cleaned = filter_noise(&Trajectory::from_points(pts), &NoiseFilterConfig::default());
        assert_eq!(cleaned.len(), 1);
        assert_eq!(cleaned.points()[0].pos.x, 1e9);
    }

    #[test]
    fn zero_dt_duplicate_fix_handled() {
        // Two fixes at the same time, second 5 m away: speed over min_dt 1 s
        // is 5 m/s, plausible, kept. A 100 m jump at the same instant is not.
        let pts = vec![
            TrajPoint::xyt(0.0, 0.0, 0.0),
            TrajPoint::xyt(5.0, 0.0, 0.0),
            TrajPoint::xyt(100.0, 0.0, 0.0),
        ];
        let cleaned = filter_noise(&Trajectory::from_points(pts), &NoiseFilterConfig::default());
        assert_eq!(cleaned.len(), 2);
    }

    proptest! {
        #[test]
        fn output_never_longer_and_keeps_order(
            coords in proptest::collection::vec((-1e4..1e4f64, -1e4..1e4f64, 0.0..1e5f64), 0..100)
        ) {
            let traj: Trajectory = coords
                .iter()
                .map(|&(x, y, t)| TrajPoint::xyt(x, y, t))
                .collect();
            let cleaned = filter_noise(&traj, &NoiseFilterConfig::default());
            prop_assert!(cleaned.len() <= traj.len());
            for w in cleaned.points().windows(2) {
                prop_assert!(w[0].t <= w[1].t);
            }
        }

        #[test]
        fn no_kept_segment_exceeds_speed(
            coords in proptest::collection::vec((-1e4..1e4f64, -1e4..1e4f64), 2..60)
        ) {
            // Fixes 10 s apart at random positions; after filtering, every
            // consecutive pair must satisfy the speed bound.
            let traj: Trajectory = coords
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| TrajPoint::xyt(x, y, i as f64 * 10.0))
                .collect();
            let cfg = NoiseFilterConfig::default();
            let cleaned = filter_noise(&traj, &cfg);
            for w in cleaned.points().windows(2) {
                let v = w[0].pos.distance(&w[1].pos) / (w[1].t - w[0].t).max(cfg.min_dt_s);
                prop_assert!(v <= cfg.max_speed_mps + 1e-9);
            }
        }
    }
}
