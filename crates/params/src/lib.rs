//! Canonical constants of the DLInfMA paper, in one place.
//!
//! The pipeline's thresholds appear throughout the codebase — stay-point
//! extraction, candidate clustering, retrieval, the synthetic generator and
//! the baselines all reason about the same few meters-and-seconds numbers.
//! Scattering them as magic literals caused the drift the `xtask lint` L3
//! rule now prevents: **every non-test use of a paper constant must
//! reference this crate** (or carry an explicit L3 allow directive with a
//! reason why the literal is a coincidence, not the paper constant).
//!
//! This crate is dependency-free and sits below every other crate in the
//! workspace graph, so `geo`/`traj`/`cluster` can use it without cycles.
//! `dlinfma-core` re-exports it as `dlinfma_core::params`.

/// Stay-point distance threshold `D_max` in meters (Definition 4; paper
/// Section III-A uses 20 m).
pub const D_MAX_M: f64 = 20.0;

/// Stay-point duration threshold `T_min` in seconds (Definition 4; paper
/// Section III-A uses 30 s).
pub const T_MIN_S: f64 = 30.0;

/// Hierarchical-clustering distance `D` in meters for building the
/// candidate pool (paper Section III-B / Figure 10(a) uses 40 m).
pub const CLUSTER_DISTANCE_M: f64 = 40.0;

/// Clustering distance re-tuned for the synthetic geometry: Figure 10(a)'s
/// selection procedure (pick `D` at the MAE minimum) lands at 30 m on the
/// generated worlds — see EXPERIMENTS.md.
pub const TUNED_CLUSTER_DISTANCE_M: f64 = 30.0;

/// Mean GPS sampling interval in seconds reported for the paper's datasets
/// (Table I: ~13.5 s).
pub const GPS_SAMPLE_INTERVAL_S: f64 = 13.5;

/// Radius in meters within which an inferred location is counted as
/// matching the ground truth in evaluation narratives (paper Section VI
/// discusses 20–50 m bands; the repo's checks use the stay-point radius).
pub const MATCH_RADIUS_M: f64 = D_MAX_M;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_match_the_paper() {
        assert_eq!(D_MAX_M, 20.0);
        assert_eq!(T_MIN_S, 30.0);
        assert_eq!(CLUSTER_DISTANCE_M, 40.0);
        assert_eq!(GPS_SAMPLE_INTERVAL_S, 13.5);
        assert!(TUNED_CLUSTER_DISTANCE_M < CLUSTER_DISTANCE_M);
    }
}
