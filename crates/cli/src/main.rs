//! `dlinfma` — command-line interface to the reproduction.
//!
//! ```text
//! dlinfma generate --preset dowbj --scale small --seed 1 --out world.json
//! dlinfma stats    --preset subbj --scale small --seed 1
//! dlinfma eval     --preset dowbj --scale tiny  --seed 1 [--all]
//! dlinfma infer    --preset dowbj --scale tiny  --seed 1 --address 12
//! dlinfma replay   --preset dowbj --scale tiny  --seed 1
//! dlinfma replay   --preset dowbj --scale tiny  --seed 1 --shards 4
//! dlinfma health   --preset dowbj --scale tiny  --seed 1
//! dlinfma geojson  --preset dowbj --scale tiny  --seed 1 --out map.geojson
//! dlinfma serve    --preset dowbj --scale tiny  --seed 1 --port 8080
//! ```
//!
//! Every command accepts `--trace-out FILE` to record a Chrome trace-event
//! JSON profile of the run (open it at <https://ui.perfetto.dev>).

use dlinfma_core::{snapshot, DlInfMa, DlInfMaConfig, Engine, RestoredEngine};
use dlinfma_eval::{
    dataset_stats, evaluate, multi_location_building_fraction, pipeline_config,
    render_metrics_table, ExperimentWorld, Method,
};
use dlinfma_obs as obs;
use dlinfma_synth::{generate, AddressId, Preset, Scale};
use std::process::ExitCode;

/// Minimal `--flag value` argument map (no external parser dependency).
#[derive(Debug)]
struct Args {
    command: String,
    flags: Vec<(String, String)>,
    all: bool,
    verbose: bool,
}

impl Args {
    fn parse() -> Result<Args, String> {
        Self::parse_from(std::env::args().skip(1).collect())
    }

    /// Parses `argv` (without the program name). Errors name the offending
    /// flag or argument so a typo is diagnosable from the message alone.
    fn parse_from(argv: Vec<String>) -> Result<Args, String> {
        let mut argv = argv.into_iter();
        let command = argv.next().ok_or_else(|| usage().to_string())?;
        let mut flags = Vec::new();
        let mut all = false;
        let mut verbose = false;
        while let Some(a) = argv.next() {
            match a.as_str() {
                "--all" => all = true,
                "--verbose" => verbose = true,
                _ => {
                    let Some(name) = a.strip_prefix("--") else {
                        return Err(format!(
                            "unexpected argument '{a}' (flags start with --)\n{}",
                            usage()
                        ));
                    };
                    const KNOWN: &[&str] = &[
                        "preset",
                        "scale",
                        "seed",
                        "workers",
                        "shards",
                        "out",
                        "address",
                        "metrics-out",
                        "trace-out",
                        "port",
                        "day-delay-ms",
                        "train-days",
                        "serve-ms",
                        "self-check",
                        "snapshot-dir",
                        "checkpoint-every",
                        "from-day",
                    ];
                    if !KNOWN.contains(&name) {
                        return Err(format!("unknown flag '--{name}'\n{}", usage()));
                    }
                    let Some(value) = argv.next() else {
                        return Err(format!("flag '--{name}' is missing a value"));
                    };
                    flags.push((name.to_string(), value));
                }
            }
        }
        Ok(Args {
            command,
            flags,
            all,
            verbose,
        })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn preset(&self) -> Result<Preset, String> {
        match self.get("preset").unwrap_or("dowbj") {
            "dowbj" => Ok(Preset::DowBJ),
            "subbj" => Ok(Preset::SubBJ),
            other => Err(format!("unknown preset '{other}' (dowbj|subbj)")),
        }
    }

    fn scale(&self) -> Result<Scale, String> {
        match self.get("scale").unwrap_or("small") {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (tiny|small|full)")),
        }
    }

    fn seed(&self) -> Result<u64, String> {
        let v = self.get("seed").unwrap_or("1");
        v.parse().map_err(|e| format!("bad --seed '{v}': {e}"))
    }

    fn workers(&self) -> Result<Option<usize>, String> {
        match self.get("workers") {
            None => Ok(None),
            Some(v) => match v.parse::<usize>() {
                Ok(0) => Err("bad --workers '0': must be at least 1".to_string()),
                Ok(n) => Ok(Some(n)),
                Err(e) => Err(format!("bad --workers '{v}': {e}")),
            },
        }
    }

    /// Station shards for fleet mode (`replay`/`serve`); defaults to 1
    /// (one whole-fleet engine — bit-identical to any other shard count).
    fn shards(&self) -> Result<usize, String> {
        match self.get("shards") {
            None => Ok(1),
            Some(v) => match v.parse::<usize>() {
                Ok(0) => Err("bad --shards '0': must be at least 1".to_string()),
                Ok(n) => Ok(n),
                Err(e) => Err(format!("bad --shards '{v}': {e}")),
            },
        }
    }

    /// The pipeline configuration for this invocation: the preset's tuned
    /// configuration with the `--workers` override applied.
    fn pipeline_cfg(&self, preset: Preset) -> Result<DlInfMaConfig, String> {
        let mut cfg = pipeline_config(preset);
        if let Some(w) = self.workers()? {
            cfg.workers = w;
        }
        Ok(cfg)
    }

    /// A numeric flag with a default; errors name the flag and the value.
    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{name} '{v}': {e}")),
        }
    }

    /// `--checkpoint-every K`: checkpoint every K ingested days; `None`
    /// when the flag is absent (no periodic checkpoints).
    fn checkpoint_every(&self) -> Result<Option<u32>, String> {
        match self.get("checkpoint-every") {
            None => Ok(None),
            Some(v) => match v.parse::<u32>() {
                Ok(0) => Err("bad --checkpoint-every '0': must be at least 1".to_string()),
                Ok(n) => Ok(Some(n)),
                Err(e) => Err(format!("bad --checkpoint-every '{v}': {e}")),
            },
        }
    }

    /// Fail-fast validation of every output path: each named file must be
    /// creatable/writable *before* the run starts, so a typo'd directory
    /// errors in milliseconds instead of silently discarding minutes of
    /// replay when the file is finally opened at the end. `--snapshot-dir`
    /// gets the same treatment: the directory must be creatable up front,
    /// so checkpoints can't fail after a day of ingest.
    fn validate_output_flags(&self) -> Result<(), String> {
        for flag in ["out", "metrics-out", "trace-out"] {
            if let Some(path) = self.get(flag) {
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("cannot open --{flag} '{path}': {e}"))?;
            }
        }
        if let Some(dir) = self.get("snapshot-dir") {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create --snapshot-dir '{dir}': {e}"))?;
        }
        if self.checkpoint_every()?.is_some() && self.get("snapshot-dir").is_none() {
            return Err("--checkpoint-every needs --snapshot-dir DIR".to_string());
        }
        Ok(())
    }
}

fn usage() -> &'static str {
    "usage: dlinfma <command> [--preset dowbj|subbj] [--scale tiny|small|full] [--seed N]\n\
     \x20              [--workers N] [--verbose] [--metrics-out FILE]\n\
     commands:\n\
     \x20 generate  --out FILE     write the synthetic dataset as JSON\n\
     \x20 stats                    print Table I-style dataset statistics\n\
     \x20 eval      [--all]        train + evaluate methods on the test region\n\
     \x20 infer     --address N    train DLInfMA and infer one address\n\
     \x20 replay    [--shards N]   stream the dataset day by day through the engine\n\
     \x20                          (--shards N > 1: fleet mode, one engine per station shard)\n\
     \x20           [--snapshot-dir D --checkpoint-every K]  durable checkpoint every K days\n\
     \x20 checkpoint --snapshot-dir D [--shards N]  replay fully, write one checkpoint,\n\
     \x20                          read it back and verify byte-identical re-encode\n\
     \x20 resume    --snapshot-dir D [--from-day N]  restore a checkpoint (latest by\n\
     \x20                          default) and ingest the remaining days\n\
     \x20 health                   replay the dataset and print ingest health monitors\n\
     \x20 geojson   --out FILE     train DLInfMA and export a GeoJSON map\n\
     \x20 serve     [--port N]     HTTP lookups from snapshots under live ingest;\n\
     \x20           [--shards N] [--day-delay-ms N] [--train-days N] [--serve-ms N] [--self-check N]\n\
     \x20           [--snapshot-dir D]  warm restart from the latest checkpoint\n\
     \x20           endpoints: /lookup?address=N /batch?addresses=N,M /healthz /stats /shutdown\n\
     observability:\n\
     \x20 --verbose           print stage timings, spans and metrics to stderr\n\
     \x20 --metrics-out FILE  write spans/metrics/report/health as JSON\n\
     \x20 --trace-out FILE    write a Chrome trace-event profile (Perfetto-loadable)"
}

/// Prints the collected observability data to stderr (`--verbose`), writes
/// the JSON export (`--metrics-out FILE`), and drains the trace rings to a
/// Chrome trace-event file (`--trace-out FILE`).
fn emit_observability(
    args: &Args,
    report: Option<&obs::PipelineReport>,
    health: Option<&obs::HealthReport>,
) -> Result<(), String> {
    if args.verbose {
        if let Some(r) = report {
            eprint!("{}", r.render_table());
        }
        let spans = obs::spans_snapshot();
        if !spans.is_empty() {
            eprint!("{}", obs::render_spans(&spans));
        }
        eprint!("{}", obs::render_metrics(&obs::metrics_snapshot()));
    }
    if let Some(path) = args.get("metrics-out") {
        let mut json = obs::export_json(report);
        if let (obs::JsonValue::Obj(fields), Some(h)) = (&mut json, health) {
            fields.push(("health".to_string(), h.to_json()));
        }
        std::fs::write(path, json.render_pretty()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    if let Some(path) = args.get("trace-out") {
        let capture = obs::take_trace();
        std::fs::write(path, obs::chrome_trace_json(&capture).render())
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "wrote trace to {path} ({} events across {} threads{})",
            capture.events.len(),
            capture.threads.len(),
            if capture.dropped > 0 {
                format!(", {} dropped", capture.dropped)
            } else {
                String::new()
            }
        );
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    args.validate_output_flags()?;
    let preset = args.preset()?;
    let scale = args.scale()?;
    let seed = args.seed()?;
    if args.verbose || args.get("metrics-out").is_some() {
        obs::enable();
    }
    if args.get("trace-out").is_some() {
        obs::trace_enable();
    }
    let mut report: Option<obs::PipelineReport> = None;
    let mut health: Option<obs::HealthReport> = None;

    match args.command.as_str() {
        "generate" => {
            let out = args.get("out").ok_or("generate needs --out FILE")?;
            let (_, dataset) = generate(preset, scale, seed);
            let json = dataset.to_json().render();
            std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
            println!(
                "wrote {} ({} addresses, {} trips, {} waybills)",
                out,
                dataset.addresses.len(),
                dataset.trips.len(),
                dataset.waybills.len()
            );
        }
        "stats" => {
            let (_, dataset) = generate(preset, scale, seed);
            let s = dataset_stats(&dataset);
            println!("dataset          {}", preset.name());
            println!("addresses        {}", s.n_addresses);
            println!("buildings        {}", s.n_buildings);
            println!("trips            {}", s.n_trips);
            println!("waybills         {}", s.n_waybills);
            println!("gps fixes        {}", s.n_gps_points);
            println!("sampling rate    {:.1} s", s.mean_sampling_s);
            println!(
                "multi-location buildings {:.1}%",
                multi_location_building_fraction(&dataset) * 100.0
            );
        }
        "eval" => {
            let world =
                ExperimentWorld::build_with_config(preset, scale, seed, args.pipeline_cfg(preset)?);
            report = Some(world.dlinfma.report().clone());
            let methods = if args.all {
                Method::all()
            } else {
                vec![
                    Method::Geocoding,
                    Method::Annotation,
                    Method::GeoCloud,
                    Method::MinDist,
                    Method::MaxTcIlc,
                    Method::DlInfMa,
                ]
            };
            let results: Vec<_> = methods.into_iter().map(|m| evaluate(&world, m)).collect();
            println!(
                "{}",
                render_metrics_table(
                    &format!("{} test region (seed {seed})", preset.name()),
                    &results
                )
            );
        }
        "infer" => {
            let address: u32 = args
                .get("address")
                .ok_or("infer needs --address N")?
                .parse()
                .map_err(|e| format!("bad --address: {e}"))?;
            let (city, dataset) = generate(preset, scale, seed);
            let split = dlinfma_synth::spatial_split(&dataset, 0.6, 0.2);
            let mut dlinfma = DlInfMa::prepare(&dataset, args.pipeline_cfg(preset)?);
            dlinfma.label_from_dataset(&dataset);
            dlinfma.train(&split.train, &split.val);
            report = Some(dlinfma.report().clone());
            let addr = AddressId(address);
            if (address as usize) >= dataset.addresses.len() {
                return Err(format!("address {address} out of range"));
            }
            let inferred = dlinfma.infer_or_geocode(&dataset, addr);
            let truth = city.addresses[address as usize].true_delivery_location;
            println!("address      {address}");
            println!(
                "geocode      ({:.1}, {:.1})",
                dataset.address(addr).geocode.x,
                dataset.address(addr).geocode.y
            );
            println!("inferred     ({:.1}, {:.1})", inferred.x, inferred.y);
            println!("ground truth ({:.1}, {:.1})", truth.x, truth.y);
            println!("error        {:.1} m", inferred.distance(&truth));
        }
        "replay" => {
            let shards = args.shards()?;
            let snapshot_dir = args.get("snapshot-dir");
            let every = args.checkpoint_every()?;
            let (_, dataset) = generate(preset, scale, seed);
            let store = dlinfma_ststore::TrajectoryStore::new();
            if shards > 1 {
                // Fleet mode: one engine per station shard, merged totals.
                let mut fleet = dlinfma_core::ShardedEngine::new(
                    dataset.addresses.clone(),
                    args.pipeline_cfg(preset)?,
                    shards,
                );
                let mut days = 0u64;
                let mut total_ns = 0u64;
                for batch in dlinfma_synth::replay(&dataset) {
                    store.ingest_batch(&batch);
                    let rep = fleet.ingest(&batch);
                    println!("{}", rep.render_line());
                    days += 1;
                    total_ns += rep.aggregate().total_ns();
                    if let (Some(dir), Some(k)) = (snapshot_dir, every) {
                        if days.is_multiple_of(u64::from(k)) {
                            let path = snapshot::write_fleet_checkpoint(
                                std::path::Path::new(dir),
                                days as u32,
                                &fleet,
                            )
                            .map_err(|e| e.to_string())?;
                            println!("checkpointed day {days} to {}", path.display());
                        }
                    }
                }
                println!(
                    "replayed {days} days across {shards} shards: {} stays, {} candidates, \
                     {} sampled addresses ({:.3} ms total ingest; store holds {} fixes, \
                     {} waybills)",
                    fleet.n_stays(),
                    fleet.n_candidates(),
                    fleet.merged_samples().len(),
                    total_ns as f64 / 1e6,
                    store.n_fixes(),
                    store.n_waybills()
                );
            } else {
                let mut engine = Engine::new(dataset.addresses.clone(), args.pipeline_cfg(preset)?);
                let mut days = 0u64;
                let mut total_ns = 0u64;
                for batch in dlinfma_synth::replay(&dataset) {
                    store.ingest_batch(&batch);
                    let rep = engine.ingest(&batch);
                    println!("{}", rep.render_line());
                    days += 1;
                    total_ns += rep.total_ns();
                    if let (Some(dir), Some(k)) = (snapshot_dir, every) {
                        if days.is_multiple_of(u64::from(k)) {
                            let path = snapshot::write_engine_checkpoint(
                                std::path::Path::new(dir),
                                days as u32,
                                &engine,
                            )
                            .map_err(|e| e.to_string())?;
                            println!("checkpointed day {days} to {}", path.display());
                        }
                    }
                }
                println!(
                    "replayed {days} days: {} stays, {} candidates, {} sampled addresses \
                     ({:.3} ms total ingest; store holds {} fixes, {} waybills)",
                    engine.n_stays(),
                    engine.pool().len(),
                    engine.samples().count(),
                    total_ns as f64 / 1e6,
                    store.n_fixes(),
                    store.n_waybills()
                );
                report = Some(engine.report().clone());
                health = Some(engine.health_report());
            }
        }
        "checkpoint" => {
            // Cheap durable-format round trip: replay everything, write one
            // checkpoint, read it back and require the re-encode to be
            // byte-identical. This is CI's quick-loop format check.
            let dir = args
                .get("snapshot-dir")
                .ok_or("checkpoint needs --snapshot-dir DIR")?;
            let dir_path = std::path::Path::new(dir);
            let shards = args.shards()?;
            let (_, dataset) = generate(preset, scale, seed);
            let cfg = args.pipeline_cfg(preset)?;
            let mut days = 0u32;
            let written = if shards > 1 {
                let mut fleet =
                    dlinfma_core::ShardedEngine::new(dataset.addresses.clone(), cfg, shards);
                for batch in dlinfma_synth::replay(&dataset) {
                    fleet.ingest(&batch);
                    days += 1;
                }
                let path = snapshot::write_fleet_checkpoint(dir_path, days, &fleet)
                    .map_err(|e| e.to_string())?;
                let originals: Vec<Vec<u8>> = (0..shards)
                    .map(|s| snapshot::engine_to_bytes(fleet.shard(s)))
                    .collect();
                (path, originals)
            } else {
                let mut engine = Engine::new(dataset.addresses.clone(), cfg);
                for batch in dlinfma_synth::replay(&dataset) {
                    engine.ingest(&batch);
                    days += 1;
                }
                let path = snapshot::write_engine_checkpoint(dir_path, days, &engine)
                    .map_err(|e| e.to_string())?;
                (path, vec![snapshot::engine_to_bytes(&engine)])
            };
            let (path, originals) = written;
            let restored = snapshot::read_checkpoint(dir_path, days, &dataset.addresses, cfg)
                .map_err(|e| e.to_string())?;
            let reencoded: Vec<Vec<u8>> = match &restored.engine {
                RestoredEngine::Single(e) => vec![snapshot::engine_to_bytes(e)],
                RestoredEngine::Fleet(f) => (0..f.n_shards())
                    .map(|s| snapshot::engine_to_bytes(f.shard(s)))
                    .collect(),
            };
            if originals != reencoded {
                return Err(format!(
                    "checkpoint round trip is not byte-identical at {}",
                    path.display()
                ));
            }
            let total: usize = originals.iter().map(Vec::len).sum();
            println!(
                "checkpoint verified: day {days}, {shards} shard(s), {total} snapshot bytes at {}",
                path.display()
            );
        }
        "resume" => {
            let dir = args
                .get("snapshot-dir")
                .ok_or("resume needs --snapshot-dir DIR")?;
            let dir_path = std::path::Path::new(dir);
            let every = args.checkpoint_every()?;
            let (_, dataset) = generate(preset, scale, seed);
            let cfg = args.pipeline_cfg(preset)?;
            let day = match args.get("from-day") {
                Some(v) => v
                    .parse::<u32>()
                    .map_err(|e| format!("bad --from-day '{v}': {e}"))?,
                None => snapshot::latest_checkpoint(dir_path)
                    .map_err(|e| e.to_string())?
                    .ok_or_else(|| format!("no checkpoint under '{dir}'"))?,
            };
            let cp = snapshot::read_checkpoint(dir_path, day, &dataset.addresses, cfg)
                .map_err(|e| e.to_string())?;
            let restored_shards = match &cp.engine {
                RestoredEngine::Single(_) => 1,
                RestoredEngine::Fleet(f) => f.n_shards(),
            };
            if args.get("shards").is_some() && args.shards()? != restored_shards {
                return Err(format!(
                    "--shards {} does not match the checkpoint ({restored_shards} shard(s))",
                    args.shards()?
                ));
            }
            println!("resumed from day-{day} checkpoint under {dir} ({restored_shards} shard(s))");
            let remaining = dlinfma_synth::replay(&dataset).skip(cp.days_ingested as usize);
            let mut days = u64::from(cp.days_ingested);
            match cp.engine {
                RestoredEngine::Single(mut engine) => {
                    for batch in remaining {
                        let rep = engine.ingest(&batch);
                        println!("{}", rep.render_line());
                        days += 1;
                        if let Some(k) = every {
                            if days.is_multiple_of(u64::from(k)) {
                                let path = snapshot::write_engine_checkpoint(
                                    dir_path,
                                    days as u32,
                                    &engine,
                                )
                                .map_err(|e| e.to_string())?;
                                println!("checkpointed day {days} to {}", path.display());
                            }
                        }
                    }
                    println!(
                        "resumed at day {day}, {days} days total: {} stays, {} candidates, \
                         {} sampled addresses",
                        engine.n_stays(),
                        engine.pool().len(),
                        engine.samples().count(),
                    );
                    report = Some(engine.report().clone());
                    health = Some(engine.health_report());
                }
                RestoredEngine::Fleet(mut fleet) => {
                    for batch in remaining {
                        let rep = fleet.ingest(&batch);
                        println!("{}", rep.render_line());
                        days += 1;
                        if let Some(k) = every {
                            if days.is_multiple_of(u64::from(k)) {
                                let path =
                                    snapshot::write_fleet_checkpoint(dir_path, days as u32, &fleet)
                                        .map_err(|e| e.to_string())?;
                                println!("checkpointed day {days} to {}", path.display());
                            }
                        }
                    }
                    println!(
                        "resumed at day {day}, {days} days total: {} stays, {} candidates, \
                         {} sampled addresses",
                        fleet.n_stays(),
                        fleet.n_candidates(),
                        fleet.merged_samples().len(),
                    );
                }
            }
        }
        "health" => {
            let (_, dataset) = generate(preset, scale, seed);
            let mut engine = Engine::new(dataset.addresses.clone(), args.pipeline_cfg(preset)?);
            for batch in dlinfma_synth::replay(&dataset) {
                engine.ingest(&batch);
            }
            let h = engine.health_report();
            print!("{}", h.render());
            report = Some(engine.report().clone());
            health = Some(h);
        }
        "geojson" => {
            let out = args.get("out").ok_or("geojson needs --out FILE")?;
            let (city, dataset) = generate(preset, scale, seed);
            let split = dlinfma_synth::spatial_split(&dataset, 0.6, 0.2);
            let mut dlinfma = DlInfMa::prepare(&dataset, args.pipeline_cfg(preset)?);
            dlinfma.label_from_dataset(&dataset);
            dlinfma.train(&split.train, &split.val);
            report = Some(dlinfma.report().clone());
            let json = geojson::export(&city, &dataset, &dlinfma);
            std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
            println!("wrote {out}");
        }
        "serve" => {
            let port: u16 = args.num("port", 0)?;
            let day_delay_ms: u64 = args.num("day-delay-ms", 200)?;
            let train_days: u32 = args.num("train-days", 2)?;
            let serve_ms: u64 = args.num("serve-ms", 0)?;
            let self_check: u64 = args.num("self-check", 0)?;
            let shards = args.shards()?;
            let (_, dataset) = generate(preset, scale, seed);
            let pipeline_cfg = args.pipeline_cfg(preset)?;

            // Warm restart: restore the latest checkpoint when one exists
            // under --snapshot-dir. The restored shape (single vs fleet,
            // shard count) wins; an explicit conflicting --shards errors.
            let warm = match args.get("snapshot-dir") {
                None => None,
                Some(dir) => {
                    let dir_path = std::path::Path::new(dir);
                    match snapshot::latest_checkpoint(dir_path).map_err(|e| e.to_string())? {
                        None => {
                            println!("no checkpoint under {dir}; cold start");
                            None
                        }
                        Some(day) => {
                            let cp = snapshot::read_checkpoint(
                                dir_path,
                                day,
                                &dataset.addresses,
                                pipeline_cfg,
                            )
                            .map_err(|e| e.to_string())?;
                            let restored_shards = match &cp.engine {
                                RestoredEngine::Single(_) => 1,
                                RestoredEngine::Fleet(f) => f.n_shards(),
                            };
                            if args.get("shards").is_some() && shards != restored_shards {
                                return Err(format!(
                                    "--shards {shards} does not match the checkpoint \
                                     ({restored_shards} shard(s))"
                                ));
                            }
                            println!(
                                "warm restart: restored day-{day} checkpoint under {dir} \
                                 ({restored_shards} shard(s))"
                            );
                            Some(cp)
                        }
                    }
                }
            };
            let shards = match &warm {
                Some(cp) => match &cp.engine {
                    RestoredEngine::Single(_) => 1,
                    RestoredEngine::Fleet(f) => f.n_shards(),
                },
                None => shards,
            };
            let cell = std::sync::Arc::new(dlinfma_store::SnapshotCell::new());
            let cfg = dlinfma_serve::ServeConfig {
                addr: format!("127.0.0.1:{port}"),
                ..dlinfma_serve::ServeConfig::default()
            };
            let mut server = dlinfma_serve::Server::start(cfg, std::sync::Arc::clone(&cell))
                .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
            println!(
                "serving on http://{} ({} addresses, {shards} shard(s); \
                 model trains after day {train_days})",
                server.addr(),
                dataset.addresses.len()
            );

            /// What the ingest thread hands back at join: whichever engine
            /// shape it drove, plus the last published epoch.
            enum IngestResult {
                Single(Box<Engine>, u64),
                Fleet(Box<dlinfma_core::ShardedEngine>, u64),
            }

            // Background ingest: one epoch per replayed day. On a warm
            // restart only the days past the checkpoint replay, with
            // absolute day numbers, and the restored state publishes
            // immediately so lookups answer before the first new day
            // lands. The engine moves into the service thread and comes
            // back at join.
            let start_day = warm.as_ref().map_or(0, |cp| cp.days_ingested);
            let batches: Vec<_> = dlinfma_synth::replay(&dataset)
                .skip(start_day as usize)
                .collect();
            let n_days = batches.len();

            /// The pipeline shape the ingest thread drives — restored from
            /// a checkpoint or built cold.
            enum PipelineState {
                Single(Box<Engine>),
                Fleet(Box<dlinfma_core::ShardedEngine>),
            }
            let state = match warm {
                Some(cp) => match cp.engine {
                    RestoredEngine::Single(e) => PipelineState::Single(e),
                    RestoredEngine::Fleet(f) => PipelineState::Fleet(f),
                },
                None if shards > 1 => {
                    PipelineState::Fleet(Box::new(dlinfma_core::ShardedEngine::new(
                        dataset.addresses.clone(),
                        pipeline_cfg,
                        shards,
                    )))
                }
                None => PipelineState::Single(Box::new(Engine::new(
                    dataset.addresses.clone(),
                    pipeline_cfg,
                ))),
            };

            let ingest = {
                let cell = std::sync::Arc::clone(&cell);
                let dataset = dataset.clone();
                dlinfma_pool::spawn_service("cli-ingest", move || match state {
                    PipelineState::Fleet(mut fleet) => {
                        let mut warm_epoch = 0u64;
                        if start_day > 0 {
                            if start_day >= train_days && fleet.model().is_none() {
                                let n = dlinfma_serve::train_sharded_model(&mut fleet, &dataset);
                                println!(
                                    "warm restart: trained fleet model on {n} labelled samples"
                                );
                            }
                            warm_epoch =
                                dlinfma_serve::publish_sharded_snapshot(&fleet, &cell, start_day);
                        }
                        let epoch = dlinfma_serve::replay_and_publish_sharded_from(
                            &mut fleet,
                            batches,
                            &cell,
                            day_delay_ms,
                            start_day,
                            |fleet, day| {
                                if day == train_days {
                                    let n = dlinfma_serve::train_sharded_model(fleet, &dataset);
                                    println!(
                                        "day {day}: trained fleet model on {n} labelled samples"
                                    );
                                }
                            },
                        );
                        IngestResult::Fleet(fleet, if epoch == 0 { warm_epoch } else { epoch })
                    }
                    PipelineState::Single(mut engine) => {
                        let mut warm_epoch = 0u64;
                        if start_day > 0 {
                            if start_day >= train_days && engine.model().is_none() {
                                let n = dlinfma_serve::train_engine_model(&mut engine, &dataset);
                                println!("warm restart: trained model on {n} labelled samples");
                            }
                            warm_epoch = dlinfma_serve::publish_snapshot(&engine, &cell, start_day);
                        }
                        let epoch = dlinfma_serve::replay_and_publish_from(
                            &mut engine,
                            batches,
                            &cell,
                            day_delay_ms,
                            start_day,
                            |engine, day| {
                                if day == train_days {
                                    let n = dlinfma_serve::train_engine_model(engine, &dataset);
                                    println!("day {day}: trained model on {n} labelled samples");
                                }
                            },
                        );
                        IngestResult::Single(engine, if epoch == 0 { warm_epoch } else { epoch })
                    }
                })
            };

            // Optional in-process smoke: issue lookups against ourselves
            // while the ingest thread is live, proving reads don't block.
            if self_check > 0 {
                let mut client = dlinfma_serve::HttpClient::connect(server.addr())
                    .map_err(|e| format!("self-check connect: {e}"))?;
                let probe: Vec<String> = dataset
                    .waybills
                    .iter()
                    .take(8)
                    .map(|w| w.address.0.to_string())
                    .collect();
                let target = format!("/batch?addresses={}", probe.join(","));
                let mut last_epoch = 0.0f64;
                for i in 0..self_check {
                    let (status, body) = client
                        .get(&target)
                        .map_err(|e| format!("self-check request {i}: {e}"))?;
                    if status != 200 {
                        return Err(format!("self-check request {i}: HTTP {status}"));
                    }
                    let epoch = body["epoch"]
                        .as_f64()
                        .ok_or("self-check: response missing epoch")?;
                    if epoch < last_epoch {
                        return Err(format!(
                            "self-check: epoch went backwards ({last_epoch} -> {epoch})"
                        ));
                    }
                    last_epoch = epoch;
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                println!(
                    "self-check: {self_check} epoch-consistent responses (last epoch {last_epoch})"
                );
            }

            let result = ingest.join().map_err(|_| "ingest thread panicked")?;
            let final_epoch = match &result {
                IngestResult::Single(_, e) | IngestResult::Fleet(_, e) => *e,
            };
            println!("ingest complete: {n_days} days, final epoch {final_epoch}");
            if serve_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(serve_ms));
            } else if self_check == 0 {
                println!("serving until GET /shutdown ...");
                while !server.stop_requested() {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
            server.shutdown();
            let stats = server.stats();
            println!(
                "served {} requests ({} errors) over {} connections",
                stats.requests, stats.errors, stats.connections
            );
            match result {
                IngestResult::Single(engine, _) => {
                    report = Some(engine.report().clone());
                    health = Some(engine.health_report());
                }
                IngestResult::Fleet(fleet, _) => {
                    println!(
                        "fleet: {} shards, per-shard epochs {:?}",
                        fleet.n_shards(),
                        fleet.shard_epochs()
                    );
                }
            }
        }
        other => return Err(format!("unknown command '{other}'\n{}", usage())),
    }
    emit_observability(&args, report.as_ref(), health.as_ref())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse_from(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn parse_collects_flags_and_booleans() {
        let a = parse(&["eval", "--seed", "7", "--all", "--verbose"]).unwrap();
        assert_eq!(a.command, "eval");
        assert_eq!(a.seed().unwrap(), 7);
        assert!(a.all);
        assert!(a.verbose);
    }

    #[test]
    fn parse_names_the_flag_missing_a_value() {
        let err = parse(&["stats", "--seed"]).unwrap_err();
        assert!(err.contains("'--seed' is missing a value"), "{err}");
    }

    #[test]
    fn parse_rejects_positional_arguments_by_name() {
        let err = parse(&["stats", "seed", "5"]).unwrap_err();
        assert!(err.contains("unexpected argument 'seed'"), "{err}");
    }

    #[test]
    fn parse_rejects_unknown_flags_by_name() {
        let err = parse(&["stats", "--bogus", "5"]).unwrap_err();
        assert!(err.contains("unknown flag '--bogus'"), "{err}");
    }

    #[test]
    fn bad_flag_values_name_the_flag() {
        let a = parse(&["stats", "--seed", "ten"]).unwrap();
        assert!(a.seed().unwrap_err().contains("--seed 'ten'"));
        let a = parse(&["eval", "--workers", "0"]).unwrap();
        assert!(a.workers().unwrap_err().contains("--workers '0'"));
        let a = parse(&["eval", "--workers", "x"]).unwrap();
        assert!(a.workers().unwrap_err().contains("--workers 'x'"));
    }

    #[test]
    fn shards_flag_parses_defaults_and_rejects_zero() {
        let a = parse(&["replay"]).unwrap();
        assert_eq!(a.shards().unwrap(), 1);
        let a = parse(&["replay", "--shards", "4"]).unwrap();
        assert_eq!(a.shards().unwrap(), 4);
        let a = parse(&["serve", "--shards", "0"]).unwrap();
        assert!(a.shards().unwrap_err().contains("--shards '0'"));
        let a = parse(&["serve", "--shards", "x"]).unwrap();
        assert!(a.shards().unwrap_err().contains("--shards 'x'"));
    }

    #[test]
    fn trace_and_metrics_output_flags_parse() {
        let a = parse(&["replay", "--trace-out", "t.json", "--metrics-out", "m.json"]).unwrap();
        assert_eq!(a.get("trace-out"), Some("t.json"));
        assert_eq!(a.get("metrics-out"), Some("m.json"));
    }

    #[test]
    fn output_flags_fail_fast_and_name_the_flag() {
        // A typo'd directory must error at validation time — before any
        // work runs — and the message must say which flag is at fault.
        for flag in ["out", "metrics-out", "trace-out"] {
            let bad = format!("/nonexistent-dir-for-dlinfma-test/{flag}.json");
            let a = parse(&["replay", &format!("--{flag}"), &bad]).unwrap();
            let err = a.validate_output_flags().unwrap_err();
            assert!(err.contains(&format!("--{flag}")), "{err}");
            assert!(err.contains(&bad), "{err}");
        }
    }

    #[test]
    fn output_flag_validation_accepts_writable_paths() {
        let dir = std::env::temp_dir().join("dlinfma-cli-flagcheck");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.json");
        let path = path.to_str().unwrap();
        let a = parse(&["replay", "--trace-out", path]).unwrap();
        a.validate_output_flags().unwrap();
        assert!(std::path::Path::new(path).exists(), "file pre-created");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpoint_every_requires_a_snapshot_dir() {
        let a = parse(&["replay", "--checkpoint-every", "2"]).unwrap();
        let err = a.validate_output_flags().unwrap_err();
        assert!(
            err.contains("--checkpoint-every needs --snapshot-dir"),
            "{err}"
        );
    }

    #[test]
    fn checkpoint_every_rejects_zero_and_garbage_by_name() {
        let a = parse(&["replay", "--checkpoint-every", "0"]).unwrap();
        assert!(a
            .checkpoint_every()
            .unwrap_err()
            .contains("--checkpoint-every '0'"));
        let a = parse(&["resume", "--checkpoint-every", "x"]).unwrap();
        assert!(a
            .checkpoint_every()
            .unwrap_err()
            .contains("--checkpoint-every 'x'"));
    }

    #[test]
    fn snapshot_dir_fails_fast_and_names_the_flag() {
        // A path that cannot be a directory (its parent is a regular file)
        // must error at validation time — before any replay work — for
        // both `replay` and `serve`.
        let file = std::env::temp_dir().join("dlinfma-snapdir-not-a-dir");
        std::fs::write(&file, b"x").unwrap();
        let bad = file.join("sub");
        let bad = bad.to_str().unwrap();
        for command in ["replay", "serve"] {
            let a = parse(&[command, "--snapshot-dir", bad]).unwrap();
            let err = a.validate_output_flags().unwrap_err();
            assert!(err.contains("--snapshot-dir"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn snapshot_dir_validation_creates_the_directory() {
        let dir = std::env::temp_dir().join("dlinfma-snapdir-ok/nested");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
        let a = parse(&["replay", "--snapshot-dir", dir.to_str().unwrap()]).unwrap();
        a.validate_output_flags().unwrap();
        assert!(dir.is_dir(), "directory pre-created");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn serve_flags_parse_with_defaults() {
        let a = parse(&[
            "serve",
            "--port",
            "8080",
            "--day-delay-ms",
            "5",
            "--self-check",
            "20",
        ])
        .unwrap();
        assert_eq!(a.num::<u16>("port", 0).unwrap(), 8080);
        assert_eq!(a.num::<u64>("day-delay-ms", 200).unwrap(), 5);
        assert_eq!(a.num::<u32>("train-days", 2).unwrap(), 2); // default
        assert_eq!(a.num::<u64>("self-check", 0).unwrap(), 20);
        let err = parse(&["serve", "--port", "seventy"])
            .unwrap()
            .num::<u16>("port", 0)
            .unwrap_err();
        assert!(err.contains("--port 'seventy'"), "{err}");
    }

    #[test]
    fn workers_flag_overrides_pipeline_config() {
        let a = parse(&["eval", "--workers", "2"]).unwrap();
        let cfg = a.pipeline_cfg(Preset::DowBJ).unwrap();
        assert_eq!(cfg.workers, 2);
        let a = parse(&["eval"]).unwrap();
        assert_eq!(
            a.pipeline_cfg(Preset::DowBJ).unwrap().workers,
            pipeline_config(Preset::DowBJ).workers
        );
    }
}

mod geojson {
    //! Minimal GeoJSON export: the local metric frame is re-projected onto
    //! WGS-84 around Beijing so the output opens in any GIS viewer.

    use dlinfma_core::DlInfMa;
    use dlinfma_geo::{LatLng, Point, Projection};
    use dlinfma_obs::JsonValue;
    use dlinfma_synth::{City, Dataset};

    fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn lnglat(proj: &Projection, p: Point) -> JsonValue {
        let ll = proj.unproject(&p);
        JsonValue::Arr(vec![JsonValue::Num(ll.lng), JsonValue::Num(ll.lat)])
    }

    fn feature(proj: &Projection, p: Point, properties: Vec<(&str, JsonValue)>) -> JsonValue {
        obj(vec![
            ("type", JsonValue::Str("Feature".into())),
            (
                "geometry",
                obj(vec![
                    ("type", JsonValue::Str("Point".into())),
                    ("coordinates", lnglat(proj, p)),
                ]),
            ),
            ("properties", obj(properties)),
        ])
    }

    /// Renders addresses (geocode + ground truth), candidates and inferred
    /// locations as one GeoJSON FeatureCollection string.
    pub fn export(city: &City, dataset: &Dataset, dlinfma: &DlInfMa) -> String {
        let proj = Projection::new(LatLng::new(39.9042, 116.4074));
        let mut features: Vec<JsonValue> = Vec::new();
        for a in &city.addresses {
            features.push(feature(
                &proj,
                a.geocode,
                vec![
                    ("kind", JsonValue::Str("geocode".into())),
                    ("address", JsonValue::Num(a.id.0 as f64)),
                ],
            ));
            features.push(feature(
                &proj,
                a.true_delivery_location,
                vec![
                    ("kind", JsonValue::Str("truth".into())),
                    ("address", JsonValue::Num(a.id.0 as f64)),
                    ("spot", JsonValue::Str(format!("{:?}", a.true_spot_kind))),
                ],
            ));
            if let Some(p) = dlinfma.infer(a.id) {
                features.push(feature(
                    &proj,
                    p,
                    vec![
                        ("kind", JsonValue::Str("inferred".into())),
                        ("address", JsonValue::Num(a.id.0 as f64)),
                    ],
                ));
            }
        }
        for c in dlinfma.pool().candidates() {
            features.push(feature(
                &proj,
                c.pos,
                vec![
                    ("kind", JsonValue::Str("candidate".into())),
                    ("id", JsonValue::Num(c.id.0 as f64)),
                    ("stays", JsonValue::Num(c.profile.n_stays as f64)),
                    ("couriers", JsonValue::Num(c.profile.n_couriers as f64)),
                    ("avg_dwell_s", JsonValue::Num(c.profile.avg_duration_s)),
                ],
            ));
        }
        let _ = dataset;
        obj(vec![
            ("type", JsonValue::Str("FeatureCollection".into())),
            ("features", JsonValue::Arr(features)),
        ])
        .render_pretty()
    }
}
