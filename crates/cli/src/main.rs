//! `dlinfma` — command-line interface to the reproduction.
//!
//! ```text
//! dlinfma generate --preset dowbj --scale small --seed 1 --out world.json
//! dlinfma stats    --preset subbj --scale small --seed 1
//! dlinfma eval     --preset dowbj --scale tiny  --seed 1 [--all]
//! dlinfma infer    --preset dowbj --scale tiny  --seed 1 --address 12
//! dlinfma geojson  --preset dowbj --scale tiny  --seed 1 --out map.geojson
//! ```

use dlinfma_core::{DlInfMa, DlInfMaConfig};
use dlinfma_eval::{
    dataset_stats, evaluate, multi_location_building_fraction, render_metrics_table,
    ExperimentWorld, Method,
};
use dlinfma_synth::{generate, AddressId, Preset, Scale};
use std::process::ExitCode;

/// Minimal `--flag value` argument map (no external parser dependency).
struct Args {
    command: String,
    flags: Vec<(String, String)>,
    all: bool,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut argv = std::env::args().skip(1);
        let command = argv.next()?;
        let mut flags = Vec::new();
        let mut all = false;
        while let Some(a) = argv.next() {
            if a == "--all" {
                all = true;
                continue;
            }
            let name = a.strip_prefix("--")?.to_string();
            let value = argv.next()?;
            flags.push((name, value));
        }
        Some(Args { command, flags, all })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn preset(&self) -> Result<Preset, String> {
        match self.get("preset").unwrap_or("dowbj") {
            "dowbj" => Ok(Preset::DowBJ),
            "subbj" => Ok(Preset::SubBJ),
            other => Err(format!("unknown preset '{other}' (dowbj|subbj)")),
        }
    }

    fn scale(&self) -> Result<Scale, String> {
        match self.get("scale").unwrap_or("small") {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (tiny|small|full)")),
        }
    }

    fn seed(&self) -> Result<u64, String> {
        self.get("seed")
            .unwrap_or("1")
            .parse()
            .map_err(|e| format!("bad --seed: {e}"))
    }
}

fn usage() -> &'static str {
    "usage: dlinfma <command> [--preset dowbj|subbj] [--scale tiny|small|full] [--seed N]\n\
     commands:\n\
     \x20 generate  --out FILE     write the synthetic dataset as JSON\n\
     \x20 stats                    print Table I-style dataset statistics\n\
     \x20 eval      [--all]        train + evaluate methods on the test region\n\
     \x20 infer     --address N    train DLInfMA and infer one address\n\
     \x20 geojson   --out FILE     train DLInfMA and export a GeoJSON map"
}

fn run() -> Result<(), String> {
    let Some(args) = Args::parse() else {
        return Err(usage().to_string());
    };
    let preset = args.preset()?;
    let scale = args.scale()?;
    let seed = args.seed()?;

    match args.command.as_str() {
        "generate" => {
            let out = args.get("out").ok_or("generate needs --out FILE")?;
            let (_, dataset) = generate(preset, scale, seed);
            let json = serde_json::to_string(&dataset)
                .map_err(|e| format!("serialize: {e}"))?;
            std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
            println!(
                "wrote {} ({} addresses, {} trips, {} waybills)",
                out,
                dataset.addresses.len(),
                dataset.trips.len(),
                dataset.waybills.len()
            );
        }
        "stats" => {
            let (_, dataset) = generate(preset, scale, seed);
            let s = dataset_stats(&dataset);
            println!("dataset          {}", preset.name());
            println!("addresses        {}", s.n_addresses);
            println!("buildings        {}", s.n_buildings);
            println!("trips            {}", s.n_trips);
            println!("waybills         {}", s.n_waybills);
            println!("gps fixes        {}", s.n_gps_points);
            println!("sampling rate    {:.1} s", s.mean_sampling_s);
            println!(
                "multi-location buildings {:.1}%",
                multi_location_building_fraction(&dataset) * 100.0
            );
        }
        "eval" => {
            let world = ExperimentWorld::build(preset, scale, seed);
            let methods = if args.all {
                Method::all()
            } else {
                vec![
                    Method::Geocoding,
                    Method::Annotation,
                    Method::GeoCloud,
                    Method::MinDist,
                    Method::MaxTcIlc,
                    Method::DlInfMa,
                ]
            };
            let results: Vec<_> = methods.into_iter().map(|m| evaluate(&world, m)).collect();
            println!(
                "{}",
                render_metrics_table(
                    &format!("{} test region (seed {seed})", preset.name()),
                    &results
                )
            );
        }
        "infer" => {
            let address: u32 = args
                .get("address")
                .ok_or("infer needs --address N")?
                .parse()
                .map_err(|e| format!("bad --address: {e}"))?;
            let (city, dataset) = generate(preset, scale, seed);
            let split = dlinfma_synth::spatial_split(&dataset, 0.6, 0.2);
            let mut dlinfma = DlInfMa::prepare(&dataset, DlInfMaConfig::fast());
            dlinfma.label_from_dataset(&dataset);
            dlinfma.train(&split.train, &split.val);
            let addr = AddressId(address);
            if (address as usize) >= dataset.addresses.len() {
                return Err(format!("address {address} out of range"));
            }
            let inferred = dlinfma.infer_or_geocode(&dataset, addr);
            let truth = city.addresses[address as usize].true_delivery_location;
            println!("address      {address}");
            println!("geocode      ({:.1}, {:.1})", dataset.address(addr).geocode.x, dataset.address(addr).geocode.y);
            println!("inferred     ({:.1}, {:.1})", inferred.x, inferred.y);
            println!("ground truth ({:.1}, {:.1})", truth.x, truth.y);
            println!("error        {:.1} m", inferred.distance(&truth));
        }
        "geojson" => {
            let out = args.get("out").ok_or("geojson needs --out FILE")?;
            let (city, dataset) = generate(preset, scale, seed);
            let split = dlinfma_synth::spatial_split(&dataset, 0.6, 0.2);
            let mut dlinfma = DlInfMa::prepare(&dataset, DlInfMaConfig::fast());
            dlinfma.label_from_dataset(&dataset);
            dlinfma.train(&split.train, &split.val);
            let json = geojson::export(&city, &dataset, &dlinfma);
            std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
            println!("wrote {out}");
        }
        other => return Err(format!("unknown command '{other}'\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

mod geojson {
    //! Minimal GeoJSON export: the local metric frame is re-projected onto
    //! WGS-84 around Beijing so the output opens in any GIS viewer.

    use dlinfma_core::DlInfMa;
    use dlinfma_geo::{LatLng, Point, Projection};
    use dlinfma_synth::{City, Dataset};
    use serde_json::{json, Value};

    fn lnglat(proj: &Projection, p: Point) -> Value {
        let ll = proj.unproject(&p);
        json!([ll.lng, ll.lat])
    }

    /// Renders addresses (geocode + ground truth), candidates and inferred
    /// locations as one GeoJSON FeatureCollection string.
    pub fn export(city: &City, dataset: &Dataset, dlinfma: &DlInfMa) -> String {
        let proj = Projection::new(LatLng::new(39.9042, 116.4074));
        let mut features: Vec<Value> = Vec::new();
        for a in &city.addresses {
            features.push(json!({
                "type": "Feature",
                "geometry": {"type": "Point", "coordinates": lnglat(&proj, a.geocode)},
                "properties": {"kind": "geocode", "address": a.id.0}
            }));
            features.push(json!({
                "type": "Feature",
                "geometry": {"type": "Point", "coordinates": lnglat(&proj, a.true_delivery_location)},
                "properties": {"kind": "truth", "address": a.id.0, "spot": format!("{:?}", a.true_spot_kind)}
            }));
            if let Some(p) = dlinfma.infer(a.id) {
                features.push(json!({
                    "type": "Feature",
                    "geometry": {"type": "Point", "coordinates": lnglat(&proj, p)},
                    "properties": {"kind": "inferred", "address": a.id.0}
                }));
            }
        }
        for c in dlinfma.pool().candidates() {
            features.push(json!({
                "type": "Feature",
                "geometry": {"type": "Point", "coordinates": lnglat(&proj, c.pos)},
                "properties": {
                    "kind": "candidate",
                    "id": c.id.0,
                    "stays": c.profile.n_stays,
                    "couriers": c.profile.n_couriers,
                    "avg_dwell_s": c.profile.avg_duration_s
                }
            }));
        }
        let _ = dataset;
        serde_json::to_string_pretty(&json!({
            "type": "FeatureCollection",
            "features": features
        }))
        .expect("GeoJSON serializes")
    }
}
