//! End-to-end tests driving the `dlinfma` binary.

use dlinfma_obs::JsonValue;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dlinfma"))
}

#[test]
fn stats_prints_dataset_summary() {
    let out = bin()
        .args([
            "stats", "--preset", "dowbj", "--scale", "tiny", "--seed", "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SynthDowBJ"));
    assert!(text.contains("addresses"));
    assert!(text.contains("waybills"));
}

#[test]
fn generate_writes_parseable_json() {
    let path = std::env::temp_dir().join("dlinfma_cli_test_world.json");
    let out = bin()
        .args([
            "generate",
            "--preset",
            "subbj",
            "--scale",
            "tiny",
            "--seed",
            "5",
            "--out",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).expect("file written");
    let value = JsonValue::parse(&json).expect("valid JSON");
    assert!(
        value["addresses"]
            .as_array()
            .expect("addresses array")
            .len()
            > 10
    );
    assert!(value["trips"].as_array().expect("trips array").len() > 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn bad_preset_is_rejected() {
    let out = bin()
        .args(["stats", "--preset", "mars"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
}

#[test]
fn malformed_flag_is_named_in_error() {
    let out = bin()
        .args(["stats", "--seed"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("'--seed' is missing a value"), "stderr: {err}");

    let out = bin()
        .args(["eval", "--workers", "zero"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--workers 'zero'"), "stderr: {err}");
}

#[test]
fn eval_verbose_writes_metrics_json() {
    let path = std::env::temp_dir().join("dlinfma_cli_test_metrics.json");
    let out = bin()
        .args([
            "eval",
            "--preset",
            "dowbj",
            "--scale",
            "tiny",
            "--seed",
            "5",
            "--workers",
            "2",
            "--verbose",
            "--metrics-out",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --verbose prints the stage/funnel tables to stderr, not stdout.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("pipeline report"), "stderr: {err}");
    assert!(err.contains("funnel: raw"), "stderr: {err}");
    assert!(err.contains("== spans =="), "stderr: {err}");
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("DLInfMA"), "stdout: {table}");

    // The hand-rolled JSON writer round-trips through the obs parser.
    let json = JsonValue::parse(&std::fs::read_to_string(&path).expect("written")).expect("valid");
    let spans = json["spans"].as_array().expect("spans array");
    let names: Vec<&str> = spans
        .iter()
        .map(|s| s["name"].as_str().expect("span name"))
        .collect();
    for stage in [
        "noise-filter",
        "stay-point-extraction",
        "clustering",
        "retrieval",
        "feature-extraction",
        "training",
        "inference",
    ] {
        assert!(
            names.contains(&stage),
            "missing span '{stage}' in {names:?}"
        );
    }
    assert!(json["metrics"]["counters"].is_object());
    assert!(json["metrics"]["histograms"]["retrieval/candidate-set-size"].is_object());
    let stages = json["report"]["stages"].as_array().expect("report stages");
    assert!(stages.len() >= 5, "stages: {stages:?}");
    for s in stages {
        assert!(s["duration_ns"].as_f64().expect("duration") > 0.0, "{s:?}");
    }
    let funnel = &json["report"]["funnel"];
    assert!(funnel["raw_points"].as_f64().expect("raw") > 0.0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn geojson_export_is_valid() {
    let path = std::env::temp_dir().join("dlinfma_cli_test_map.geojson");
    let out = bin()
        .args([
            "geojson",
            "--preset",
            "dowbj",
            "--scale",
            "tiny",
            "--seed",
            "5",
            "--out",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = JsonValue::parse(&std::fs::read_to_string(&path).expect("written")).expect("valid");
    assert_eq!(json["type"].as_str(), Some("FeatureCollection"));
    let features = json["features"].as_array().expect("features");
    assert!(features.len() > 50);
    // Coordinates are plausible WGS-84 near Beijing.
    let coord = &features[0]["geometry"]["coordinates"];
    let lng = coord[0].as_f64().expect("lng");
    let lat = coord[1].as_f64().expect("lat");
    assert!((115.0..118.0).contains(&lng), "lng {lng}");
    assert!((39.0..41.0).contains(&lat), "lat {lat}");
    std::fs::remove_file(&path).ok();
}
