#![warn(missing_docs)]
//! Synthetic logistics worlds for the DLInfMA reproduction.
//!
//! The paper evaluates on two proprietary JD Logistics datasets (DowBJ and
//! SubBJ). This crate substitutes them with a parametric simulator that
//! reproduces the structure those datasets are reported to have:
//!
//! * a city of blocks, buildings and addresses whose actual delivery spots
//!   are doorsteps, shared express lockers or receptions ([`city`]);
//! * couriers locked to spatial regions running nearest-neighbour delivery
//!   trips with noisy ~13.5 s GPS sampling, delivery dwells and non-delivery
//!   stops ([`sim`]);
//! * a geocoder with the paper's three failure modes (wrong parsing, coarse
//!   POI database, compound-level collapse) ([`city::GeocoderQuality`]);
//! * the batch-confirmation delay model of Section V-D ([`delays`]);
//! * presets mimicking DowBJ/SubBJ statistics at several scales
//!   ([`presets`]) and the paper's disjoint spatial train/val/test split
//!   ([`split`]);
//! * a chronological per-day [`replay`] of a generated dataset, feeding the
//!   streaming ingest path of `dlinfma_core::Engine`.
//!
//! Ground-truth fields exist on the generated types because the world is
//! synthetic; the inference pipeline (in `dlinfma-core`) never reads them.

pub mod city;
pub mod delays;
pub mod json;
pub mod model;
pub mod presets;
pub mod replay;
pub mod sim;
pub mod split;

pub use city::{generate_city, City, CityConfig, GeocodeMode, GeocoderQuality};
pub use delays::{inject_delays, mean_delay_s, DelayConfig};
pub use model::{
    Address, AddressId, BuildingId, CourierId, Dataset, DeliverySpotKind, DeliveryTrip, Station,
    StationId, TripId, Waybill, N_POI_CATEGORIES,
};
pub use presets::{generate, generate_with, world_config, Preset, Scale, WorldConfig};
pub use replay::{partition_by_station, replay, Replay, TripBatch};
pub use sim::{assign_regions, simulate, SimConfig};
pub use split::{spatial_split, Split};
