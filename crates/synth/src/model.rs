//! The logistics data model shared by the whole reproduction.
//!
//! These types mirror the paper's definitions: waybills (Definition 1),
//! delivery locations (Definition 2) and delivery trips (Definition 5).
//! Ground-truth fields (`true_delivery_location`, `t_actual_delivery`) exist
//! because the data is synthesized; inference code must never read them —
//! they are consumed only by evaluation and labelling.

use dlinfma_geo::Point;
use dlinfma_traj::Trajectory;

/// Identifier of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AddressId(pub u32);

/// Identifier of a building.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BuildingId(pub u32);

/// Identifier of a courier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CourierId(pub u32);

/// Identifier of a delivery station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationId(pub u32);

/// Identifier of a delivery trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TripId(pub u32);

/// Number of POI categories returned by the (simulated) geocoder; the paper
/// reports 21.
pub const N_POI_CATEGORIES: usize = 21;

/// The kind of spot a parcel is actually dropped at. Mirrors the paper's
/// Figure 1 taxonomy; used only by the generator and by evaluation
/// narratives (inference never sees it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverySpotKind {
    /// Customer's doorstep.
    Doorstep,
    /// Shared express locker of the neighbourhood.
    Locker,
    /// Reception / convenience store that accepts parcels.
    Reception,
}

/// A shipping address together with its (simulated) geocoding result.
#[derive(Debug, Clone)]
pub struct Address {
    /// Stable identifier.
    pub id: AddressId,
    /// Building the address belongs to (from address segmentation).
    pub building: BuildingId,
    /// Geocoded location of the address text — may be wrong or coarse.
    pub geocode: Point,
    /// POI category index in `0..N_POI_CATEGORIES` from the geocoder.
    pub poi_category: u8,
    /// Ground truth: where parcels for this address are actually dropped.
    pub true_delivery_location: Point,
    /// Ground truth: the kind of drop spot.
    pub true_spot_kind: DeliverySpotKind,
}

/// A waybill (Definition 1): one parcel to one address within one trip.
#[derive(Debug, Clone)]
pub struct Waybill {
    /// Address the parcel ships to.
    pub address: AddressId,
    /// Trip that delivered the parcel.
    pub trip: TripId,
    /// Time the courier received the parcel (trip start).
    pub t_received: f64,
    /// Recorded delivery (confirmation) time — possibly delayed.
    pub t_recorded_delivery: f64,
    /// Ground truth: when the parcel was actually handed over.
    pub t_actual_delivery: f64,
}

/// A delivery trip (Definition 5).
#[derive(Debug, Clone)]
pub struct DeliveryTrip {
    /// Stable identifier (index into `Dataset::trips`).
    pub id: TripId,
    /// Courier who drove the trip.
    pub courier: CourierId,
    /// Station the courier departs from.
    pub station: StationId,
    /// Trip start time.
    pub t_start: f64,
    /// Trip end time.
    pub t_end: f64,
    /// Raw GPS trajectory of the courier during the trip.
    pub trajectory: Trajectory,
    /// Indices into `Dataset::waybills` of the parcels delivered.
    pub waybills: Vec<usize>,
}

/// A delivery station with a fixed depot location.
#[derive(Debug, Clone)]
pub struct Station {
    /// Stable identifier.
    pub id: StationId,
    /// Depot location couriers start and end trips at.
    pub location: Point,
}

/// A complete (synthetic) logistics dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All addresses, indexed by `AddressId`.
    pub addresses: Vec<Address>,
    /// All delivery trips, indexed by `TripId`.
    pub trips: Vec<DeliveryTrip>,
    /// All waybills; `DeliveryTrip::waybills` holds indices into this.
    pub waybills: Vec<Waybill>,
    /// All stations.
    pub stations: Vec<Station>,
}

impl Dataset {
    /// Address lookup by id.
    pub fn address(&self, id: AddressId) -> &Address {
        &self.addresses[id.0 as usize]
    }

    /// Trip lookup by id.
    pub fn trip(&self, id: TripId) -> &DeliveryTrip {
        &self.trips[id.0 as usize]
    }

    /// Indices of waybills shipping to `addr`, in dataset order.
    pub fn waybills_for_address(&self, addr: AddressId) -> Vec<usize> {
        self.waybills
            .iter()
            .enumerate()
            .filter(|(_, w)| w.address == addr)
            .map(|(i, _)| i)
            .collect()
    }

    /// Trip ids that include a waybill for `addr` (deduplicated, ordered).
    pub fn trips_for_address(&self, addr: AddressId) -> Vec<TripId> {
        let mut trips: Vec<TripId> = self
            .waybills
            .iter()
            .filter(|w| w.address == addr)
            .map(|w| w.trip)
            .collect();
        trips.sort_unstable();
        trips.dedup();
        trips
    }

    /// Addresses sharing a building, grouped by building id.
    pub fn addresses_by_building(&self) -> std::collections::HashMap<BuildingId, Vec<AddressId>> {
        let mut map: std::collections::HashMap<BuildingId, Vec<AddressId>> =
            std::collections::HashMap::new();
        for a in &self.addresses {
            map.entry(a.building).or_default().push(a.id);
        }
        map
    }

    /// Total number of GPS fixes across all trips.
    pub fn total_gps_points(&self) -> usize {
        self.trips.iter().map(|t| t.trajectory.len()).sum()
    }

    /// Basic sanity checks; used by tests and the generators.
    ///
    /// # Panics
    /// Panics when referential integrity is broken (bad ids, waybills
    /// outside their trip's time window, recorded time before actual).
    pub fn validate(&self) {
        for (i, a) in self.addresses.iter().enumerate() {
            assert_eq!(a.id.0 as usize, i, "address ids must be dense");
        }
        for (i, t) in self.trips.iter().enumerate() {
            assert_eq!(t.id.0 as usize, i, "trip ids must be dense");
            assert!(t.t_start <= t.t_end, "trip {} time order", i);
            for &wi in &t.waybills {
                let w = &self.waybills[wi];
                assert_eq!(w.trip, t.id, "waybill {} trip backlink", wi);
            }
        }
        for (i, w) in self.waybills.iter().enumerate() {
            assert!(
                (w.address.0 as usize) < self.addresses.len(),
                "waybill {i} address id"
            );
            assert!(
                (w.trip.0 as usize) < self.trips.len(),
                "waybill {i} trip id"
            );
            assert!(
                w.t_recorded_delivery >= w.t_actual_delivery - 1e-6,
                "waybill {i}: recorded time may only be delayed, never early"
            );
            assert!(
                w.t_actual_delivery >= w.t_received - 1e-6,
                "waybill {i}: delivered before received"
            );
        }
    }
}
