//! Synthetic city generation: blocks, buildings, addresses, delivery spots
//! and the simulated geocoder.
//!
//! The generator reproduces the structural facts the paper reports about its
//! JD Logistics datasets: addresses in one building can have *different*
//! delivery locations (Figure 9(a): >22% / >14% of buildings), drop spots are
//! doorsteps, shared lockers or receptions (Figure 1), and geocodes fail in
//! three distinct ways (Figure 12): wrong address parsing, coarse POI
//! databases, and one-geocode-per-compound collapsing.

use crate::model::{Address, AddressId, BuildingId, DeliverySpotKind, N_POI_CATEGORIES};
use dlinfma_geo::Point;
use rand::Rng;

/// How the simulated geocoder resolves a given address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeocodeMode {
    /// Near the true building with small noise.
    Accurate,
    /// Collapsed to the center of the address's block (coarse POI database;
    /// every address of the compound shares it).
    CoarseCompound,
    /// Parsed to a *different*, similarly-named compound a few hundred
    /// meters away.
    WrongParse,
}

/// Probabilities of each geocoder failure mode.
#[derive(Debug, Clone, Copy)]
pub struct GeocoderQuality {
    /// Probability of an accurate geocode.
    pub p_accurate: f64,
    /// Probability of a coarse compound-level geocode.
    pub p_coarse: f64,
    /// Standard deviation (m) of accurate-geocode noise.
    pub accurate_sigma_m: f64,
    /// Distance range (m) of wrong-parse displacement.
    pub wrong_parse_range_m: (f64, f64),
}

impl GeocoderQuality {
    /// Probability of a wrong parse (the remaining mass).
    pub fn p_wrong(&self) -> f64 {
        (1.0 - self.p_accurate - self.p_coarse).max(0.0)
    }
}

/// Parameters of the synthetic city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Number of blocks east-west.
    pub blocks_x: usize,
    /// Number of blocks north-south.
    pub blocks_y: usize,
    /// Block edge length in meters.
    pub block_size_m: f64,
    /// Buildings per block.
    pub buildings_per_block: usize,
    /// Addresses per building (inclusive range).
    pub addresses_per_building: (usize, usize),
    /// Probability a *building's dominant* drop spot is its entrance;
    /// remaining mass splits between the block's locker and the building's
    /// reception.
    pub p_doorstep: f64,
    /// Probability (of non-entrance mass) of choosing the locker over the
    /// reception as the dominant spot.
    pub p_locker_given_not_door: f64,
    /// Probability an address follows its building's dominant spot. The
    /// deviation rate controls Figure 9(a)'s multi-location-building
    /// fraction (paper: >22% in DowBJ, >14% in SubBJ).
    pub p_follow_building: f64,
    /// Geocoder quality model.
    pub geocoder: GeocoderQuality,
}

/// A generated city: blocks with buildings, lockers and addresses.
#[derive(Debug, Clone)]
pub struct City {
    /// Per-block centers (index = by * blocks_x + bx).
    pub block_centers: Vec<Point>,
    /// Building centers, indexed by `BuildingId`.
    pub building_centers: Vec<Point>,
    /// Express locker position of each block.
    pub lockers: Vec<Point>,
    /// All generated addresses.
    pub addresses: Vec<Address>,
    /// Overall city extent (for station placement etc.).
    pub width_m: f64,
    /// North-south extent.
    pub height_m: f64,
}

fn gaussian<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma
}

/// Generates a city from the config with the given RNG (fully deterministic
/// per seed).
pub fn generate_city<R: Rng>(cfg: &CityConfig, rng: &mut R) -> City {
    let bs = cfg.block_size_m;
    let mut block_centers = Vec::with_capacity(cfg.blocks_x * cfg.blocks_y);
    let mut lockers = Vec::with_capacity(cfg.blocks_x * cfg.blocks_y);
    let mut building_centers = Vec::new();
    let mut addresses: Vec<Address> = Vec::new();

    for by in 0..cfg.blocks_y {
        for bx in 0..cfg.blocks_x {
            let center = Point::new((bx as f64 + 0.5) * bs, (by as f64 + 0.5) * bs);
            block_centers.push(center);
            // Locker sits near the block entrance (south-west corner area).
            lockers.push(Point::new(
                center.x - bs * 0.35 + rng.gen_range(0.0..6.0),
                center.y - bs * 0.35 + rng.gen_range(0.0..6.0),
            ));
        }
    }

    // Buildings: jittered grid inside each block, comfortably separated.
    for (block_idx, &bc) in block_centers.iter().enumerate() {
        for b in 0..cfg.buildings_per_block {
            let angle = (b as f64 / cfg.buildings_per_block as f64) * std::f64::consts::TAU;
            let radius = bs * 0.28;
            let center = Point::new(
                bc.x + radius * angle.cos() + gaussian(rng, 4.0),
                bc.y + radius * angle.sin() + gaussian(rng, 4.0),
            );
            let building_id = BuildingId(building_centers.len() as u32);
            building_centers.push(center);
            // Reception: at the building entrance, offset from the center.
            let reception = Point::new(center.x + 12.0, center.y - 8.0);

            // Dominant drop spot shared by most of the building's customers.
            let entrance = Point::new(
                center.x + gaussian(rng, 2.0),
                center.y - 10.0 + gaussian(rng, 2.0),
            );
            let (dominant_kind, dominant_loc) = if rng.gen_bool(cfg.p_doorstep) {
                (DeliverySpotKind::Doorstep, entrance)
            } else if rng.gen_bool(cfg.p_locker_given_not_door) {
                (DeliverySpotKind::Locker, lockers[block_idx])
            } else {
                (DeliverySpotKind::Reception, reception)
            };

            let n_addr = rng.gen_range(cfg.addresses_per_building.0..=cfg.addresses_per_building.1);
            for _ in 0..n_addr {
                let (kind, true_loc) = if rng.gen_bool(cfg.p_follow_building) {
                    (dominant_kind, dominant_loc)
                } else {
                    // Deviating customer: own doorstep, the locker, or the
                    // reception, whichever differs from the dominant spot.
                    match rng.gen_range(0..3) {
                        0 => (
                            DeliverySpotKind::Doorstep,
                            Point::new(
                                center.x + gaussian(rng, 8.0),
                                center.y + gaussian(rng, 8.0),
                            ),
                        ),
                        1 if dominant_kind != DeliverySpotKind::Locker => {
                            (DeliverySpotKind::Locker, lockers[block_idx])
                        }
                        _ if dominant_kind != DeliverySpotKind::Reception => {
                            (DeliverySpotKind::Reception, reception)
                        }
                        _ => (DeliverySpotKind::Locker, lockers[block_idx]),
                    }
                };
                let id = AddressId(addresses.len() as u32);
                // Geocode per the quality model.
                let mode_roll: f64 = rng.gen_range(0.0..1.0);
                let mode = if mode_roll < cfg.geocoder.p_accurate {
                    GeocodeMode::Accurate
                } else if mode_roll < cfg.geocoder.p_accurate + cfg.geocoder.p_coarse {
                    GeocodeMode::CoarseCompound
                } else {
                    GeocodeMode::WrongParse
                };
                let geocode = match mode {
                    GeocodeMode::Accurate => Point::new(
                        center.x + gaussian(rng, cfg.geocoder.accurate_sigma_m),
                        center.y + gaussian(rng, cfg.geocoder.accurate_sigma_m),
                    ),
                    GeocodeMode::CoarseCompound => bc,
                    GeocodeMode::WrongParse => {
                        // A similarly-named compound: a different block within
                        // the configured distance ring.
                        let (lo, hi) = cfg.geocoder.wrong_parse_range_m;
                        let ring: Vec<Point> = block_centers
                            .iter()
                            .filter(|&&c| {
                                let d = c.distance(&bc);
                                d >= lo && d <= hi
                            })
                            .copied()
                            .collect();
                        if ring.is_empty() {
                            // Small cities may lack a block in the ring; fall
                            // back to a fixed-offset phantom compound.
                            Point::new(bc.x + hi, bc.y)
                        } else {
                            ring[rng.gen_range(0..ring.len())]
                        }
                    }
                };
                addresses.push(Address {
                    id,
                    building: building_id,
                    geocode,
                    poi_category: rng.gen_range(0..N_POI_CATEGORIES as u8),
                    true_delivery_location: true_loc,
                    true_spot_kind: kind,
                });
            }
        }
    }

    City {
        block_centers,
        building_centers,
        lockers,
        addresses,
        width_m: cfg.blocks_x as f64 * bs,
        height_m: cfg.blocks_y as f64 * bs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn test_cfg() -> CityConfig {
        CityConfig {
            blocks_x: 4,
            blocks_y: 3,
            block_size_m: 120.0,
            buildings_per_block: 3,
            addresses_per_building: (2, 4),
            p_doorstep: 0.5,
            p_locker_given_not_door: 0.5,
            p_follow_building: 0.85,
            geocoder: GeocoderQuality {
                p_accurate: 0.6,
                p_coarse: 0.3,
                accurate_sigma_m: 15.0,
                wrong_parse_range_m: (150.0, 400.0),
            },
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c1 = generate_city(&test_cfg(), &mut StdRng::seed_from_u64(9));
        let c2 = generate_city(&test_cfg(), &mut StdRng::seed_from_u64(9));
        assert_eq!(c1.addresses.len(), c2.addresses.len());
        for (a, b) in c1.addresses.iter().zip(&c2.addresses) {
            assert_eq!(a.geocode, b.geocode);
            assert_eq!(a.true_delivery_location, b.true_delivery_location);
        }
    }

    #[test]
    fn counts_match_config() {
        let cfg = test_cfg();
        let city = generate_city(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(city.block_centers.len(), 12);
        assert_eq!(city.building_centers.len(), 36);
        assert_eq!(city.lockers.len(), 12);
        assert!(city.addresses.len() >= 72 && city.addresses.len() <= 144);
        // Dense address ids.
        for (i, a) in city.addresses.iter().enumerate() {
            assert_eq!(a.id.0 as usize, i);
        }
    }

    #[test]
    fn some_buildings_have_multiple_delivery_locations() {
        // Figure 9(a): the phenomenon must exist in the synthetic world.
        let city = generate_city(&test_cfg(), &mut StdRng::seed_from_u64(2));
        let mut by_building: std::collections::HashMap<u32, Vec<Point>> = Default::default();
        for a in &city.addresses {
            by_building
                .entry(a.building.0)
                .or_default()
                .push(a.true_delivery_location);
        }
        let multi = by_building
            .values()
            .filter(|locs| locs.iter().any(|l| l.distance(&locs[0]) > 1.0))
            .count();
        assert!(
            multi * 10 >= by_building.len(),
            "only {multi}/{} buildings have >1 delivery location",
            by_building.len()
        );
    }

    #[test]
    fn locker_addresses_share_exact_location() {
        let city = generate_city(&test_cfg(), &mut StdRng::seed_from_u64(3));
        let lockers: Vec<&Address> = city
            .addresses
            .iter()
            .filter(|a| a.true_spot_kind == DeliverySpotKind::Locker)
            .collect();
        assert!(!lockers.is_empty());
        for a in &lockers {
            assert!(
                city.lockers
                    .iter()
                    .any(|l| l.distance(&a.true_delivery_location) < 1e-9),
                "locker address points at a real locker"
            );
        }
    }

    #[test]
    fn geocode_failure_modes_all_present() {
        let mut cfg = test_cfg();
        cfg.blocks_x = 6;
        cfg.blocks_y = 6;
        let city = generate_city(&cfg, &mut StdRng::seed_from_u64(4));
        let mut far = 0; // wrong parse: > 150 m from building
        let mut coarse = 0; // exactly a block center
        for a in &city.addresses {
            let bc = city.building_centers[a.building.0 as usize];
            let d = a.geocode.distance(&bc);
            if d > 150.0 {
                far += 1;
            }
            if city
                .block_centers
                .iter()
                .any(|c| c.distance(&a.geocode) < 1e-9)
            {
                coarse += 1;
            }
        }
        assert!(far > 0, "no wrong-parse geocodes generated");
        assert!(coarse > 0, "no coarse geocodes generated");
    }

    #[test]
    fn spot_kind_mix_follows_probabilities() {
        let mut cfg = test_cfg();
        cfg.blocks_x = 8;
        cfg.blocks_y = 8;
        let city = generate_city(&cfg, &mut StdRng::seed_from_u64(5));
        let n = city.addresses.len() as f64;
        let doors = city
            .addresses
            .iter()
            .filter(|a| a.true_spot_kind == DeliverySpotKind::Doorstep)
            .count() as f64;
        assert!(
            (doors / n - 0.5).abs() < 0.1,
            "doorstep fraction {}",
            doors / n
        );
    }
}
