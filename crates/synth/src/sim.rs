//! Courier and delivery-trip simulation.
//!
//! Produces raw GPS trajectories plus waybills with *actual* delivery times;
//! recorded (possibly delayed) confirmation times are added afterwards by
//! [`crate::delays`], exactly mirroring the paper's observation that delays
//! come from couriers' batch-confirmation habit.
//!
//! The simulator reproduces the statistical structure the paper reports:
//! heavy-tailed per-address order rates (Figure 9(b)), tens of stay points
//! per trip from deliveries plus non-delivery stops (Figure 9(c)), region
//! -locked courier assignment ("delivery tasks in a certain region are
//! usually assigned to the same courier"), and a ~13.5 s GPS sampling rate.

use crate::city::City;
use crate::model::{
    AddressId, CourierId, Dataset, DeliveryTrip, Station, StationId, TripId, Waybill,
};
use dlinfma_geo::Point;
use dlinfma_traj::{TrajPoint, Trajectory};
use rand::Rng;

/// Parameters of the trip simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of delivery stations (the paper's data covers 11).
    pub n_stations: usize,
    /// Couriers per station; each owns a sub-region.
    pub couriers_per_station: usize,
    /// Number of simulated days.
    pub n_days: usize,
    /// Trips per courier per day.
    pub trips_per_day: usize,
    /// Inclusive range of parcels per trip.
    pub parcels_per_trip: (usize, usize),
    /// Courier travel speed range in m/s (walking / tricycle).
    pub speed_mps: (f64, f64),
    /// GPS noise standard deviation in meters.
    pub gps_sigma_m: f64,
    /// Probability that a fix is a multipath spike far off-route.
    pub p_gps_spike: f64,
    /// Mean GPS sampling interval in seconds (paper: 13.5 s).
    pub sample_interval_s: f64,
    /// Dwell duration range at a delivery, in seconds.
    pub dwell_s: (f64, f64),
    /// Per-dwell systematic GPS bias sigma, meters. Urban-canyon multipath
    /// offsets are correlated over minutes, so a whole dwell shares one
    /// offset — this is what makes repeated visits to one door land tens of
    /// meters apart and fragments candidates at small clustering distances
    /// (the left arm of the paper's Figure 10(a) U-shape).
    pub dwell_bias_sigma_m: f64,
    /// Probability of a non-delivery stop (rest, traffic) per leg.
    pub p_extra_stop: f64,
    /// Dwell range of non-delivery stops.
    pub extra_stop_dwell_s: (f64, f64),
    /// Pareto tail exponent of per-address order rates (smaller = heavier
    /// tail = more "active customers").
    pub activity_alpha: f64,
    /// Probability a trip draws its parcels from the whole *station* pool
    /// instead of the courier's own region (couriers covering for each
    /// other) — this is what makes shared locations accumulate visits from
    /// several couriers, giving the "number of couriers" profile signal.
    pub p_cross_region: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            n_stations: 2,
            couriers_per_station: 3,
            n_days: 30,
            trips_per_day: 2,
            parcels_per_trip: (10, 22),
            speed_mps: (1.5, 4.0),
            gps_sigma_m: 4.0,
            p_gps_spike: 0.002,
            sample_interval_s: dlinfma_params::GPS_SAMPLE_INTERVAL_S,
            // lint: allow(L3, dwell-time lower bound in seconds, not the 40 m cluster distance)
            dwell_s: (40.0, 200.0),
            dwell_bias_sigma_m: 8.0,
            p_extra_stop: 0.15,
            extra_stop_dwell_s: (35.0, 120.0),
            activity_alpha: 1.3,
            p_cross_region: 0.12,
        }
    }
}

fn gaussian<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * sigma
}

/// Internal builder walking the simulated courier and emitting noisy fixes.
struct Walker<'r, R: Rng> {
    rng: &'r mut R,
    cfg: &'r SimConfig,
    pos: Point,
    t: f64,
    fixes: Vec<TrajPoint>,
    city_extent: f64,
}

impl<'r, R: Rng> Walker<'r, R> {
    fn emit_fix(&mut self) {
        let spike = self.rng.gen_bool(self.cfg.p_gps_spike);
        let (nx, ny) = if spike {
            // Urban-canyon multipath: hundreds of meters off.
            (
                gaussian(self.rng, self.city_extent * 0.5),
                gaussian(self.rng, self.city_extent * 0.5),
            )
        } else {
            (
                gaussian(self.rng, self.cfg.gps_sigma_m),
                gaussian(self.rng, self.cfg.gps_sigma_m),
            )
        };
        self.fixes
            .push(TrajPoint::xyt(self.pos.x + nx, self.pos.y + ny, self.t));
    }

    fn next_interval(&mut self) -> f64 {
        // Jittered sampling around the configured mean.
        let m = self.cfg.sample_interval_s;
        self.rng.gen_range(m * 0.7..m * 1.3)
    }

    /// Moves in a straight line to `target`, emitting fixes en route.
    fn travel_to(&mut self, target: Point) {
        let speed = self
            .rng
            .gen_range(self.cfg.speed_mps.0..self.cfg.speed_mps.1);
        loop {
            let dist = self.pos.distance(&target);
            let dt = self.next_interval();
            let step = speed * dt;
            if step >= dist {
                let remain = dist / speed;
                self.t += remain;
                self.pos = target;
                self.emit_fix();
                return;
            }
            self.pos = self.pos.lerp(&target, step / dist);
            self.t += dt;
            self.emit_fix();
        }
    }

    /// Dwells near the current position for `duration` seconds, under a
    /// per-dwell systematic GPS bias (correlated multipath).
    fn dwell(&mut self, duration: f64) {
        let bias = Point::new(
            gaussian(self.rng, self.cfg.dwell_bias_sigma_m),
            gaussian(self.rng, self.cfg.dwell_bias_sigma_m),
        );
        let true_pos = self.pos;
        self.pos = true_pos + bias;
        let end = self.t + duration;
        while self.t < end {
            let dt = self.next_interval().min(end - self.t).max(1.0);
            self.t += dt;
            self.emit_fix();
        }
        self.pos = true_pos;
    }
}

/// Nearest-neighbour route over stops, starting from `start`.
fn route_order(start: Point, stops: &[Point]) -> Vec<usize> {
    let mut order = Vec::with_capacity(stops.len());
    let mut visited = vec![false; stops.len()];
    let mut pos = start;
    for _ in 0..stops.len() {
        let next = (0..stops.len())
            .filter(|&i| !visited[i])
            .min_by(|&a, &b| pos.distance(&stops[a]).total_cmp(&pos.distance(&stops[b])))
            .expect("unvisited stop exists");
        visited[next] = true;
        order.push(next);
        pos = stops[next];
    }
    order
}

/// Assigns each address to a `(station, courier)` pair by spatial bands:
/// stations split the city east-west, couriers split a station's band
/// north-south.
pub fn assign_regions(city: &City, cfg: &SimConfig) -> Vec<(StationId, CourierId)> {
    let n_s = cfg.n_stations.max(1);
    let n_c = cfg.couriers_per_station.max(1);
    city.addresses
        .iter()
        .map(|a| {
            let sx = ((a.true_delivery_location.x / city.width_m * n_s as f64).floor() as usize)
                .min(n_s - 1);
            let sy = ((a.true_delivery_location.y / city.height_m * n_c as f64).floor() as usize)
                .min(n_c - 1);
            (StationId(sx as u32), CourierId((sx * n_c + sy) as u32))
        })
        .collect()
}

/// Simulates all trips, returning a [`Dataset`] whose waybills have
/// `t_recorded_delivery == t_actual_delivery` (no delays yet; see
/// [`crate::delays::inject_delays`]).
#[allow(clippy::needless_range_loop)] // courier indexes pools and ids alike
pub fn simulate<R: Rng>(city: &City, cfg: &SimConfig, rng: &mut R) -> Dataset {
    let _span = dlinfma_obs::span(dlinfma_obs::names::SYNTH_SIMULATE);
    let assignment = assign_regions(city, cfg);
    let n_couriers = cfg.n_stations * cfg.couriers_per_station;

    // Station depots at the south edge of each station band.
    let stations: Vec<Station> = (0..cfg.n_stations)
        .map(|s| Station {
            id: StationId(s as u32),
            location: Point::new(
                (s as f64 + 0.5) * city.width_m / cfg.n_stations as f64,
                -60.0,
            ),
        })
        .collect();

    // Heavy-tailed activity per address: Pareto(alpha) weights.
    let activity: Vec<f64> = city
        .addresses
        .iter()
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            u.powf(-1.0 / cfg.activity_alpha)
        })
        .collect();

    // Pool per courier.
    let mut pools: Vec<Vec<AddressId>> = vec![Vec::new(); n_couriers];
    for (a, &(_, courier)) in city.addresses.iter().zip(&assignment) {
        pools[courier.0 as usize].push(a.id);
    }

    let mut trips: Vec<DeliveryTrip> = Vec::new();
    let mut waybills: Vec<Waybill> = Vec::new();

    for day in 0..cfg.n_days {
        for courier in 0..n_couriers {
            let pool = &pools[courier];
            if pool.is_empty() {
                continue;
            }
            let station = StationId((courier / cfg.couriers_per_station) as u32);
            // The station's whole pool, for covering trips.
            let station_pool: Vec<AddressId> = {
                let base = (courier / cfg.couriers_per_station) * cfg.couriers_per_station;
                (base..base + cfg.couriers_per_station)
                    .flat_map(|c| pools[c].iter().copied())
                    .collect()
            };
            for trip_k in 0..cfg.trips_per_day {
                // 08:30 and 14:00 departures.
                let depart = day as f64 * 86_400.0
                    + if trip_k == 0 {
                        8.5 * 3_600.0
                    } else {
                        14.0 * 3_600.0
                    }
                    + rng.gen_range(0.0..900.0);

                let covering = rng.gen_bool(cfg.p_cross_region);
                let draw_pool: &[AddressId] = if covering { &station_pool } else { pool };
                let n_parcels = rng
                    .gen_range(cfg.parcels_per_trip.0..=cfg.parcels_per_trip.1)
                    .min(draw_pool.len());
                // Weighted sampling without replacement.
                let mut chosen: Vec<AddressId> = Vec::with_capacity(n_parcels);
                let mut weights: Vec<f64> =
                    draw_pool.iter().map(|a| activity[a.0 as usize]).collect();
                let mut total: f64 = weights.iter().sum();
                for _ in 0..n_parcels {
                    if total <= 0.0 {
                        break;
                    }
                    let mut target = rng.gen_range(0.0..total);
                    let mut pick = 0;
                    for (i, &w) in weights.iter().enumerate() {
                        if w <= 0.0 {
                            continue;
                        }
                        if target < w {
                            pick = i;
                            break;
                        }
                        target -= w;
                    }
                    chosen.push(draw_pool[pick]);
                    total -= weights[pick];
                    weights[pick] = 0.0;
                }
                if chosen.is_empty() {
                    continue;
                }

                let stops: Vec<Point> = chosen
                    .iter()
                    .map(|&a| city.addresses[a.0 as usize].true_delivery_location)
                    .collect();
                // Dwell scale by drop-spot kind: lockers take longer (several
                // compartments), receptions are a quick handover.
                let dwell_scale: Vec<f64> = chosen
                    .iter()
                    .map(|&a| match city.addresses[a.0 as usize].true_spot_kind {
                        crate::model::DeliverySpotKind::Locker => 1.5,
                        crate::model::DeliverySpotKind::Reception => 0.6,
                        crate::model::DeliverySpotKind::Doorstep => 1.0,
                    })
                    .collect();
                let order = route_order(stations[station.0 as usize].location, &stops);

                let mut walker = Walker {
                    rng,
                    cfg,
                    pos: stations[station.0 as usize].location,
                    t: depart,
                    fixes: Vec::new(),
                    city_extent: city.width_m.max(city.height_m),
                };
                walker.emit_fix();

                let trip_id = TripId(trips.len() as u32);
                let mut trip_waybills = Vec::with_capacity(chosen.len());
                for &stop_idx in &order {
                    // Possible non-delivery stop on the way.
                    if walker.rng.gen_bool(cfg.p_extra_stop) {
                        let here = walker.pos;
                        let target = stops[stop_idx];
                        let midway = here.lerp(&target, walker.rng.gen_range(0.2..0.8));
                        walker.travel_to(midway);
                        let dwell = walker
                            .rng
                            .gen_range(cfg.extra_stop_dwell_s.0..cfg.extra_stop_dwell_s.1);
                        walker.dwell(dwell);
                    }
                    walker.travel_to(stops[stop_idx]);
                    let dwell =
                        walker.rng.gen_range(cfg.dwell_s.0..cfg.dwell_s.1) * dwell_scale[stop_idx];
                    let t_arrive = walker.t;
                    walker.dwell(dwell);
                    let t_actual = t_arrive + dwell / 2.0;
                    let wb_index = waybills.len();
                    waybills.push(Waybill {
                        address: chosen[stop_idx],
                        trip: trip_id,
                        t_received: depart,
                        t_recorded_delivery: t_actual,
                        t_actual_delivery: t_actual,
                    });
                    trip_waybills.push(wb_index);
                }
                // Return to the depot.
                let depot = stations[station.0 as usize].location;
                walker.travel_to(depot);

                let trajectory = Trajectory::from_points(walker.fixes);
                let t_end = trajectory.end_time().unwrap_or(depart);
                trips.push(DeliveryTrip {
                    id: trip_id,
                    courier: CourierId(courier as u32),
                    station,
                    t_start: depart,
                    t_end,
                    trajectory,
                    waybills: trip_waybills,
                });
            }
        }
    }

    let dataset = Dataset {
        addresses: city.addresses.clone(),
        trips,
        waybills,
        stations,
    };
    dataset.validate();
    if dlinfma_obs::enabled() {
        dlinfma_obs::counter(dlinfma_obs::names::SYNTH_TRIPS).add(dataset.trips.len() as u64);
        dlinfma_obs::counter(dlinfma_obs::names::SYNTH_WAYBILLS).add(dataset.waybills.len() as u64);
        let fixes: usize = dataset.trips.iter().map(|t| t.trajectory.len()).sum();
        dlinfma_obs::counter(dlinfma_obs::names::SYNTH_GPS_FIXES).add(fixes as u64);
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{generate_city, CityConfig, GeocoderQuality};
    use dlinfma_traj::{detect_stay_points, StayPointConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn small_world(seed: u64) -> (City, Dataset) {
        let city_cfg = CityConfig {
            blocks_x: 3,
            blocks_y: 3,
            block_size_m: 120.0,
            buildings_per_block: 3,
            addresses_per_building: (2, 3),
            p_doorstep: 0.6,
            p_locker_given_not_door: 0.5,
            p_follow_building: 0.9,
            geocoder: GeocoderQuality {
                p_accurate: 0.7,
                p_coarse: 0.2,
                accurate_sigma_m: 15.0,
                wrong_parse_range_m: (150.0, 400.0),
            },
        };
        let sim_cfg = SimConfig {
            n_stations: 1,
            couriers_per_station: 2,
            n_days: 5,
            ..SimConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let city = generate_city(&city_cfg, &mut rng);
        let ds = simulate(&city, &sim_cfg, &mut rng);
        (city, ds)
    }

    #[test]
    fn produces_valid_dataset() {
        let (_, ds) = small_world(0);
        assert!(!ds.trips.is_empty());
        assert!(!ds.waybills.is_empty());
        ds.validate(); // also run by simulate; explicit here
    }

    #[test]
    fn trajectories_sampled_near_configured_rate() {
        let (_, ds) = small_world(1);
        let trip = &ds.trips[0];
        let interval = trip.trajectory.mean_sampling_interval().unwrap();
        assert!((10.0..18.0).contains(&interval), "mean interval {interval}");
    }

    #[test]
    fn deliveries_create_stay_points_near_true_locations() {
        let (city, ds) = small_world(2);
        let cfg = StayPointConfig::default();
        let trip = &ds.trips[0];
        let stays = detect_stay_points(&trip.trajectory, &cfg);
        assert!(
            stays.len() >= trip.waybills.len() / 2,
            "{} stays for {} deliveries",
            stays.len(),
            trip.waybills.len()
        );
        // Every waybill's true location has a stay within 25 m whose span
        // covers the actual delivery time.
        let mut covered = 0;
        for &wi in &trip.waybills {
            let w = &ds.waybills[wi];
            let loc = city.addresses[w.address.0 as usize].true_delivery_location;
            if stays.iter().any(|sp| {
                sp.pos.distance(&loc) < 25.0
                    && sp.t_start <= w.t_actual_delivery
                    && w.t_actual_delivery <= sp.t_end
            }) {
                covered += 1;
            }
        }
        assert!(
            covered * 10 >= trip.waybills.len() * 8,
            "{covered}/{} deliveries matched by a stay",
            trip.waybills.len()
        );
    }

    #[test]
    fn actual_times_within_trip_window() {
        let (_, ds) = small_world(3);
        for t in &ds.trips {
            for &wi in &t.waybills {
                let w = &ds.waybills[wi];
                assert!(w.t_actual_delivery >= t.t_start);
                assert!(w.t_actual_delivery <= t.t_end);
            }
        }
    }

    #[test]
    fn courier_regions_are_spatially_coherent() {
        let (city, ds) = small_world(4);
        // Addresses of the same courier should be closer on average than
        // addresses of different couriers (region assignment).
        let cfg = SimConfig {
            n_stations: 1,
            couriers_per_station: 2,
            ..SimConfig::default()
        };
        let assign = assign_regions(&city, &cfg);
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..city.addresses.len() {
            for j in (i + 1)..city.addresses.len() {
                let d = city.addresses[i]
                    .true_delivery_location
                    .distance(&city.addresses[j].true_delivery_location);
                if assign[i].1 == assign[j].1 {
                    same.push(d);
                } else {
                    diff.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&same) < mean(&diff));
        let _ = ds;
    }

    #[test]
    fn heavy_tail_activity_produces_repeat_customers() {
        let (_, ds) = small_world(5);
        let mut counts: std::collections::HashMap<u32, usize> = Default::default();
        for w in &ds.waybills {
            *counts.entry(w.address.0).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let med = {
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(max >= med * 2, "no heavy tail: max {max}, median {med}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = small_world(7);
        let (_, b) = small_world(7);
        assert_eq!(a.waybills.len(), b.waybills.len());
        assert_eq!(a.trips.len(), b.trips.len());
        assert_eq!(
            a.trips[0].trajectory.points()[0],
            b.trips[0].trajectory.points()[0]
        );
    }
}
