//! Dataset presets mirroring the paper's two real-world datasets.
//!
//! * `DowBJ` (downtown, inside the 3rd Ring): denser city, better geocoding
//!   precision, more deliveries per address, fewer stay points per trip
//!   (paper: avg 24 stays/trip, 32 candidates/address);
//! * `SubBJ` (suburban, outside the 3rd Ring): coarser geocoding, fewer
//!   deliveries per address, more stay points per trip (avg 27 stays/trip,
//!   38 candidates/address).
//!
//! A [`Scale`] knob sizes the world so unit tests run in milliseconds while
//! benches exercise realistic volumes.

use crate::city::{generate_city, City, CityConfig, GeocoderQuality};
use crate::delays::{inject_delays, DelayConfig};
use crate::model::Dataset;
use crate::sim::{simulate, SimConfig};
use rand::{rngs::StdRng, SeedableRng};

/// Which real dataset's statistics to mimic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Downtown Beijing (inside the 3rd Ring).
    DowBJ,
    /// Suburban Beijing (outside the 3rd Ring).
    SubBJ,
}

impl Preset {
    /// Human-readable dataset name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::DowBJ => "SynthDowBJ",
            Preset::SubBJ => "SynthSubBJ",
        }
    }
}

/// World size; larger scales multiply blocks and simulated days.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes of simulated operation; unit-test sized.
    Tiny,
    /// A few weeks over a small district; example-sized.
    Small,
    /// Months over a larger district; bench/experiment-sized.
    Full,
}

/// Combined world + simulation + delay configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// City layout parameters.
    pub city: CityConfig,
    /// Trip simulation parameters.
    pub sim: SimConfig,
    /// Confirmation-delay behaviour.
    pub delays: DelayConfig,
}

/// Returns the configuration for a preset at a scale.
pub fn world_config(preset: Preset, scale: Scale) -> WorldConfig {
    let (blocks, days, stations) = match scale {
        Scale::Tiny => (3, 4, 1),
        Scale::Small => (5, 14, 2),
        Scale::Full => (8, 40, 3),
    };
    match preset {
        Preset::DowBJ => WorldConfig {
            city: CityConfig {
                blocks_x: blocks,
                blocks_y: blocks,
                block_size_m: 110.0,
                buildings_per_block: 4,
                addresses_per_building: (2, 4),
                p_doorstep: 0.55,
                p_locker_given_not_door: 0.5,
                p_follow_building: 0.92,
                geocoder: GeocoderQuality {
                    p_accurate: 0.55,
                    p_coarse: 0.3,
                    accurate_sigma_m: 25.0,
                    wrong_parse_range_m: (150.0, 400.0),
                },
            },
            sim: SimConfig {
                n_stations: stations,
                couriers_per_station: 2,
                n_days: days,
                trips_per_day: 2,
                parcels_per_trip: (20, 30),
                p_extra_stop: 0.2,
                activity_alpha: 1.1, // heavier tail: downtown orders more
                ..SimConfig::default()
            },
            delays: DelayConfig::observed(),
        },
        Preset::SubBJ => WorldConfig {
            city: CityConfig {
                blocks_x: blocks + 2,
                blocks_y: blocks,
                block_size_m: 150.0,
                buildings_per_block: 3,
                addresses_per_building: (3, 6),
                p_doorstep: 0.5,
                p_locker_given_not_door: 0.6,
                p_follow_building: 0.97,
                geocoder: GeocoderQuality {
                    p_accurate: 0.4,
                    p_coarse: 0.35,
                    accurate_sigma_m: 35.0,
                    wrong_parse_range_m: (200.0, 600.0),
                },
            },
            sim: SimConfig {
                n_stations: stations,
                couriers_per_station: 2,
                n_days: days,
                trips_per_day: 2,
                parcels_per_trip: (24, 36),
                p_extra_stop: 0.35,
                activity_alpha: 1.5, // lighter tail: fewer repeat orders
                ..SimConfig::default()
            },
            delays: DelayConfig::observed(),
        },
    }
}

/// Generates a complete world: city + simulated trips + injected delays.
///
/// Deterministic per `(preset, scale, seed)`.
pub fn generate(preset: Preset, scale: Scale, seed: u64) -> (City, Dataset) {
    let cfg = world_config(preset, scale);
    generate_with(&cfg, seed)
}

/// Generates a world from an explicit configuration (used by experiments
/// that sweep a single parameter, e.g. Table III's `p_delay`).
pub fn generate_with(cfg: &WorldConfig, seed: u64) -> (City, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let city = generate_city(&cfg.city, &mut rng);
    let mut dataset = simulate(&city, &cfg.sim, &mut rng);
    inject_delays(&mut dataset, &cfg.delays, &mut rng);
    dataset.validate();
    (city, dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_traj::{detect_stay_points, StayPointConfig};

    #[test]
    fn tiny_worlds_generate_quickly_and_validate() {
        for preset in [Preset::DowBJ, Preset::SubBJ] {
            let (_, ds) = generate(preset, Scale::Tiny, 0);
            assert!(!ds.waybills.is_empty(), "{}", preset.name());
            ds.validate();
        }
    }

    #[test]
    fn subbj_has_more_stays_per_trip_than_dowbj() {
        let (_, dow) = generate(Preset::DowBJ, Scale::Small, 1);
        let (_, sub) = generate(Preset::SubBJ, Scale::Small, 1);
        let cfg = StayPointConfig::default();
        let mean_stays = |ds: &Dataset| {
            let total: usize = ds
                .trips
                .iter()
                .map(|t| detect_stay_points(&t.trajectory, &cfg).len())
                .sum();
            total as f64 / ds.trips.len() as f64
        };
        let d = mean_stays(&dow);
        let s = mean_stays(&sub);
        assert!(
            s > d,
            "SubBJ should have more stays per trip: {s:.1} vs {d:.1}"
        );
    }

    #[test]
    fn dowbj_has_more_deliveries_per_address() {
        let (_, dow) = generate(Preset::DowBJ, Scale::Small, 2);
        let (_, sub) = generate(Preset::SubBJ, Scale::Small, 2);
        let mean_deliveries = |ds: &Dataset| ds.waybills.len() as f64 / ds.addresses.len() as f64;
        assert!(mean_deliveries(&dow) > mean_deliveries(&sub));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Preset::DowBJ.name(), "SynthDowBJ");
        assert_eq!(Preset::SubBJ.name(), "SynthSubBJ");
    }
}
