//! Chronological replay of a dataset as a stream of per-day trip batches.
//!
//! The deployed system (Section VI) consumes couriers' trajectories as they
//! arrive rather than as one frozen dataset. [`replay`] reconstructs that
//! feed from a generated [`Dataset`]: it groups trips by simulated day and
//! yields one [`TripBatch`] per day, in chronological order, each carrying
//! the trips that started that day together with the waybills they
//! delivered. Downstream, `dlinfma_core::Engine::ingest` consumes batches
//! one at a time and `dlinfma_ststore::TrajectoryStore::ingest_batch` makes
//! the same fixes queryable.
//!
//! Trips within a batch are ordered by id. Because the simulator assigns
//! trip ids day-major, concatenating the replayed batches reproduces the
//! dataset's trip order exactly — the property the engine's batch/streaming
//! parity guarantee rests on.

use crate::model::{Dataset, DeliveryTrip, Waybill};

/// Seconds per simulated day.
const DAY_S: f64 = 86_400.0;

/// One ingestible batch of trips and the waybills they delivered.
///
/// This is the unit of streaming ingest: a day of a replayed dataset, or the
/// whole dataset at once ([`TripBatch::full`]) for the batch pipeline.
#[derive(Debug, Clone)]
pub struct TripBatch {
    /// Simulated day index (0-based) the batch covers; `0` for a full-batch.
    pub day: u32,
    /// Trips of the batch, ordered by id.
    pub trips: Vec<DeliveryTrip>,
    /// Waybills delivered by the batch's trips.
    pub waybills: Vec<Waybill>,
}

impl TripBatch {
    /// The whole dataset as one batch ("one big ingest").
    pub fn full(dataset: &Dataset) -> Self {
        Self {
            day: 0,
            trips: dataset.trips.clone(),
            waybills: dataset.waybills.clone(),
        }
    }

    /// Number of GPS fixes across the batch's trips.
    pub fn n_gps_points(&self) -> usize {
        self.trips.iter().map(|t| t.trajectory.len()).sum()
    }
}

/// Iterator over per-day [`TripBatch`]es; see [`replay`].
#[derive(Debug)]
pub struct Replay<'a> {
    dataset: &'a Dataset,
    /// `(day, trip indices)` in chronological order; drained front to back.
    days: std::vec::IntoIter<(u32, Vec<usize>)>,
}

impl Iterator for Replay<'_> {
    type Item = TripBatch;

    fn next(&mut self) -> Option<TripBatch> {
        let (day, trip_idxs) = self.days.next()?;
        let trips: Vec<DeliveryTrip> = trip_idxs
            .iter()
            .map(|&i| self.dataset.trips[i].clone())
            .collect();
        let waybills: Vec<Waybill> = trips
            .iter()
            .flat_map(|t| {
                t.waybills
                    .iter()
                    .map(|&wi| self.dataset.waybills[wi].clone())
            })
            .collect();
        Some(TripBatch {
            day,
            trips,
            waybills,
        })
    }
}

/// Replays a dataset as chronological per-day [`TripBatch`]es.
///
/// Days with no trips are skipped. A trip belongs to the day containing its
/// start time (`floor(t_start / 86 400 s)`); trips whose start time is not
/// finite are folded into day 0 so no data is silently dropped.
pub fn replay(dataset: &Dataset) -> Replay<'_> {
    let mut by_day: std::collections::BTreeMap<u32, Vec<usize>> = std::collections::BTreeMap::new();
    for (i, t) in dataset.trips.iter().enumerate() {
        let day = if t.t_start.is_finite() {
            (t.t_start / DAY_S).floor().max(0.0) as u32
        } else {
            0
        };
        by_day.entry(day).or_default().push(i);
    }
    // Trips within a day keep dataset (id) order: the BTreeMap preserves the
    // insertion order of each day's Vec and trips are scanned in id order.
    let days: Vec<(u32, Vec<usize>)> = by_day.into_iter().collect();
    Replay {
        dataset,
        days: days.into_iter(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{generate, Preset, Scale};

    #[test]
    fn replay_partitions_the_dataset_in_trip_order() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 5);
        let batches: Vec<TripBatch> = replay(&ds).collect();
        assert!(batches.len() >= 2, "Tiny simulates several days");
        // Concatenated trips reproduce the dataset's trip order exactly.
        let ids: Vec<u32> = batches
            .iter()
            .flat_map(|b| b.trips.iter().map(|t| t.id.0))
            .collect();
        assert_eq!(ids, (0..ds.trips.len() as u32).collect::<Vec<_>>());
        // Every waybill appears exactly once.
        let n_waybills: usize = batches.iter().map(|b| b.waybills.len()).sum();
        assert_eq!(n_waybills, ds.waybills.len());
        // Days are strictly increasing and trips start within their day.
        for w in batches.windows(2) {
            assert!(w[0].day < w[1].day);
        }
        for b in &batches {
            for t in &b.trips {
                assert_eq!((t.t_start / DAY_S).floor() as u32, b.day);
            }
            for w in &b.waybills {
                assert!(b.trips.iter().any(|t| t.id == w.trip));
            }
        }
    }

    #[test]
    fn full_batch_covers_everything() {
        let (_, ds) = generate(Preset::SubBJ, Scale::Tiny, 6);
        let b = TripBatch::full(&ds);
        assert_eq!(b.trips.len(), ds.trips.len());
        assert_eq!(b.waybills.len(), ds.waybills.len());
        assert_eq!(b.n_gps_points(), ds.total_gps_points());
    }

    #[test]
    fn empty_dataset_replays_to_nothing() {
        let ds = Dataset {
            addresses: vec![],
            trips: vec![],
            waybills: vec![],
            stations: vec![],
        };
        assert_eq!(replay(&ds).count(), 0);
    }
}
