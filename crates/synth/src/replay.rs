//! Chronological replay of a dataset as a stream of per-day trip batches.
//!
//! The deployed system (Section VI) consumes couriers' trajectories as they
//! arrive rather than as one frozen dataset. [`replay`] reconstructs that
//! feed from a generated [`Dataset`]: it groups trips by simulated day and
//! yields one [`TripBatch`] per day, in chronological order, each carrying
//! the trips that started that day together with the waybills they
//! delivered. Downstream, `dlinfma_core::Engine::ingest` consumes batches
//! one at a time and `dlinfma_ststore::TrajectoryStore::ingest_batch` makes
//! the same fixes queryable.
//!
//! Trips within a batch are ordered by id. Because the simulator assigns
//! trip ids day-major, concatenating the replayed batches reproduces the
//! dataset's trip order exactly — the property the engine's batch/streaming
//! parity guarantee rests on.
//!
//! Every batch also carries the [`Station`]s its trips depart from, so a
//! fleet-mode consumer can partition the stream by station without a
//! side-channel back to the dataset ([`partition_by_station`]).

use crate::model::{Dataset, DeliveryTrip, Station, Waybill};

/// Seconds per simulated day.
const DAY_S: f64 = 86_400.0;

/// One ingestible batch of trips and the waybills they delivered.
///
/// This is the unit of streaming ingest: a day of a replayed dataset, or the
/// whole dataset at once ([`TripBatch::full`]) for the batch pipeline.
#[derive(Debug, Clone)]
pub struct TripBatch {
    /// Simulated day index (0-based) the batch covers; `0` for a full-batch.
    pub day: u32,
    /// Trips of the batch, ordered by id.
    pub trips: Vec<DeliveryTrip>,
    /// Waybills delivered by the batch's trips.
    pub waybills: Vec<Waybill>,
    /// Stations the batch's trips depart from, ascending by id. Populated
    /// from the generated city so shard partitioning has real keys.
    pub stations: Vec<Station>,
}

impl TripBatch {
    /// The whole dataset as one batch ("one big ingest").
    pub fn full(dataset: &Dataset) -> Self {
        Self {
            day: 0,
            trips: dataset.trips.clone(),
            waybills: dataset.waybills.clone(),
            stations: stations_of(&dataset.trips, &dataset.stations),
        }
    }

    /// Number of GPS fixes across the batch's trips.
    pub fn n_gps_points(&self) -> usize {
        self.trips.iter().map(|t| t.trajectory.len()).sum()
    }
}

/// The stations (ascending by id) referenced by `trips`, cloned out of the
/// dataset's station table. Trips whose station id is unknown to the table
/// contribute nothing — the consumer sees exactly the metadata that exists.
fn stations_of(trips: &[DeliveryTrip], table: &[Station]) -> Vec<Station> {
    let mut ids: Vec<u32> = trips.iter().map(|t| t.station.0).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.into_iter()
        .filter_map(|id| table.iter().find(|s| s.id.0 == id).cloned())
        .collect()
}

/// Splits one batch into `n_shards` station-keyed sub-batches: shard `s`
/// receives every trip whose `station.0 % n_shards == s`, the waybills those
/// trips delivered, and the matching station metadata. Trip and waybill
/// order within each shard is the batch's order (a subsequence of it), which
/// is what keeps per-shard engines bit-identical to a one-shard run.
///
/// The returned vector always has exactly `n_shards` entries; shards with no
/// trips that day get an empty batch (same `day`, no trips or waybills).
/// Waybills whose trip is not in the batch default to shard 0 (they carry no
/// station key of their own); stateful consumers reroute them from their own
/// trip tables.
///
/// # Panics
/// Panics if `n_shards` is zero.
pub fn partition_by_station(batch: &TripBatch, n_shards: usize) -> Vec<TripBatch> {
    assert!(n_shards > 0, "n_shards must be at least 1");
    let mut shards: Vec<TripBatch> = (0..n_shards)
        .map(|_| TripBatch {
            day: batch.day,
            trips: Vec::new(),
            waybills: Vec::new(),
            stations: Vec::new(),
        })
        .collect();
    let mut shard_of_trip: std::collections::BTreeMap<u32, usize> =
        std::collections::BTreeMap::new();
    for trip in &batch.trips {
        let s = trip.station.0 as usize % n_shards;
        shard_of_trip.insert(trip.id.0, s);
        shards[s].trips.push(trip.clone());
    }
    for w in &batch.waybills {
        // A waybill follows its trip. A waybill referencing a trip outside
        // the batch carries no station of its own, so it lands on shard 0;
        // a stateful consumer (`dlinfma_core::ShardedEngine`) reroutes such
        // stragglers from its persistent trip table before ingesting.
        let s = shard_of_trip.get(&w.trip.0).copied().unwrap_or(0);
        shards[s].waybills.push(w.clone());
    }
    for (s, shard) in shards.iter_mut().enumerate() {
        shard.stations = batch
            .stations
            .iter()
            .filter(|st| st.id.0 as usize % n_shards == s)
            .cloned()
            .collect();
    }
    shards
}

/// Iterator over per-day [`TripBatch`]es; see [`replay`].
#[derive(Debug)]
pub struct Replay<'a> {
    dataset: &'a Dataset,
    /// `(day, trip indices)` in chronological order; drained front to back.
    days: std::vec::IntoIter<(u32, Vec<usize>)>,
}

impl Iterator for Replay<'_> {
    type Item = TripBatch;

    fn next(&mut self) -> Option<TripBatch> {
        let (day, trip_idxs) = self.days.next()?;
        let trips: Vec<DeliveryTrip> = trip_idxs
            .iter()
            .map(|&i| self.dataset.trips[i].clone())
            .collect();
        let waybills: Vec<Waybill> = trips
            .iter()
            .flat_map(|t| {
                t.waybills
                    .iter()
                    .map(|&wi| self.dataset.waybills[wi].clone())
            })
            .collect();
        let stations = stations_of(&trips, &self.dataset.stations);
        Some(TripBatch {
            day,
            trips,
            waybills,
            stations,
        })
    }
}

/// Replays a dataset as chronological per-day [`TripBatch`]es.
///
/// Days with no trips are skipped. A trip belongs to the day containing its
/// start time (`floor(t_start / 86 400 s)`); trips whose start time is not
/// finite are folded into day 0 so no data is silently dropped.
pub fn replay(dataset: &Dataset) -> Replay<'_> {
    let mut by_day: std::collections::BTreeMap<u32, Vec<usize>> = std::collections::BTreeMap::new();
    for (i, t) in dataset.trips.iter().enumerate() {
        let day = if t.t_start.is_finite() {
            (t.t_start / DAY_S).floor().max(0.0) as u32
        } else {
            0
        };
        by_day.entry(day).or_default().push(i);
    }
    // Trips within a day keep dataset (id) order: the BTreeMap preserves the
    // insertion order of each day's Vec and trips are scanned in id order.
    let days: Vec<(u32, Vec<usize>)> = by_day.into_iter().collect();
    Replay {
        dataset,
        days: days.into_iter(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{generate, world_config, Preset, Scale};

    #[test]
    fn replay_partitions_the_dataset_in_trip_order() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 5);
        let batches: Vec<TripBatch> = replay(&ds).collect();
        assert!(batches.len() >= 2, "Tiny simulates several days");
        // Concatenated trips reproduce the dataset's trip order exactly.
        let ids: Vec<u32> = batches
            .iter()
            .flat_map(|b| b.trips.iter().map(|t| t.id.0))
            .collect();
        assert_eq!(ids, (0..ds.trips.len() as u32).collect::<Vec<_>>());
        // Every waybill appears exactly once.
        let n_waybills: usize = batches.iter().map(|b| b.waybills.len()).sum();
        assert_eq!(n_waybills, ds.waybills.len());
        // Days are strictly increasing and trips start within their day.
        for w in batches.windows(2) {
            assert!(w[0].day < w[1].day);
        }
        for b in &batches {
            for t in &b.trips {
                assert_eq!((t.t_start / DAY_S).floor() as u32, b.day);
            }
            for w in &b.waybills {
                assert!(b.trips.iter().any(|t| t.id == w.trip));
            }
        }
    }

    #[test]
    fn every_replayed_trip_carries_its_station() {
        // Regression: batches used to come out with no station metadata,
        // leaving shard partitioning without keys. A multi-station world
        // must replay with every trip's station present in its batch.
        let mut cfg = world_config(Preset::DowBJ, Scale::Tiny);
        cfg.sim.n_stations = 3;
        let (_, ds) = crate::presets::generate_with(&cfg, 9);
        assert_eq!(ds.stations.len(), 3);
        for b in replay(&ds) {
            assert!(!b.stations.is_empty(), "day {}: no stations", b.day);
            for t in &b.trips {
                assert!(
                    b.stations.iter().any(|s| s.id == t.station),
                    "day {}: trip {:?} station {:?} missing from batch",
                    b.day,
                    t.id,
                    t.station
                );
            }
            // Station metadata matches the dataset's table verbatim.
            for s in &b.stations {
                let in_table = ds.stations.iter().find(|t| t.id == s.id).unwrap();
                assert_eq!(s.location, in_table.location);
            }
        }
        let full = TripBatch::full(&ds);
        assert_eq!(full.stations.len(), 3);
    }

    #[test]
    fn partition_by_station_routes_trips_and_waybills_together() {
        let mut cfg = world_config(Preset::DowBJ, Scale::Tiny);
        cfg.sim.n_stations = 3;
        let (_, ds) = crate::presets::generate_with(&cfg, 9);
        for batch in replay(&ds) {
            let shards = partition_by_station(&batch, 2);
            assert_eq!(shards.len(), 2);
            let total_trips: usize = shards.iter().map(|s| s.trips.len()).sum();
            let total_waybills: usize = shards.iter().map(|s| s.waybills.len()).sum();
            assert_eq!(total_trips, batch.trips.len());
            assert_eq!(total_waybills, batch.waybills.len());
            for (s, shard) in shards.iter().enumerate() {
                assert_eq!(shard.day, batch.day);
                for t in &shard.trips {
                    assert_eq!(t.station.0 as usize % 2, s);
                }
                // Each shard's waybills reference only that shard's trips.
                for w in &shard.waybills {
                    assert!(shard.trips.iter().any(|t| t.id == w.trip));
                }
                // Relative trip order is preserved (a subsequence of the
                // batch's id order).
                for pair in shard.trips.windows(2) {
                    assert!(pair[0].id < pair[1].id);
                }
            }
        }
    }

    #[test]
    fn partition_into_one_shard_is_identity() {
        let (_, ds) = generate(Preset::SubBJ, Scale::Tiny, 6);
        let batch = TripBatch::full(&ds);
        let shards = partition_by_station(&batch, 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].trips.len(), batch.trips.len());
        assert_eq!(shards[0].waybills.len(), batch.waybills.len());
        assert_eq!(shards[0].stations.len(), batch.stations.len());
        let ids: Vec<u32> = shards[0].trips.iter().map(|t| t.id.0).collect();
        let orig: Vec<u32> = batch.trips.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, orig);
    }

    #[test]
    fn full_batch_covers_everything() {
        let (_, ds) = generate(Preset::SubBJ, Scale::Tiny, 6);
        let b = TripBatch::full(&ds);
        assert_eq!(b.trips.len(), ds.trips.len());
        assert_eq!(b.waybills.len(), ds.waybills.len());
        assert_eq!(b.n_gps_points(), ds.total_gps_points());
    }

    #[test]
    fn empty_dataset_replays_to_nothing() {
        let ds = Dataset {
            addresses: vec![],
            trips: vec![],
            waybills: vec![],
            stations: vec![],
        };
        assert_eq!(replay(&ds).count(), 0);
    }
}
