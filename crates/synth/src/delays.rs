//! Batch-confirmation delay injection (Section V-D of the paper).
//!
//! Couriers rarely confirm each parcel at the doorstep; they deliver a batch
//! and confirm all of it at once while standing somewhere. The paper models
//! this by splitting each trip's deliveries into `n_batches` sequential
//! groups; the time of the last delivery in a group is the batch confirmation
//! time, and each waybill in the group is delayed to it with probability
//! `p_delay`. The paper's real data shows roughly 2 batches and
//! `p_delay ≈ 0.3`; the Table III robustness study sweeps
//! `p_delay ∈ {0.2, 0.6, 1.0}`.

use crate::model::Dataset;
use rand::Rng;

/// Delay-injection parameters.
#[derive(Debug, Clone, Copy)]
pub struct DelayConfig {
    /// Number of batch confirmations per trip (paper: usually 2).
    pub n_batches: usize,
    /// Probability a waybill is delayed to its batch confirmation time.
    pub p_delay: f64,
    /// Small operational lag (seconds) added even to undelayed
    /// confirmations — couriers type after handing the parcel over.
    pub base_lag_s: (f64, f64),
}

impl DelayConfig {
    /// The behaviour observed in the paper's real data: 2 batches,
    /// `p_delay = 0.3`.
    pub fn observed() -> Self {
        Self {
            n_batches: 2,
            p_delay: 0.3,
            base_lag_s: (10.0, 180.0),
        }
    }

    /// A Table III sweep point with the given delay probability.
    pub fn sweep(p_delay: f64) -> Self {
        Self {
            p_delay,
            ..Self::observed()
        }
    }

    /// No delays at all (annotations are perfect).
    pub fn none() -> Self {
        Self {
            n_batches: 1,
            p_delay: 0.0,
            base_lag_s: (0.0, 1e-9),
        }
    }
}

/// Overwrites every waybill's `t_recorded_delivery` according to the batch
/// confirmation model, starting from the actual delivery times.
///
/// Idempotent with respect to the *actual* times: recorded times are always
/// recomputed from `t_actual_delivery`, so calling this again with another
/// config re-injects from scratch.
pub fn inject_delays<R: Rng>(dataset: &mut Dataset, cfg: &DelayConfig, rng: &mut R) {
    assert!(cfg.n_batches >= 1, "need at least one batch");
    assert!((0.0..=1.0).contains(&cfg.p_delay), "p_delay in [0,1]");
    // Borrow-friendly: collect per-trip waybill indices first.
    let trip_waybills: Vec<Vec<usize>> = dataset
        .trips
        .iter()
        .map(|t| {
            let mut ws = t.waybills.clone();
            ws.sort_by(|&a, &b| {
                dataset.waybills[a]
                    .t_actual_delivery
                    .total_cmp(&dataset.waybills[b].t_actual_delivery)
            });
            ws
        })
        .collect();

    for ws in &trip_waybills {
        if ws.is_empty() {
            continue;
        }
        let batch_size = ws.len().div_ceil(cfg.n_batches);
        for chunk in ws.chunks(batch_size) {
            let confirm_time =
                dataset.waybills[*chunk.last().expect("non-empty chunk")].t_actual_delivery;
            for &wi in chunk {
                let w = &mut dataset.waybills[wi];
                let lag =
                    rng.gen_range(cfg.base_lag_s.0..cfg.base_lag_s.1.max(cfg.base_lag_s.0 + 1e-9));
                // Drawn explicitly (not `gen_bool`, which skips the RNG at
                // p = 1) so the stream consumption — and therefore each
                // waybill's lag — is identical across `p_delay` sweeps.
                // That keeps recorded times monotone in `p_delay` per
                // waybill, which Table III's fixed-seed comparisons rely on.
                let delayed = rng.gen_range(0.0..1.0) < cfg.p_delay;
                w.t_recorded_delivery = if delayed {
                    confirm_time.max(w.t_actual_delivery) + lag
                } else {
                    w.t_actual_delivery + lag
                };
            }
        }
    }
}

/// Mean recorded-minus-actual delay in seconds over all waybills.
pub fn mean_delay_s(dataset: &Dataset) -> f64 {
    if dataset.waybills.is_empty() {
        return 0.0;
    }
    dataset
        .waybills
        .iter()
        .map(|w| w.t_recorded_delivery - w.t_actual_delivery)
        .sum::<f64>()
        / dataset.waybills.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{generate_city, CityConfig, GeocoderQuality};
    use crate::sim::{simulate, SimConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn dataset(seed: u64) -> Dataset {
        let city_cfg = CityConfig {
            blocks_x: 3,
            blocks_y: 3,
            block_size_m: 120.0,
            buildings_per_block: 3,
            addresses_per_building: (2, 3),
            p_doorstep: 0.6,
            p_locker_given_not_door: 0.5,
            p_follow_building: 0.9,
            geocoder: GeocoderQuality {
                p_accurate: 0.7,
                p_coarse: 0.2,
                accurate_sigma_m: 15.0,
                wrong_parse_range_m: (150.0, 400.0),
            },
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let city = generate_city(&city_cfg, &mut rng);
        simulate(
            &city,
            &SimConfig {
                n_stations: 1,
                couriers_per_station: 2,
                n_days: 4,
                ..SimConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn recorded_never_earlier_than_actual() {
        let mut ds = dataset(0);
        let mut rng = StdRng::seed_from_u64(1);
        inject_delays(&mut ds, &DelayConfig::sweep(0.6), &mut rng);
        for w in &ds.waybills {
            assert!(w.t_recorded_delivery >= w.t_actual_delivery);
        }
        ds.validate();
    }

    #[test]
    fn p_zero_keeps_only_base_lag() {
        let mut ds = dataset(1);
        let mut rng = StdRng::seed_from_u64(2);
        inject_delays(&mut ds, &DelayConfig::sweep(0.0), &mut rng);
        for w in &ds.waybills {
            let d = w.t_recorded_delivery - w.t_actual_delivery;
            assert!((0.0..=180.0).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn p_one_delays_everything_to_batch_time() {
        let mut ds = dataset(2);
        let mut rng = StdRng::seed_from_u64(3);
        inject_delays(&mut ds, &DelayConfig::sweep(1.0), &mut rng);
        // Within each trip's batch, the recorded times must cluster at the
        // batch confirmation time (+ lag ≤ 30 s); in particular the earliest
        // delivery of a batch of size ≥ 2 is genuinely delayed.
        let mut delayed = 0;
        let mut eligible = 0;
        for t in &ds.trips {
            if t.waybills.len() < 2 {
                continue;
            }
            for &wi in &t.waybills {
                let w = &ds.waybills[wi];
                eligible += 1;
                if w.t_recorded_delivery - w.t_actual_delivery > 60.0 {
                    delayed += 1;
                }
            }
        }
        assert!(
            delayed * 10 >= eligible * 3,
            "only {delayed}/{eligible} significantly delayed at p=1"
        );
    }

    #[test]
    fn higher_p_gives_larger_mean_delay() {
        let base = dataset(3);
        let delay_at = |p: f64| {
            let mut ds = base.clone();
            let mut rng = StdRng::seed_from_u64(42);
            inject_delays(&mut ds, &DelayConfig::sweep(p), &mut rng);
            mean_delay_s(&ds)
        };
        let d02 = delay_at(0.2);
        let d06 = delay_at(0.6);
        let d10 = delay_at(1.0);
        assert!(d02 < d06 && d06 < d10, "delays {d02} {d06} {d10}");
    }

    #[test]
    fn reinjection_is_from_scratch() {
        let mut ds = dataset(4);
        let mut rng = StdRng::seed_from_u64(5);
        inject_delays(&mut ds, &DelayConfig::sweep(1.0), &mut rng);
        let heavy = mean_delay_s(&ds);
        inject_delays(&mut ds, &DelayConfig::sweep(0.0), &mut rng);
        let light = mean_delay_s(&ds);
        assert!(light < heavy, "re-injection must reset: {light} vs {heavy}");
        assert!(light < 181.0);
    }

    #[test]
    fn batch_count_controls_delay_magnitude() {
        // More batches = shorter distance to the batch end = smaller delays.
        let base = dataset(5);
        let delay_with_batches = |n: usize| {
            let mut ds = base.clone();
            let mut rng = StdRng::seed_from_u64(7);
            inject_delays(
                &mut ds,
                &DelayConfig {
                    n_batches: n,
                    p_delay: 1.0,
                    base_lag_s: (0.0, 1e-9),
                },
                &mut rng,
            );
            mean_delay_s(&ds)
        };
        assert!(delay_with_batches(1) > delay_with_batches(4));
    }
}
