//! JSON export of the synthetic [`Dataset`].
//!
//! Hand-rolled on [`dlinfma_obs::JsonValue`] (the workspace builds against an
//! offline registry, so there is no serde). The shape mirrors the natural
//! derive output: newtype ids serialise as bare numbers, unit enum variants
//! as strings, and trajectories as `{"points": [{"pos": {"x", "y"}, "t"}]}`.

use dlinfma_geo::Point;
use dlinfma_obs::JsonValue;
use dlinfma_traj::{TrajPoint, Trajectory};

use crate::model::{Address, Dataset, DeliverySpotKind, DeliveryTrip, Station, Waybill};

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(n: f64) -> JsonValue {
    JsonValue::Num(n)
}

fn point_json(p: Point) -> JsonValue {
    obj(vec![("x", num(p.x)), ("y", num(p.y))])
}

fn traj_json(t: &Trajectory) -> JsonValue {
    let points = t
        .points()
        .iter()
        .map(|p: &TrajPoint| obj(vec![("pos", point_json(p.pos)), ("t", num(p.t))]))
        .collect();
    obj(vec![("points", JsonValue::Arr(points))])
}

impl DeliverySpotKind {
    /// The variant name, as serialised in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            DeliverySpotKind::Doorstep => "Doorstep",
            DeliverySpotKind::Locker => "Locker",
            DeliverySpotKind::Reception => "Reception",
        }
    }
}

fn address_json(a: &Address) -> JsonValue {
    obj(vec![
        ("id", num(a.id.0 as f64)),
        ("building", num(a.building.0 as f64)),
        ("geocode", point_json(a.geocode)),
        ("poi_category", num(a.poi_category as f64)),
        (
            "true_delivery_location",
            point_json(a.true_delivery_location),
        ),
        (
            "true_spot_kind",
            JsonValue::Str(a.true_spot_kind.as_str().into()),
        ),
    ])
}

fn waybill_json(w: &Waybill) -> JsonValue {
    obj(vec![
        ("address", num(w.address.0 as f64)),
        ("trip", num(w.trip.0 as f64)),
        ("t_received", num(w.t_received)),
        ("t_recorded_delivery", num(w.t_recorded_delivery)),
        ("t_actual_delivery", num(w.t_actual_delivery)),
    ])
}

fn trip_json(t: &DeliveryTrip) -> JsonValue {
    obj(vec![
        ("id", num(t.id.0 as f64)),
        ("courier", num(t.courier.0 as f64)),
        ("station", num(t.station.0 as f64)),
        ("t_start", num(t.t_start)),
        ("t_end", num(t.t_end)),
        ("trajectory", traj_json(&t.trajectory)),
        (
            "waybills",
            JsonValue::Arr(t.waybills.iter().map(|&i| num(i as f64)).collect()),
        ),
    ])
}

fn station_json(s: &Station) -> JsonValue {
    obj(vec![
        ("id", num(s.id.0 as f64)),
        ("location", point_json(s.location)),
    ])
}

impl Dataset {
    /// Serialises the whole dataset as a JSON tree.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            (
                "addresses",
                JsonValue::Arr(self.addresses.iter().map(address_json).collect()),
            ),
            (
                "trips",
                JsonValue::Arr(self.trips.iter().map(trip_json).collect()),
            ),
            (
                "waybills",
                JsonValue::Arr(self.waybills.iter().map(waybill_json).collect()),
            ),
            (
                "stations",
                JsonValue::Arr(self.stations.iter().map(station_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Preset, Scale};

    #[test]
    fn dataset_json_roundtrips_through_the_parser() {
        let (_city, ds) = generate(Preset::DowBJ, Scale::Tiny, 7);
        let text = ds.to_json().render();
        let v = JsonValue::parse(&text).expect("generated JSON parses");
        assert_eq!(v["addresses"].as_array().unwrap().len(), ds.addresses.len());
        assert_eq!(v["trips"].as_array().unwrap().len(), ds.trips.len());
        assert_eq!(v["waybills"].as_array().unwrap().len(), ds.waybills.len());
        assert_eq!(v["stations"].as_array().unwrap().len(), ds.stations.len());
        let a0 = &v["addresses"][0];
        assert!(a0["geocode"]["x"].as_f64().is_some());
        assert!(a0["true_spot_kind"].as_str().is_some());
        let t0 = &v["trips"][0];
        assert!(
            t0["trajectory"]["points"].as_array().unwrap().len() > 1,
            "trips carry trajectories"
        );
    }
}
