//! Spatial train/validation/test splitting.
//!
//! The paper splits its datasets "according to disjoint spatial regions to
//! make sure there is no delivery location overlap". This module bands the
//! city east-west: addresses are ordered by the x coordinate of their
//! building area and cut into contiguous train/val/test bands, so no two
//! splits share a neighbourhood.

use crate::model::{AddressId, Dataset};

/// A three-way split of address ids into disjoint spatial regions.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training addresses (western band).
    pub train: Vec<AddressId>,
    /// Validation addresses (middle band).
    pub val: Vec<AddressId>,
    /// Test addresses (eastern band).
    pub test: Vec<AddressId>,
}

impl Split {
    /// Total number of addresses across all splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when all splits are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Splits addresses by spatial bands with the given (train, val) fractions;
/// the remainder becomes the test set. Only addresses that appear in at
/// least one waybill are included (others have nothing to infer from).
///
/// Bands are formed on the *geocode* x coordinate so the split never reads
/// ground truth; geocodes are noisy but spatially coherent, which is enough
/// to keep regions disjoint.
///
/// # Panics
/// Panics unless `0 < train`, `0 <= val` and `train + val < 1`.
pub fn spatial_split(dataset: &Dataset, train_frac: f64, val_frac: f64) -> Split {
    assert!(
        train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0,
        "invalid split fractions ({train_frac}, {val_frac})"
    );
    let mut delivered: Vec<AddressId> = dataset.waybills.iter().map(|w| w.address).collect();
    delivered.sort_unstable();
    delivered.dedup();

    let mut by_x: Vec<(f64, AddressId)> = delivered
        .into_iter()
        .map(|a| (dataset.address(a).geocode.x, a))
        .collect();
    by_x.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let n = by_x.len();
    let n_train = (n as f64 * train_frac).round() as usize;
    let n_val = (n as f64 * val_frac).round() as usize;
    let n_train = n_train.min(n);
    let n_val = n_val.min(n - n_train);

    let ids: Vec<AddressId> = by_x.into_iter().map(|(_, a)| a).collect();
    Split {
        train: ids[..n_train].to_vec(),
        val: ids[n_train..n_train + n_val].to_vec(),
        test: ids[n_train + n_val..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{generate, Preset, Scale};

    #[test]
    fn splits_are_disjoint_and_cover_delivered_addresses() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 0);
        let split = spatial_split(&ds, 0.6, 0.2);
        let mut all: Vec<u32> = split
            .train
            .iter()
            .chain(&split.val)
            .chain(&split.test)
            .map(|a| a.0)
            .collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "splits overlap");

        let mut delivered: Vec<u32> = ds.waybills.iter().map(|w| w.address.0).collect();
        delivered.sort_unstable();
        delivered.dedup();
        assert_eq!(all, delivered);
    }

    #[test]
    fn bands_are_spatially_ordered() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 1);
        let split = spatial_split(&ds, 0.5, 0.25);
        let max_x = |ids: &[AddressId]| {
            ids.iter()
                .map(|&a| ds.address(a).geocode.x)
                .fold(f64::MIN, f64::max)
        };
        let min_x = |ids: &[AddressId]| {
            ids.iter()
                .map(|&a| ds.address(a).geocode.x)
                .fold(f64::MAX, f64::min)
        };
        if !split.train.is_empty() && !split.val.is_empty() {
            assert!(max_x(&split.train) <= min_x(&split.val) + 1e-9);
        }
        if !split.val.is_empty() && !split.test.is_empty() {
            assert!(max_x(&split.val) <= min_x(&split.test) + 1e-9);
        }
    }

    #[test]
    fn fractions_roughly_respected() {
        let (_, ds) = generate(Preset::SubBJ, Scale::Tiny, 2);
        let split = spatial_split(&ds, 0.6, 0.2);
        let n = split.len() as f64;
        assert!((split.train.len() as f64 / n - 0.6).abs() < 0.05);
        assert!((split.val.len() as f64 / n - 0.2).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "invalid split fractions")]
    fn bad_fractions_panic() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 3);
        let _ = spatial_split(&ds, 0.8, 0.3);
    }
}
