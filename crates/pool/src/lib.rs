#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `dlinfma-pool` — the workspace's shared, deterministic thread pool.
//!
//! Every parallel stage of the pipeline (stay-point extraction, component
//! re-clustering, retrieval, feature counting, minibatch gradient
//! accumulation, per-address inference) runs on one [`Pool`], built once
//! from `DlInfMaConfig::workers` and reused across ingests instead of
//! spawning fresh threads per stage.
//!
//! # Architecture
//!
//! A classic scoped work-stealing design, zero-dependency by construction
//! (the build container has no registry access):
//!
//! * `N - 1` persistent worker threads, each owning a deque
//!   (`Mutex<VecDeque<Task>>`). Spawned tasks are distributed round-robin
//!   across the deques; a worker pops its own deque from the back (LIFO,
//!   cache-warm) and steals from siblings' fronts (FIFO, oldest first) when
//!   its own runs dry.
//! * [`Pool::scope`] borrows non-`'static` data, like
//!   `std::thread::scope`: the scope joins every task it spawned before
//!   returning, so borrows can never dangle. The calling thread *helps*
//!   while joining — it runs queued tasks instead of blocking — which is
//!   what makes nested scopes (a worker task opening its own scope)
//!   deadlock-free.
//! * A task panic is caught, the first payload is stowed, the remaining
//!   tasks still run, and the panic resumes on the scope's caller after the
//!   join — the pool itself never loses a worker.
//!
//! # Determinism
//!
//! The pool's contract, relied on by the `workers = 1` vs `workers = 8`
//! parity tests: for pure per-item functions, every combinator returns
//! **bit-identical results regardless of worker count or steal order**.
//!
//! * [`Pool::par_map`] / [`Pool::par_chunks`] write each result into the
//!   slot of its input index; output order is input order by construction.
//! * [`Pool::par_map_reduce_ordered`] folds the mapped results *in input
//!   order* on the calling thread. Floating-point accumulation (gradient
//!   sums, metric totals) therefore associates identically no matter how
//!   the map work was scheduled.
//!
//! What is *not* deterministic is execution interleaving — tasks touching
//! shared atomics or locks still race like any threaded code.
//!
//! # Telemetry
//!
//! Every executor keeps relaxed-atomic counters — tasks run, steals,
//! steal failures, queue high-water mark, busy/idle nanoseconds — sampled
//! by [`Pool::telemetry`] into an [`obs::PoolReport`]. When the obs trace
//! sink is installed, each task additionally records a `pool/task` span on
//! its worker thread and steals record instant events, so `--trace-out`
//! files show per-worker busy/idle tracks. All of it is observation-only:
//! no scheduling decision reads a counter, which is what lets the
//! worker-count parity tests pin determinism with telemetry on.

use dlinfma_obs as obs;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work queued on the pool, lifetime-erased to `'static`.
///
/// Safety: the only constructor is [`Scope::spawn`], which transmutes a
/// `'env` closure; [`Pool::scope`] joins all of a scope's tasks before the
/// `'env` borrows can expire.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Per-executor telemetry counters. Relaxed atomics: they are never read
/// on a scheduling decision, only by [`Pool::telemetry`] snapshots.
#[derive(Default)]
struct WorkerStats {
    tasks: AtomicU64,
    steals: AtomicU64,
    steal_failures: AtomicU64,
    queue_hwm: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker thread (empty for a sequential pool).
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Queued-task count, guarded by `idle`'s mutex so a worker can check
    /// it and go to sleep without missing a wake-up.
    idle: Mutex<usize>,
    /// Wakes sleeping workers when work arrives or the pool shuts down.
    bell: Condvar,
    shutdown: AtomicBool,
    /// One slot per worker plus a final slot for the caller thread (which
    /// executes tasks inline and while helping joins).
    stats: Vec<WorkerStats>,
}

impl Shared {
    /// Pops a task from any deque: `home` first (back/LIFO), then steals
    /// from the others (front/FIFO). `home == usize::MAX` scans all (the
    /// helping caller has no home deque). The flag is true when a worker
    /// took the task from a sibling's deque — a steal; the caller draining
    /// deques during a join is doing its job, not stealing.
    fn take(&self, home: usize) -> Option<(Task, bool)> {
        if let Some(q) = self.deques.get(home) {
            if let Some(t) = lock(q).pop_back() {
                self.uncount();
                return Some((t, false));
            }
        }
        let is_worker = home < self.deques.len();
        for (i, q) in self.deques.iter().enumerate() {
            if i == home {
                continue;
            }
            if let Some(t) = lock(q).pop_front() {
                self.uncount();
                return Some((t, is_worker));
            }
        }
        None
    }

    fn uncount(&self) {
        let mut n = lock_m(&self.idle);
        *n = n.saturating_sub(1);
    }

    fn push(&self, slot: usize, task: Task) {
        let depth = {
            let mut q = lock(&self.deques[slot]);
            q.push_back(task);
            q.len() as u64
        };
        self.stats[slot]
            .queue_hwm
            .fetch_max(depth, Ordering::Relaxed);
        *lock_m(&self.idle) += 1;
        self.bell.notify_one();
    }

    /// Runs one task with telemetry: busy time and task count. The
    /// `pool/task` trace span lives inside the task closure itself (see
    /// [`Scope::spawn`]) so its End event is recorded *before* the scope's
    /// completion signal — a span opened out here would race with a
    /// `take_trace` that runs right after the join returns.
    fn run_task(&self, stats_slot: usize, task: Task) {
        let sw = obs::Stopwatch::start();
        task();
        let stats = &self.stats[stats_slot];
        stats.busy_ns.fetch_add(sw.elapsed_ns(), Ordering::Relaxed);
        stats.tasks.fetch_add(1, Ordering::Relaxed);
    }

    /// Index of the caller thread's stats slot (the final one).
    fn caller_slot(&self) -> usize {
        self.stats.len() - 1
    }
}

/// Locks a deque, recovering from a poisoned mutex: tasks run under
/// `catch_unwind`, so a panic can never unwind while a deque lock is held,
/// but defensive recovery keeps the pool alive regardless.
fn lock(q: &Mutex<VecDeque<Task>>) -> std::sync::MutexGuard<'_, VecDeque<Task>> {
    q.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_m(m: &Mutex<usize>) -> std::sync::MutexGuard<'_, usize> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: Arc<Shared>, home: usize) {
    loop {
        if let Some((task, stolen)) = shared.take(home) {
            if stolen {
                shared.stats[home].steals.fetch_add(1, Ordering::Relaxed);
                obs::trace_instant(obs::names::POOL_STEAL);
            }
            shared.run_task(home, task);
            continue;
        }
        let guard = lock_m(&shared.idle);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if *guard == 0 {
            // Nothing queued anywhere; sleep until a push rings the bell.
            let sw = obs::Stopwatch::start();
            drop(shared.bell.wait(guard));
            shared.stats[home]
                .idle_ns
                .fetch_add(sw.elapsed_ns(), Ordering::Relaxed);
        } else {
            // Work was queued somewhere but the scan lost every race for
            // it: a failed steal round.
            shared.stats[home]
                .steal_failures
                .fetch_add(1, Ordering::Relaxed);
        }
        // Either woken or tasks appeared between scan and lock: rescan.
    }
}

/// Per-scope completion tracking: outstanding-task count plus the first
/// panic payload of the scope, if any.
struct ScopeSync {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeSync {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn finish_one(&self, payload: Option<Box<dyn std::any::Any + Send + 'static>>) {
        if let Some(p) = payload {
            let mut slot = self
                .panic
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot.get_or_insert(p);
        }
        let mut n = self
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *n -= 1;
        if *n == 0 {
            self.done.notify_all();
        }
    }
}

/// A scoped spawn handle; see [`Pool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    sync: &'pool Arc<ScopeSync>,
    /// Round-robin target for the scope's pushes.
    next: AtomicUsize,
    /// Invariant over `'env`, like `std::thread::Scope`: keeps callers from
    /// shrinking the environment lifetime and smuggling borrows out.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns a task that may borrow from the enclosing environment. Tasks
    /// run on the pool's workers (and on the caller during the join); the
    /// scope waits for all of them before [`Pool::scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.threads == 1 {
            // Sequential pool: run inline, in spawn order (telemetry still
            // lands in the caller slot so reports stay comparable).
            let shared = &self.pool.shared;
            let _trace = obs::trace_span(obs::names::POOL_TASK);
            let sw = obs::Stopwatch::start();
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(()) => {}
                Err(p) => {
                    let mut slot = self
                        .sync
                        .panic
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    slot.get_or_insert(p);
                }
            }
            let stats = &shared.stats[shared.caller_slot()];
            stats.busy_ns.fetch_add(sw.elapsed_ns(), Ordering::Relaxed);
            stats.tasks.fetch_add(1, Ordering::Relaxed);
            return;
        }
        *self
            .sync
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        let sync = Arc::clone(self.sync);
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // The span must close before `finish_one` signals completion:
            // once the last signal lands, `Pool::scope` can return and the
            // caller may drain the trace rings, so an End recorded after the
            // signal would be lost (or leak into the next capture).
            let outcome = {
                let _trace = obs::trace_span(obs::names::POOL_TASK);
                catch_unwind(AssertUnwindSafe(f))
            };
            sync.finish_one(outcome.err());
        });
        // SAFETY: `Pool::scope` joins every spawned task before returning,
        // so the `'env` borrows captured by the closure outlive its run.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.pool.shared.deques.len();
        self.pool.shared.push(slot, task);
    }
}

/// The shared work-stealing thread pool; see the crate docs.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// A pool with `threads` total executors: the calling thread plus
    /// `threads - 1` persistent workers. `Pool::new(1)` spawns no threads
    /// and runs everything inline, in spawn order. `threads` is clamped to
    /// at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            deques: (1..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(0),
            bell: Condvar::new(),
            shutdown: AtomicBool::new(false),
            // One slot per worker plus the caller slot.
            stats: (0..threads).map(|_| WorkerStats::default()).collect(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dlinfma-pool-{}", i - 1))
                    .spawn(move || worker_loop(shared, i - 1))
                    .unwrap_or_else(|e| panic!("spawning pool worker: {e}"))
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// A single-threaded pool: every combinator degenerates to its serial
    /// equivalent. Cheap to construct (no threads).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Total executors (calling thread included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowing tasks, joining
    /// them all before returning. The calling thread helps run queued tasks
    /// during the join. The first panic — from `f` itself or any task —
    /// resumes on the caller once everything has joined.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let sync = Arc::new(ScopeSync::new());
        let scope = Scope {
            pool: self,
            sync: &sync,
            next: AtomicUsize::new(0),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.join(&sync);
        if obs::trace_enabled() {
            // Counter tracks so the trace shows scheduler throughput
            // evolving scope by scope.
            let report = self.telemetry_totals();
            obs::trace_counter(obs::names::POOL_TASKS_TOTAL, report.0 as f64);
            obs::trace_counter(obs::names::POOL_STEALS_TOTAL, report.1 as f64);
        }
        let stored = sync
            .panic
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(p) = stored {
            resume_unwind(p);
        }
        match result {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }

    /// Blocks until `sync.pending == 0`, running queued tasks meanwhile.
    fn join(&self, sync: &Arc<ScopeSync>) {
        loop {
            {
                let n = sync
                    .pending
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if *n == 0 {
                    return;
                }
            }
            // Help: run any queued task (ours or a nested scope's).
            if let Some((task, _)) = self.shared.take(usize::MAX) {
                self.shared.run_task(self.shared.caller_slot(), task);
                continue;
            }
            // Nothing left to run; the stragglers are mid-flight on
            // workers. Sleep until the last one notifies.
            let guard = sync
                .pending
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if *guard == 0 {
                return;
            }
            drop(sync.done.wait(guard));
        }
    }

    /// Applies `f` to every item, returning results **in input order**.
    /// Work is chunked across the pool and stolen freely; the output is
    /// bit-identical for any worker count as long as `f` is a pure function
    /// of its item.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = Self::auto_chunk(items.len(), self.threads);
        let mut out: Vec<Option<U>> = Vec::new();
        out.resize_with(items.len(), || None);
        let f = &f;
        self.scope(|s| {
            for (its, slots) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (it, slot) in its.iter().zip(slots.iter_mut()) {
                        *slot = Some(f(it));
                    }
                });
            }
        });
        out.into_iter()
            .map(|o| o.unwrap_or_else(|| unreachable!("scope joined with an unfilled slot")))
            .collect()
    }

    /// Applies `f` to fixed-size chunks of `items` (the last may be short),
    /// returning one result per chunk **in chunk order**. `f` receives the
    /// chunk's start index. The chunking is the caller's — independent of
    /// worker count — so per-chunk accumulations (timing sums, funnel
    /// counts) are reproducible across pool sizes.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn par_chunks<T, U, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        if self.threads == 1 || items.len() <= chunk {
            return items
                .chunks(chunk)
                .enumerate()
                .map(|(i, c)| f(i * chunk, c))
                .collect();
        }
        let n_chunks = items.len().div_ceil(chunk);
        let mut out: Vec<Option<U>> = Vec::new();
        out.resize_with(n_chunks, || None);
        let f = &f;
        self.scope(|s| {
            for ((i, its), slot) in items.chunks(chunk).enumerate().zip(out.iter_mut()) {
                s.spawn(move || {
                    *slot = Some(f(i * chunk, its));
                });
            }
        });
        out.into_iter()
            .map(|o| o.unwrap_or_else(|| unreachable!("scope joined with an unfilled slot")))
            .collect()
    }

    /// Maps every item in parallel, then folds the mapped values **in input
    /// order** on the calling thread: `reduce(...reduce(reduce(init, u0),
    /// u1)..., un)`. Because the fold order is fixed, floating-point
    /// reductions (gradient sums, loss totals) are bit-identical regardless
    /// of worker count or steal order — the determinism anchor for
    /// data-parallel training.
    pub fn par_map_reduce_ordered<T, U, A, M, R>(
        &self,
        items: &[T],
        map: M,
        init: A,
        reduce: R,
    ) -> A
    where
        T: Sync,
        U: Send,
        M: Fn(&T) -> U + Sync,
        R: FnMut(A, U) -> A,
    {
        let mapped = self.par_map(items, map);
        mapped.into_iter().fold(init, reduce)
    }

    /// Chunk size targeting ~4 chunks per executor, so stealing can balance
    /// uneven items without drowning in per-task overhead.
    fn auto_chunk(n: usize, threads: usize) -> usize {
        n.div_ceil(threads * 4).max(1)
    }

    /// Cumulative scheduler telemetry since the pool was created (or the
    /// last [`Pool::reset_telemetry`]). Use [`obs::PoolReport::minus`] on
    /// two snapshots to window a single ingest or scope.
    pub fn telemetry(&self) -> obs::PoolReport {
        let caller = self.shared.caller_slot();
        obs::PoolReport {
            threads: self.threads as u64,
            workers: self
                .shared
                .stats
                .iter()
                .enumerate()
                .map(|(i, s)| obs::PoolWorkerReport {
                    label: if i == caller {
                        "caller".to_string()
                    } else {
                        format!("worker-{i}")
                    },
                    tasks: s.tasks.load(Ordering::Relaxed),
                    steals: s.steals.load(Ordering::Relaxed),
                    steal_failures: s.steal_failures.load(Ordering::Relaxed),
                    queue_hwm: s.queue_hwm.load(Ordering::Relaxed),
                    busy_ns: s.busy_ns.load(Ordering::Relaxed),
                    idle_ns: s.idle_ns.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Zeroes every telemetry counter. Never required for correctness —
    /// counters are observation-only — but long-lived processes may want
    /// fresh windows without diffing snapshots.
    pub fn reset_telemetry(&self) {
        for s in &self.shared.stats {
            s.tasks.store(0, Ordering::Relaxed);
            s.steals.store(0, Ordering::Relaxed);
            s.steal_failures.store(0, Ordering::Relaxed);
            s.queue_hwm.store(0, Ordering::Relaxed);
            s.busy_ns.store(0, Ordering::Relaxed);
            s.idle_ns.store(0, Ordering::Relaxed);
        }
    }

    /// `(total tasks, total steals)` across all executors.
    fn telemetry_totals(&self) -> (u64, u64) {
        self.shared.stats.iter().fold((0, 0), |(t, s), w| {
            (
                t + w.tasks.load(Ordering::Relaxed),
                s + w.steals.load(Ordering::Relaxed),
            )
        })
    }
}

/// Spawns a named, long-lived OS service thread and returns its handle.
///
/// Pool workers are the wrong executor for blocking, open-ended work — an
/// accept loop or a background ingest would starve a deque slot for the
/// process lifetime. Service threads live outside the pool; this helper is
/// the one sanctioned spawn site so they all carry a `dlinfma-svc-*` name
/// (which trace exports and debuggers surface) instead of anonymous
/// `std::thread::spawn` calls scattered across crates.
pub fn spawn_service<T, F>(name: &str, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("dlinfma-svc-{name}"))
        .spawn(f)
        .unwrap_or_else(|e| panic!("spawning service thread {name}: {e}"))
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Take the idle lock so no worker is between its queue scan and
            // its wait when the bell rings.
            let _guard = lock_m(&self.shared.idle);
            self.shared.bell.notify_all();
        }
        for h in self.workers.drain(..) {
            // A worker that panicked outside a task already unwound; there
            // is nothing useful to do with the payload during drop.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_pool_runs_inline_in_order() {
        let pool = Pool::sequential();
        assert_eq!(pool.threads(), 1);
        let log = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..5 {
                let log = &log;
                s.spawn(move || {
                    log.lock().unwrap().push(i);
                });
            }
        });
        assert_eq!(log.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn new_zero_threads_clamps_to_one_inline_executor() {
        // `Pool::new(0)` is documented to clamp to a single inline
        // executor rather than panic or deadlock; pin that contract.
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        let log = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..3 {
                let log = &log;
                s.spawn(move || log.lock().unwrap().push(i));
            }
        });
        assert_eq!(log.into_inner().unwrap(), vec![0, 1, 2]);
        assert_eq!(pool.par_map(&[1u64, 2, 3], |&x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn spawn_service_names_thread_and_returns_value() {
        let h = spawn_service("test", || {
            (std::thread::current().name().map(str::to_owned), 21u32 * 2)
        });
        let (name, v) = h.join().unwrap();
        assert_eq!(name.as_deref(), Some("dlinfma-svc-test"));
        assert_eq!(v, 42);
    }

    #[test]
    fn scope_joins_all_tasks_and_borrows() {
        let pool = Pool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(37) {
                let total = &total;
                s.spawn(move || {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let items: Vec<u64> = (0..997).collect();
            let out = pool.par_map(&items, |&x| x * x);
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn par_map_results_identical_across_worker_counts() {
        let items: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let golden = Pool::new(1).par_map(&items, |&x| x.exp().sqrt());
        for threads in [2, 3, 8] {
            let got = Pool::new(threads).par_map(&items, |&x| x.exp().sqrt());
            assert_eq!(golden, got, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_covers_everything_with_caller_chunking() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.par_chunks(&items, 7, |start, chunk| (start, chunk.to_vec()));
        assert_eq!(out.len(), 100usize.div_ceil(7));
        let mut flat = Vec::new();
        for (i, (start, chunk)) in out.iter().enumerate() {
            assert_eq!(*start, i * 7);
            flat.extend_from_slice(chunk);
        }
        assert_eq!(flat, items);
    }

    #[test]
    fn ordered_reduce_is_bit_identical_across_worker_counts() {
        // A sum of floats of wildly different magnitudes is order-sensitive;
        // the ordered reduce must nail the serial result exactly.
        let items: Vec<f64> = (0..2000)
            .map(|i| (i as f64 * 0.7).sin() * 10f64.powi((i % 17) - 8))
            .collect();
        let serial: f64 = items.iter().map(|&x| x * 1.000001).sum();
        for threads in [1, 2, 8] {
            let got = Pool::new(threads).par_map_reduce_ordered(
                &items,
                |&x| x * 1.000001,
                0.0f64,
                |a, b| a + b,
            );
            assert!(
                got.to_bits() == serial.to_bits(),
                "threads={threads}: {got} vs {serial}"
            );
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.par_map(&[42u32], |&x| x + 1), vec![43]);
        assert!(pool
            .par_chunks(&empty, 8, |_, c: &[u32]| c.len())
            .is_empty());
    }

    #[test]
    fn task_panic_propagates_after_join() {
        let pool = Pool::new(4);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 7 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "the panic must surface on the caller");
        // Every non-panicking task still ran; no worker died with the task.
        assert_eq!(finished.load(Ordering::Relaxed), 15);
        // The pool survives and serves the next scope.
        let out = pool.par_map(&[1u32, 2, 3], |&x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Pool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                let pool = &pool;
                outer.spawn(move || {
                    // A task opening its own scope on the same pool: the
                    // join loop helps, so this cannot deadlock.
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_is_reusable_across_many_scopes() {
        let pool = Pool::new(4);
        for round in 0..50 {
            let items: Vec<u64> = (0..64).collect();
            let out = pool.par_map(&items, |&x| x + round);
            assert_eq!(out[5], 5 + round);
        }
    }

    #[test]
    fn telemetry_counts_tasks_and_diffs_as_snapshots() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..256).collect();
        let _ = pool.par_map(&items, |&x| x * 2);
        let first = pool.telemetry();
        assert_eq!(first.threads, 4);
        assert_eq!(first.workers.len(), 4, "3 workers + caller slot");
        assert_eq!(first.workers.last().unwrap().label, "caller");
        assert!(first.total_tasks() > 0, "{first:?}");
        assert!(
            first.workers.iter().map(|w| w.busy_ns).sum::<u64>() > 0,
            "tasks ran, busy time must be nonzero"
        );

        let _ = pool.par_map(&items, |&x| x + 1);
        let second = pool.telemetry();
        let delta = second.minus(&first);
        assert_eq!(
            delta.total_tasks(),
            second.total_tasks() - first.total_tasks()
        );

        pool.reset_telemetry();
        assert_eq!(pool.telemetry().total_tasks(), 0);
    }

    #[test]
    fn sequential_pool_attributes_tasks_to_the_caller() {
        let pool = Pool::sequential();
        pool.scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {});
            }
        });
        let t = pool.telemetry();
        assert_eq!(t.workers.len(), 1);
        assert_eq!(t.workers[0].label, "caller");
        assert_eq!(t.workers[0].tasks, 3);
        assert_eq!(t.total_steals(), 0, "nothing to steal inline");
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        for _ in 0..10 {
            let pool = Pool::new(4);
            let _ = pool.par_map(&[1u8, 2, 3], |&x| x);
            drop(pool);
        }
    }
}
