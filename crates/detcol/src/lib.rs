//! Deterministic ordered collections.
//!
//! The repo's load-bearing invariant is bit-for-bit determinism: the same
//! trips must produce the same artifacts at any worker count, any batch
//! split, and (for the sharded engine) any shard count. `std::collections::
//! HashMap`/`HashSet` break that structurally — their iteration order is
//! randomized per process — so any hash iteration whose order can reach an
//! artifact is a latent parity bug that no fixed-seed test reliably
//! catches.
//!
//! [`OrdMap`] and [`OrdSet`] are thin wrappers over `BTreeMap`/`BTreeSet`
//! whose entire contract is: **iteration is strictly ascending by key, and
//! therefore a pure function of the contents** — never of insertion order,
//! hasher seed, process, or platform. The xtask determinism auditor (rules
//! L9/L10, see `DESIGN.md`) steers every iterated hash collection in the
//! workspace onto these types; hash containers stay acceptable only for
//! lookup-only tables, documented with a reasoned `// lint: allow`.
//!
//! The wrappers deliberately stay *thin*: they deref to the underlying
//! BTree types, so every std method is available, and swapping the backing
//! store later (e.g. for an adaptive radix tree) is a one-crate change.
//! Construction mirrors the hash types (`new`, `from_iter`, `Extend`,
//! `From<[(K, V); N]>`), so a migration is usually just a type rename.

use std::collections::{btree_map, btree_set, BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// An ordered map with deterministic (strictly ascending-by-key) iteration.
///
/// See the crate docs for why this exists. All read/write methods come from
/// the `Deref` to [`BTreeMap`].
pub struct OrdMap<K, V>(BTreeMap<K, V>);

/// An ordered set with deterministic (strictly ascending) iteration.
///
/// See the crate docs for why this exists. All read/write methods come from
/// the `Deref` to [`BTreeSet`].
pub struct OrdSet<T>(BTreeSet<T>);

impl<K: Ord, V> OrdMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self(BTreeMap::new())
    }

    /// The backing `BTreeMap`, by value.
    pub fn into_inner(self) -> BTreeMap<K, V> {
        self.0
    }
}

impl<T: Ord> OrdSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        Self(BTreeSet::new())
    }

    /// The backing `BTreeSet`, by value.
    pub fn into_inner(self) -> BTreeSet<T> {
        self.0
    }
}

impl<K, V> Deref for OrdMap<K, V> {
    type Target = BTreeMap<K, V>;
    fn deref(&self) -> &BTreeMap<K, V> {
        &self.0
    }
}

impl<K, V> DerefMut for OrdMap<K, V> {
    fn deref_mut(&mut self) -> &mut BTreeMap<K, V> {
        &mut self.0
    }
}

impl<T> Deref for OrdSet<T> {
    type Target = BTreeSet<T>;
    fn deref(&self) -> &BTreeSet<T> {
        &self.0
    }
}

impl<T> DerefMut for OrdSet<T> {
    fn deref_mut(&mut self) -> &mut BTreeSet<T> {
        &mut self.0
    }
}

impl<K: Ord, V> Default for OrdMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> Default for OrdSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone, V: Clone> Clone for OrdMap<K, V> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T: Clone> Clone for OrdSet<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for OrdMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: fmt::Debug> fmt::Debug for OrdSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<K: PartialEq, V: PartialEq> PartialEq for OrdMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl<K: Eq, V: Eq> Eq for OrdMap<K, V> {}

impl<T: PartialEq> PartialEq for OrdSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl<T: Eq> Eq for OrdSet<T> {}

impl<K: Ord, V> FromIterator<(K, V)> for OrdMap<K, V> {
    /// Later entries win on duplicate keys, matching `HashMap::from_iter`.
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Self(BTreeMap::from_iter(iter))
    }
}

impl<T: Ord> FromIterator<T> for OrdSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self(BTreeSet::from_iter(iter))
    }
}

impl<K: Ord, V, const N: usize> From<[(K, V); N]> for OrdMap<K, V> {
    fn from(arr: [(K, V); N]) -> Self {
        Self(BTreeMap::from(arr))
    }
}

impl<T: Ord, const N: usize> From<[T; N]> for OrdSet<T> {
    fn from(arr: [T; N]) -> Self {
        Self(BTreeSet::from(arr))
    }
}

impl<K: Ord, V> From<BTreeMap<K, V>> for OrdMap<K, V> {
    fn from(inner: BTreeMap<K, V>) -> Self {
        Self(inner)
    }
}

impl<T: Ord> From<BTreeSet<T>> for OrdSet<T> {
    fn from(inner: BTreeSet<T>) -> Self {
        Self(inner)
    }
}

impl<K: Ord, V> Extend<(K, V)> for OrdMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl<T: Ord> Extend<T> for OrdSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl<K, V> IntoIterator for OrdMap<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a, K, V> IntoIterator for &'a OrdMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl<'a, K, V> IntoIterator for &'a mut OrdMap<K, V> {
    type Item = (&'a K, &'a mut V);
    type IntoIter = btree_map::IterMut<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter_mut()
    }
}

impl<T> IntoIterator for OrdSet<T> {
    type Item = T;
    type IntoIter = btree_set::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a OrdSet<T> {
    type Item = &'a T;
    type IntoIter = btree_set::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_iteration_is_a_pure_function_of_contents() {
        // Two insertion orders, one drain-reinsert cycle: identical walks.
        let mut a: OrdMap<u32, &str> = OrdMap::new();
        for k in [9u32, 1, 5, 3, 7] {
            a.insert(k, "x");
        }
        let b: OrdMap<u32, &str> = [3u32, 7, 9, 5, 1].into_iter().map(|k| (k, "x")).collect();
        assert_eq!(a, b);
        let ka: Vec<u32> = a.keys().copied().collect();
        let kb: Vec<u32> = b.keys().copied().collect();
        assert_eq!(ka, kb);
        assert_eq!(ka, vec![1, 3, 5, 7, 9], "ascending by key");
    }

    #[test]
    fn set_iteration_is_sorted_regardless_of_insertion_order() {
        let s: OrdSet<i64> = [5i64, -2, 40, 0, -2].into_iter().collect();
        let walked: Vec<i64> = s.iter().copied().collect();
        assert_eq!(walked, vec![-2, 0, 5, 40]);
        assert_eq!(s.len(), 4, "duplicates collapse");
    }

    #[test]
    fn from_iter_keeps_the_last_value_per_key_like_hashmap() {
        let m: OrdMap<u8, u8> = [(1u8, 10u8), (2, 20), (1, 11)].into_iter().collect();
        assert_eq!(m.get(&1), Some(&11));
        assert_eq!(m.get(&2), Some(&20));
    }

    #[test]
    fn deref_exposes_the_full_btree_api() {
        let mut m: OrdMap<u32, u32> = OrdMap::new();
        m.insert(2, 4);
        m.entry(3).or_insert(9);
        m.retain(|&k, _| k != 2);
        assert_eq!(m.iter().next(), Some((&3, &9)));
        assert!(m.contains_key(&3));

        let mut s: OrdSet<u32> = OrdSet::new();
        s.insert(4);
        s.insert(1);
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.range(2..).next(), Some(&4));
    }

    #[test]
    fn loops_and_extend_work_like_the_std_types() {
        let mut m: OrdMap<u32, u32> = OrdMap::new();
        m.extend([(2u32, 1u32), (1, 1)]);
        let mut seen = Vec::new();
        for (k, v) in &m {
            seen.push((*k, *v));
        }
        assert_eq!(seen, vec![(1, 1), (2, 1)]);
        for (_, v) in &mut m {
            *v += 1;
        }
        let owned: Vec<(u32, u32)> = m.into_iter().collect();
        assert_eq!(owned, vec![(1, 2), (2, 2)]);

        let mut s: OrdSet<u32> = OrdSet::new();
        s.extend([3u32, 1]);
        let walked: Vec<u32> = (&s).into_iter().copied().collect();
        assert_eq!(walked, vec![1, 3]);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn into_inner_and_from_round_trip() {
        let m: OrdMap<u8, u8> = [(1u8, 2u8)].into();
        let inner = m.into_inner();
        let back = OrdMap::from(inner);
        assert_eq!(back.get(&1), Some(&2));

        let s: OrdSet<u8> = [7u8].into();
        assert!(OrdSet::from(s.into_inner()).contains(&7));
    }
}
