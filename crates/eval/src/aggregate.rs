//! Seed-averaged evaluation.
//!
//! Synthetic worlds are small relative to the paper's 20-month datasets
//! (tens of thousands of evaluation addresses there, ~10² here), so
//! single-world method orderings are noisy. The table benches therefore
//! average each method's metrics over several world seeds, which is also
//! the honest way to report a simulator-based reproduction.

use crate::methods::{evaluate, Method, MethodResult};
use crate::metrics::Metrics;
use crate::world::ExperimentWorld;

/// Evaluates `method` on every world and returns the across-world mean of
/// each metric (macro average; every world weighs equally).
///
/// # Panics
/// Panics on an empty world list.
pub fn evaluate_mean(worlds: &[ExperimentWorld], method: Method) -> MethodResult {
    assert!(!worlds.is_empty(), "need at least one world");
    let results: Vec<MethodResult> = worlds.iter().map(|w| evaluate(w, method)).collect();
    let k = results.len() as f64;
    let metrics = Metrics {
        mae: results.iter().map(|r| r.metrics.mae).sum::<f64>() / k,
        p95: results.iter().map(|r| r.metrics.p95).sum::<f64>() / k,
        beta50: results.iter().map(|r| r.metrics.beta50).sum::<f64>() / k,
        n: results.iter().map(|r| r.metrics.n).sum(),
    };
    MethodResult {
        name: method.name(),
        metrics,
        elapsed_s: results.iter().map(|r| r.elapsed_s).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{Preset, Scale};

    #[test]
    fn mean_over_two_seeds_pools_the_counts() {
        let worlds = vec![
            ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 1),
            ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 2),
        ];
        let single_a = evaluate(&worlds[0], Method::Geocoding);
        let single_b = evaluate(&worlds[1], Method::Geocoding);
        let mean = evaluate_mean(&worlds, Method::Geocoding);
        assert_eq!(mean.metrics.n, single_a.metrics.n + single_b.metrics.n);
        let expect = (single_a.metrics.mae + single_b.metrics.mae) / 2.0;
        assert!((mean.metrics.mae - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one world")]
    fn empty_world_list_panics() {
        let _ = evaluate_mean(&[], Method::Geocoding);
    }
}
