//! Evaluation metrics (Section V-B): MAE, P95 and β_δ.

/// Distance threshold (meters) for the headline β metric; the paper uses
/// δ = 50 m following its reference [20].
pub const BETA_DELTA_M: f64 = 50.0;

/// Aggregated inference-error metrics over a set of addresses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Mean absolute error in meters (Equation 6).
    pub mae: f64,
    /// 95th-percentile error in meters (bad-case behaviour).
    pub p95: f64,
    /// Percentage of addresses with error below 50 m (Equation 7).
    pub beta50: f64,
    /// Number of evaluated addresses.
    pub n: usize,
}

impl Metrics {
    /// Computes all metrics from per-address errors (meters).
    ///
    /// Returns `None` for an empty error set.
    pub fn from_errors(errors: &[f64]) -> Option<Metrics> {
        if errors.is_empty() {
            return None;
        }
        let n = errors.len();
        let mae = errors.iter().sum::<f64>() / n as f64;
        let beta50 = errors.iter().filter(|&&e| e < BETA_DELTA_M).count() as f64 / n as f64 * 100.0;
        Some(Metrics {
            mae,
            p95: percentile(errors, 0.95),
            beta50,
            n,
        })
    }
}

/// The `q`-quantile of `values` using linear interpolation between order
/// statistics (the same convention as numpy's default).
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_errors_is_none() {
        assert!(Metrics::from_errors(&[]).is_none());
    }

    #[test]
    fn single_error() {
        let m = Metrics::from_errors(&[30.0]).unwrap();
        assert_eq!(m.mae, 30.0);
        assert_eq!(m.p95, 30.0);
        assert_eq!(m.beta50, 100.0);
        assert_eq!(m.n, 1);
    }

    #[test]
    fn known_values() {
        let errors: Vec<f64> = (1..=100).map(f64::from).collect();
        let m = Metrics::from_errors(&errors).unwrap();
        assert!((m.mae - 50.5).abs() < 1e-9);
        // Linear interpolation: 0.95 * 99 = 94.05 -> between 95 and 96.
        assert!((m.p95 - 95.05).abs() < 1e-9);
        assert_eq!(m.beta50, 49.0); // 1..=49 are < 50
    }

    #[test]
    fn beta_boundary_is_strict() {
        let m = Metrics::from_errors(&[49.999, 50.0, 50.001]).unwrap();
        assert!((m.beta50 - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_extremes() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 3.0);
        assert_eq!(percentile(&v, 0.5), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn metrics_are_bounded_by_the_errors(
                errors in proptest::collection::vec(0.0..5_000.0f64, 1..200)
            ) {
                let m = Metrics::from_errors(&errors).unwrap();
                let min = errors.iter().copied().fold(f64::MAX, f64::min);
                let max = errors.iter().copied().fold(f64::MIN, f64::max);
                prop_assert!(m.mae >= min - 1e-9 && m.mae <= max + 1e-9);
                prop_assert!(m.p95 >= min - 1e-9 && m.p95 <= max + 1e-9);
                prop_assert!((0.0..=100.0).contains(&m.beta50));
                prop_assert_eq!(m.n, errors.len());
            }

            #[test]
            fn percentile_monotone_in_q(
                values in proptest::collection::vec(-100.0..100.0f64, 1..80),
                q1 in 0.0..1.0f64,
                q2 in 0.0..1.0f64,
            ) {
                let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
                prop_assert!(percentile(&values, lo) <= percentile(&values, hi) + 1e-9);
            }

            #[test]
            fn percentile_is_order_invariant(
                mut values in proptest::collection::vec(-100.0..100.0f64, 1..60),
                q in 0.0..1.0f64,
            ) {
                let before = percentile(&values, q);
                values.reverse();
                prop_assert!((percentile(&values, q) - before).abs() < 1e-9);
            }
        }
    }
}
