#![warn(missing_docs)]
//! Evaluation harness for the DLInfMA reproduction.
//!
//! * [`metrics`] — MAE, P95 and β_δ (Section V-B);
//! * [`world`] — a shared experiment fixture (generated world + prepared
//!   pipeline + annotations + ground truth);
//! * [`methods`] — the full method registry of Tables II/III, with
//!   [`methods::evaluate`] producing per-method metrics;
//! * [`stats`] — Table I statistics and the Figure 9 distributions;
//! * [`report`] — plain-text table/series rendering used by the benches.

pub mod aggregate;
pub mod methods;
pub mod metrics;
pub mod report;
pub mod stats;
pub mod world;

pub use aggregate::evaluate_mean;
pub use methods::{evaluate, evaluate_errors, Ablation, Method, MethodResult};
pub use metrics::{percentile, Metrics, BETA_DELTA_M};
pub use report::{render_metrics_table, render_series};
pub use stats::{
    building_location_distribution, candidates_per_address, dataset_stats, deliveries_per_address,
    multi_location_building_fraction, stays_per_trip, DatasetStats,
};
pub use world::{pipeline_config, ExperimentWorld};
