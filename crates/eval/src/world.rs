//! A shared experiment fixture: one generated world with the DLInfMA
//! pipeline prepared, labelled, and split, plus the annotation view the
//! annotation-based baselines consume.

use dlinfma_baselines::AnnotatedLocations;
use dlinfma_core::{AddressSample, DlInfMa, DlInfMaConfig};
use dlinfma_geo::Point;
use dlinfma_synth::{
    generate_with, spatial_split, AddressId, City, Dataset, Preset, Scale, Split, WorldConfig,
};
use std::collections::HashMap;

/// Everything an experiment needs, built once per dataset.
pub struct ExperimentWorld {
    /// The generated city (carries ground truth).
    pub city: City,
    /// The simulated dataset.
    pub dataset: Dataset,
    /// Spatially-disjoint train/val/test address split.
    pub split: Split,
    /// Prepared (and labelled, but untrained) DLInfMA pipeline.
    pub dlinfma: DlInfMa,
    /// Annotated locations for annotation-based baselines.
    pub ann: AnnotatedLocations,
    /// Ground-truth delivery locations per address.
    pub gt: HashMap<AddressId, Point>,
}

/// The per-preset pipeline configuration [`ExperimentWorld::build`] uses:
/// [`DlInfMaConfig::fast`] with the clustering distance `D` at the preset's
/// Figure 10(a) optimum (30 m for SynthDowBJ, 40 m for SynthSubBJ — the same
/// selection procedure the paper runs, which lands on 40 m for its real
/// datasets).
pub fn pipeline_config(preset: Preset) -> DlInfMaConfig {
    let mut cfg = DlInfMaConfig::fast();
    cfg.clustering_distance_m = match preset {
        Preset::DowBJ => dlinfma_params::TUNED_CLUSTER_DISTANCE_M,
        Preset::SubBJ => dlinfma_params::CLUSTER_DISTANCE_M,
    };
    cfg
}

impl ExperimentWorld {
    /// Builds a world from a preset at a scale with [`pipeline_config`].
    pub fn build(preset: Preset, scale: Scale, seed: u64) -> Self {
        Self::build_with_config(preset, scale, seed, pipeline_config(preset))
    }

    /// Builds a world from a preset at a scale with an explicit pipeline
    /// configuration (e.g. a caller-chosen worker count).
    pub fn build_with_config(preset: Preset, scale: Scale, seed: u64, cfg: DlInfMaConfig) -> Self {
        Self::build_from(&dlinfma_synth::world_config(preset, scale), seed, cfg)
    }

    /// Builds from an explicit world + pipeline configuration (parameter
    /// sweeps).
    pub fn build_from(cfg: &WorldConfig, seed: u64, pipeline_cfg: DlInfMaConfig) -> Self {
        let (city, dataset) = generate_with(cfg, seed);
        let split = spatial_split(&dataset, 0.6, 0.2);
        let mut dlinfma = DlInfMa::prepare(&dataset, pipeline_cfg);
        dlinfma.label_from_dataset(&dataset);
        let ann = AnnotatedLocations::from_dataset(&dataset);
        let gt = city
            .addresses
            .iter()
            .map(|a| (a.id, a.true_delivery_location))
            .collect();
        Self {
            city,
            dataset,
            split,
            dlinfma,
            ann,
            gt,
        }
    }

    /// Labelled samples of the training split.
    pub fn train_samples(&self) -> Vec<AddressSample> {
        self.samples_of(&self.split.train)
    }

    /// Labelled samples of the validation split.
    pub fn val_samples(&self) -> Vec<AddressSample> {
        self.samples_of(&self.split.val)
    }

    /// Labelled samples of the test split.
    pub fn test_samples(&self) -> Vec<AddressSample> {
        self.samples_of(&self.split.test)
    }

    fn samples_of(&self, ids: &[AddressId]) -> Vec<AddressSample> {
        ids.iter()
            .filter_map(|a| self.dlinfma.sample(*a).cloned())
            .collect()
    }

    /// Ground truth of one address.
    pub fn truth(&self, addr: AddressId) -> Point {
        self.gt[&addr]
    }

    /// Per-address error of a prediction function over the test split, with
    /// the deployment fallback (geocode) for addresses the method cannot
    /// answer.
    pub fn test_errors(&self, mut infer: impl FnMut(AddressId) -> Option<Point>) -> Vec<f64> {
        self.split
            .test
            .iter()
            .map(|&a| {
                let p = infer(a).unwrap_or_else(|| self.dataset.address(a).geocode);
                p.distance(&self.truth(a))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_labels() {
        let w = ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 0);
        assert!(!w.split.test.is_empty());
        let labelled = w
            .train_samples()
            .iter()
            .filter(|s| s.label.is_some())
            .count();
        assert!(labelled > 0, "training samples must be labelled");
    }

    #[test]
    fn test_errors_fall_back_to_geocode() {
        let w = ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 1);
        let errors = w.test_errors(|_| None);
        assert_eq!(errors.len(), w.split.test.len());
        // Falls back to geocode: errors equal geocode errors.
        for (e, &a) in errors.iter().zip(&w.split.test) {
            let geo_err = w.dataset.address(a).geocode.distance(&w.truth(a));
            assert!((e - geo_err).abs() < 1e-9);
        }
    }
}
