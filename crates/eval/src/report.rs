//! Plain-text table rendering for experiment outputs.

use crate::methods::MethodResult;

/// Renders a Table II/III-style block: one row per method with
/// MAE / P95 / β50 columns plus the wall-clock time the method took.
pub fn render_metrics_table(title: &str, results: &[MethodResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<18} {:>10} {:>10} {:>8} {:>6} {:>8}\n",
        "Method", "MAE (m)", "P95 (m)", "β50 (%)", "N", "t (s)"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<18} {:>10.1} {:>10.1} {:>8.1} {:>6} {:>8.2}\n",
            r.name, r.metrics.mae, r.metrics.p95, r.metrics.beta50, r.metrics.n, r.elapsed_s
        ));
    }
    out
}

/// Renders a two-column numeric series (figures): `label, value` rows.
pub fn render_series(title: &str, x_label: &str, y_label: &str, rows: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{x_label:<20} {y_label:>12}\n"));
    for (x, y) in rows {
        out.push_str(&format!("{x:<20} {y:>12.2}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn table_renders_every_row() {
        let results = vec![
            MethodResult {
                name: "Geocoding",
                metrics: Metrics {
                    mae: 101.5,
                    p95: 300.0,
                    beta50: 40.0,
                    n: 100,
                },
                elapsed_s: 0.25,
            },
            MethodResult {
                name: "DLInfMA",
                metrics: Metrics {
                    mae: 20.0,
                    p95: 80.0,
                    beta50: 84.1,
                    n: 100,
                },
                elapsed_s: 12.5,
            },
        ];
        let s = render_metrics_table("SynthDowBJ", &results);
        assert!(s.contains("SynthDowBJ"));
        assert!(s.contains("Geocoding"));
        assert!(s.contains("DLInfMA"));
        assert!(s.contains("84.1"));
        assert!(s.contains("t (s)"));
        assert!(s.contains("12.50"));
    }

    #[test]
    fn series_renders() {
        let s = render_series(
            "Fig 10(a)",
            "D (m)",
            "MAE (m)",
            &[("20".into(), 31.0), ("40".into(), 24.5)],
        );
        assert!(s.contains("Fig 10(a)"));
        assert!(s.contains("24.50"));
    }
}
