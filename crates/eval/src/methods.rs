//! The method registry: every baseline, variant and ablation row of
//! Tables II and III, runnable against an [`ExperimentWorld`].

use crate::metrics::Metrics;
use crate::world::ExperimentWorld;
use dlinfma_baselines::{
    annotation, geocloud, geocoding, max_tc, max_tc_ilc, min_dist, ClassifierKind,
    ClassifierVariant, GeoRank, PnConfig, PnMatcher, RankerKind, RankingVariant, UNetBaseline,
    UNetConfig,
};
use dlinfma_core::{
    collect_evidence, AddressSample, CandidatePool, DlInfMa, FeatureConfig, FeatureExtractor,
    LocMatcher, PoolMethod,
};
use dlinfma_detcol::OrdMap;
use dlinfma_geo::Point;
use dlinfma_pool::Pool;
use dlinfma_synth::AddressId;
use std::collections::HashMap;

/// Feature / architecture ablations of DLInfMA (Table II bottom block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Drop trip coverage (DLInfMA-nTC).
    NoTripCoverage,
    /// Drop the distance feature (DLInfMA-nD).
    NoDistance,
    /// Drop the location profile (DLInfMA-nP).
    NoProfile,
    /// Drop location commonality (DLInfMA-nLC).
    NoCommonality,
    /// Drop the address context term `U c` (DLInfMA-nA).
    NoAddressContext,
    /// Address-level instead of building-level LC (DLInfMA-LC_addr).
    AddressLevelLc,
}

impl Ablation {
    /// Name as printed in Table II.
    pub fn name(&self) -> &'static str {
        match self {
            Ablation::NoTripCoverage => "DLInfMA-nTC",
            Ablation::NoDistance => "DLInfMA-nD",
            Ablation::NoProfile => "DLInfMA-nP",
            Ablation::NoCommonality => "DLInfMA-nLC",
            Ablation::NoAddressContext => "DLInfMA-nA",
            Ablation::AddressLevelLc => "DLInfMA-LC_addr",
        }
    }
}

/// Every method evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Geocoded waybill location.
    Geocoding,
    /// Centroid of annotated locations.
    Annotation,
    /// DBSCAN biggest-cluster centroid over annotations.
    GeoCloud,
    /// Pairwise ranking over annotations.
    GeoRank,
    /// 9×9 raster CNN over annotations.
    UNetBased,
    /// Candidate nearest the geocode.
    MinDist,
    /// Candidate with maximum trip coverage.
    MaxTC,
    /// Candidate with maximum TC × 1/LC.
    MaxTcIlc,
    /// The full DLInfMA with LocMatcher.
    DlInfMa,
    /// Classification variant (GBDT / RF / MLP).
    Classifier(ClassifierKind),
    /// Pairwise-ranking variant (RkDT / RkNet).
    Ranking(RankerKind),
    /// LSTM pointer-network variant.
    Pn,
    /// Grid-merging candidate pool.
    GridPool,
    /// Feature / architecture ablation.
    Ablation(Ablation),
}

impl Method {
    /// Name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Geocoding => "Geocoding",
            Method::Annotation => "Annotation",
            Method::GeoCloud => "GeoCloud",
            Method::GeoRank => "GeoRank",
            Method::UNetBased => "UNet-based",
            Method::MinDist => "MinDist",
            Method::MaxTC => "MaxTC",
            Method::MaxTcIlc => "MaxTC-ILC",
            Method::DlInfMa => "DLInfMA",
            Method::Classifier(k) => k.name(),
            Method::Ranking(k) => k.name(),
            Method::Pn => "DLInfMA-PN",
            Method::GridPool => "DLInfMA-Grid",
            Method::Ablation(a) => a.name(),
        }
    }

    /// The nine baselines plus DLInfMA (Table II top block).
    pub fn baselines_and_main() -> Vec<Method> {
        vec![
            Method::Geocoding,
            Method::Annotation,
            Method::GeoCloud,
            Method::GeoRank,
            Method::UNetBased,
            Method::MinDist,
            Method::MaxTC,
            Method::MaxTcIlc,
            Method::DlInfMa,
        ]
    }

    /// The model variants (Table II middle block).
    pub fn variants() -> Vec<Method> {
        vec![
            Method::Classifier(ClassifierKind::Gbdt),
            Method::Classifier(ClassifierKind::RandomForest),
            Method::Classifier(ClassifierKind::Mlp),
            Method::Ranking(RankerKind::DecisionTree),
            Method::Ranking(RankerKind::RankNet),
            Method::Pn,
            Method::GridPool,
        ]
    }

    /// The feature/architecture ablations (Table II bottom block).
    pub fn ablations() -> Vec<Method> {
        vec![
            Method::Ablation(Ablation::NoTripCoverage),
            Method::Ablation(Ablation::NoDistance),
            Method::Ablation(Ablation::NoProfile),
            Method::Ablation(Ablation::NoCommonality),
            Method::Ablation(Ablation::NoAddressContext),
            Method::Ablation(Ablation::AddressLevelLc),
        ]
    }

    /// Everything in Table II.
    pub fn all() -> Vec<Method> {
        let mut v = Self::baselines_and_main();
        v.extend(Self::variants());
        v.extend(Self::ablations());
        v
    }
}

/// Result of evaluating one method on one world.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name.
    pub name: &'static str,
    /// Error metrics over the test split.
    pub metrics: Metrics,
    /// Wall-clock seconds spent fitting and evaluating the method (training
    /// plus inference over the test split; the shared pipeline preparation
    /// in [`ExperimentWorld::build`] is not attributed to any method).
    pub elapsed_s: f64,
}

/// Trains LocMatcher on the given samples and returns a closure-friendly
/// inference map over `test`. Training and the per-address inference sweep
/// both run data-parallel on `exec`.
fn locmatcher_predictions(
    cfg: dlinfma_core::LocMatcherConfig,
    train: &[AddressSample],
    val: &[AddressSample],
    test: &[AddressSample],
    pool: &CandidatePool,
    exec: &Pool,
) -> HashMap<AddressId, Point> {
    // The paper grid-searches hyperparameters per method; mirror that with
    // a small validation-selected grid around the base configuration.
    let model = LocMatcher::fit_best_pooled(&LocMatcher::experiment_grid(cfg), train, val, exec);
    let _span = dlinfma_obs::span(dlinfma_obs::stage::INFERENCE);
    exec.par_map(test, |s| {
        let idx = model.predict(s)?;
        Some((s.address, pool.candidate(s.candidates[idx]).pos))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Re-extracts samples under a different feature configuration (feature
/// ablations), preserving labels.
fn samples_with_features(
    world: &ExperimentWorld,
    fcfg: FeatureConfig,
    ids: &[AddressId],
) -> Vec<AddressSample> {
    let extractor = FeatureExtractor::new(&world.dataset, world.dlinfma.pool(), fcfg);
    let evidence = collect_evidence(&world.dataset);
    let by_addr: OrdMap<AddressId, &dlinfma_core::AddressEvidence> =
        evidence.iter().map(|e| (e.address, e)).collect();
    ids.iter()
        .filter_map(|a| {
            let e = by_addr.get(a)?;
            let mut s = extractor.sample(e);
            let truth = world.gt.get(a)?;
            let distances: Vec<f64> = s
                .candidates
                .iter()
                .map(|c| world.dlinfma.pool().candidate(*c).pos.distance(truth))
                .collect();
            s.label = distances
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .min_by(|(_, x), (_, y)| x.total_cmp(y))
                .map(|(i, _)| i);
            s.truth_distances = Some(distances);
            Some(s)
        })
        .collect()
}

/// Evaluates one method over the world's test split and returns the metrics.
pub fn evaluate(world: &ExperimentWorld, method: Method) -> MethodResult {
    let start = dlinfma_obs::Stopwatch::start();
    let errors = evaluate_errors(world, method);
    MethodResult {
        name: method.name(),
        metrics: Metrics::from_errors(&errors).expect("test split is non-empty"),
        elapsed_s: start.elapsed().as_secs_f64(),
    }
}

/// Per-address test errors of one method, ordered like `world.split.test`
/// (geocode fallback for unanswerable addresses). Exposed so figure drivers
/// can group errors, e.g. by number of deliveries (Figure 10(b)).
pub fn evaluate_errors(world: &ExperimentWorld, method: Method) -> Vec<f64> {
    let pool = world.dlinfma.pool();
    match method {
        Method::Geocoding => {
            let m = geocoding(&world.dataset);
            world.test_errors(|a| m.infer(a))
        }
        Method::Annotation => {
            let m = annotation(&world.ann);
            world.test_errors(|a| m.infer(a))
        }
        Method::GeoCloud => {
            let m = geocloud(&world.ann, dlinfma_params::D_MAX_M);
            world.test_errors(|a| m.infer(a))
        }
        Method::GeoRank => {
            let model = GeoRank::fit(&world.dataset, &world.ann, &world.split.train, &world.gt);
            world.test_errors(|a| model.infer(&world.dataset, &world.ann, a))
        }
        Method::UNetBased => {
            let model = UNetBaseline::fit(
                &world.ann,
                &world.split.train,
                &world.gt,
                &UNetConfig::default(),
            );
            world.test_errors(|a| model.infer(&world.ann, a))
        }
        Method::MinDist | Method::MaxTC | Method::MaxTcIlc => {
            let test = world.test_samples();
            let m = match method {
                Method::MinDist => min_dist(&test, pool),
                Method::MaxTC => max_tc(&test, pool),
                _ => max_tc_ilc(&test, pool),
            };
            world.test_errors(|a| m.infer(a))
        }
        Method::DlInfMa => {
            let preds = locmatcher_predictions(
                world.dlinfma.config().model,
                &world.train_samples(),
                &world.val_samples(),
                &world.test_samples(),
                pool,
                world.dlinfma.executor(),
            );
            world.test_errors(|a| preds.get(&a).copied())
        }
        Method::Classifier(kind) => {
            let model = ClassifierVariant::fit(
                &world.train_samples(),
                world.dlinfma.config().features,
                kind,
                0,
            );
            world.test_errors(|a| {
                world
                    .dlinfma
                    .sample(a)
                    .and_then(|s| model.infer_sample(s, pool))
            })
        }
        Method::Ranking(kind) => {
            let model = RankingVariant::fit(
                &world.train_samples(),
                world.dlinfma.config().features,
                kind,
                0,
            );
            world.test_errors(|a| {
                world
                    .dlinfma
                    .sample(a)
                    .and_then(|s| model.infer_sample(s, pool))
            })
        }
        Method::Pn => {
            let mut model = PnMatcher::new(PnConfig::default());
            model.train(&world.train_samples(), &world.val_samples());
            world.test_errors(|a| {
                world
                    .dlinfma
                    .sample(a)
                    .and_then(|s| model.infer_sample(s, pool))
            })
        }
        Method::GridPool => {
            let mut cfg = *world.dlinfma.config();
            cfg.pool_method = PoolMethod::Grid;
            let mut grid = DlInfMa::prepare(&world.dataset, cfg);
            grid.label_from_dataset(&world.dataset);
            grid.train(&world.split.train, &world.split.val);
            world.test_errors(|a| grid.infer(a))
        }
        Method::Ablation(ab) => {
            let base = *world.dlinfma.config();
            let (fcfg, use_ctx) = match ab {
                Ablation::NoTripCoverage => (
                    FeatureConfig {
                        use_trip_coverage: false,
                        ..base.features
                    },
                    true,
                ),
                Ablation::NoDistance => (
                    FeatureConfig {
                        use_distance: false,
                        ..base.features
                    },
                    true,
                ),
                Ablation::NoProfile => (
                    FeatureConfig {
                        use_profile: false,
                        ..base.features
                    },
                    true,
                ),
                Ablation::NoCommonality => (
                    FeatureConfig {
                        use_location_commonality: false,
                        ..base.features
                    },
                    true,
                ),
                Ablation::NoAddressContext => (base.features, false),
                Ablation::AddressLevelLc => (
                    FeatureConfig {
                        lc_address_level: true,
                        ..base.features
                    },
                    true,
                ),
            };
            let train = samples_with_features(world, fcfg, &world.split.train);
            let val = samples_with_features(world, fcfg, &world.split.val);
            let test = samples_with_features(world, fcfg, &world.split.test);
            let mut mcfg = base.model;
            mcfg.features = fcfg;
            mcfg.use_address_context = use_ctx;
            let preds =
                locmatcher_predictions(mcfg, &train, &val, &test, pool, world.dlinfma.executor());
            world.test_errors(|a| preds.get(&a).copied())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{Preset, Scale};

    #[test]
    fn method_names_are_unique() {
        let all = Method::all();
        let mut names: Vec<&str> = all.iter().map(|m| m.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
        assert_eq!(total, 9 + 7 + 6);
    }

    #[test]
    fn cheap_methods_evaluate() {
        let world = ExperimentWorld::build(Preset::DowBJ, Scale::Tiny, 0);
        for m in [
            Method::Geocoding,
            Method::Annotation,
            Method::GeoCloud,
            Method::MinDist,
            Method::MaxTC,
            Method::MaxTcIlc,
        ] {
            let r = evaluate(&world, m);
            assert!(r.metrics.mae.is_finite(), "{}", r.name);
            assert!(r.metrics.n > 0);
        }
    }

    #[test]
    fn dlinfma_beats_annotation_under_heavy_delays() {
        // Table III's key finding: annotation-based methods collapse as the
        // delay probability rises while DLInfMA stays robust. (At tiny
        // world scale with mild delays the centroid can be competitive; the
        // full Table II comparison runs at Small/Full scale in the benches.)
        let mut cfg = dlinfma_synth::world_config(Preset::DowBJ, Scale::Tiny);
        cfg.delays = dlinfma_synth::DelayConfig::sweep(0.8);
        let world = ExperimentWorld::build_from(&cfg, 1, dlinfma_core::DlInfMaConfig::fast());
        let dl = evaluate(&world, Method::DlInfMa);
        let an = evaluate(&world, Method::Annotation);
        assert!(
            dl.metrics.mae < an.metrics.mae,
            "DLInfMA {:.1} !< Annotation {:.1}",
            dl.metrics.mae,
            an.metrics.mae
        );
        assert!(
            dl.metrics.beta50 > an.metrics.beta50,
            "DLInfMA β50 {:.1} !> Annotation β50 {:.1}",
            dl.metrics.beta50,
            an.metrics.beta50
        );
    }
}
