//! Dataset statistics: Table I and the four Figure 9 distributions.

use dlinfma_core::{AddressSample, CandidatePool};
use dlinfma_detcol::OrdMap;
use dlinfma_synth::{Dataset, DeliverySpotKind};
use std::collections::HashMap;

/// Table I-style summary of one dataset.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Number of addresses with at least one delivery.
    pub n_addresses: usize,
    /// Number of delivery trips.
    pub n_trips: usize,
    /// Number of waybills.
    pub n_waybills: usize,
    /// Number of GPS fixes across all trajectories.
    pub n_gps_points: usize,
    /// Number of buildings with at least one delivered address.
    pub n_buildings: usize,
    /// Mean GPS sampling interval, seconds.
    pub mean_sampling_s: f64,
}

/// Computes the Table I summary.
pub fn dataset_stats(dataset: &Dataset) -> DatasetStats {
    let mut delivered: Vec<u32> = dataset.waybills.iter().map(|w| w.address.0).collect();
    delivered.sort_unstable();
    delivered.dedup();
    let mut buildings: Vec<u32> = delivered
        .iter()
        .map(|&a| dataset.addresses[a as usize].building.0)
        .collect();
    buildings.sort_unstable();
    buildings.dedup();
    let intervals: Vec<f64> = dataset
        .trips
        .iter()
        .filter_map(|t| t.trajectory.mean_sampling_interval())
        .collect();
    DatasetStats {
        n_addresses: delivered.len(),
        n_trips: dataset.trips.len(),
        n_waybills: dataset.waybills.len(),
        n_gps_points: dataset.total_gps_points(),
        n_buildings: buildings.len(),
        mean_sampling_s: intervals.iter().sum::<f64>() / intervals.len().max(1) as f64,
    }
}

/// Figure 9(a): distribution of the number of *distinct delivery locations*
/// per building. Returns `counts[k]` = number of buildings with `k + 1`
/// distinct locations (two locations are distinct when > 10 m apart).
pub fn building_location_distribution(dataset: &Dataset) -> Vec<usize> {
    let mut per_building: OrdMap<u32, Vec<dlinfma_geo::Point>> = OrdMap::new();
    for a in &dataset.addresses {
        // Distinctness is defined on ground-truth spots; lockers shared by
        // several addresses count once.
        let locs = per_building.entry(a.building.0).or_default();
        if !locs
            .iter()
            .any(|l| l.distance(&a.true_delivery_location) <= 10.0)
        {
            locs.push(a.true_delivery_location);
        }
        let _ = DeliverySpotKind::Doorstep; // spot kinds feed the narrative only
    }
    let max = per_building.values().map(Vec::len).max().unwrap_or(0);
    let mut counts = vec![0usize; max];
    for locs in per_building.values() {
        counts[locs.len() - 1] += 1;
    }
    counts
}

/// Fraction of buildings with more than one distinct delivery location
/// (the paper reports >22% for DowBJ and >14% for SubBJ).
pub fn multi_location_building_fraction(dataset: &Dataset) -> f64 {
    let dist = building_location_distribution(dataset);
    let total: usize = dist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let multi: usize = dist.iter().skip(1).sum();
    multi as f64 / total as f64
}

/// Figure 9(b): deliveries per address, as a sorted vector (one entry per
/// address) from which cumulative distributions are derived.
pub fn deliveries_per_address(dataset: &Dataset) -> Vec<usize> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for w in &dataset.waybills {
        *counts.entry(w.address.0).or_default() += 1;
    }
    let mut v: Vec<usize> = counts.into_values().collect();
    v.sort_unstable();
    v
}

/// Figure 9(c): stay points per trip (one entry per trip).
pub fn stays_per_trip(stays: &[dlinfma_core::TripStays]) -> Vec<usize> {
    stays.iter().map(|t| t.stays.len()).collect()
}

/// Figure 9(d): retrieved candidates per address (one entry per sample).
pub fn candidates_per_address(samples: &[AddressSample]) -> Vec<usize> {
    samples.iter().map(|s| s.candidates.len()).collect()
}

/// Mean of an integer distribution.
pub fn mean(v: &[usize]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<usize>() as f64 / v.len() as f64
}

/// Median of a *sorted* integer distribution.
pub fn median_sorted(v: &[usize]) -> usize {
    if v.is_empty() {
        0
    } else {
        v[v.len() / 2]
    }
}

/// Average number of candidates per address straight from a pool + samples.
pub fn mean_candidates(samples: &[AddressSample], _pool: &CandidatePool) -> f64 {
    mean(&candidates_per_address(samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_core::{extract_stay_points, DlInfMa, DlInfMaConfig, ExtractionConfig};
    use dlinfma_synth::{generate, Preset, Scale};

    #[test]
    fn table1_stats_are_consistent() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 0);
        let s = dataset_stats(&ds);
        assert!(s.n_addresses > 0);
        assert_eq!(s.n_trips, ds.trips.len());
        assert_eq!(s.n_waybills, ds.waybills.len());
        assert!(s.n_buildings <= s.n_addresses);
        assert!((10.0..18.0).contains(&s.mean_sampling_s));
    }

    #[test]
    fn fig9a_multi_location_buildings_exist() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 1);
        let frac = multi_location_building_fraction(&ds);
        assert!(
            frac > 0.1,
            "expected >10% multi-location buildings, got {frac:.2}"
        );
        let dist = building_location_distribution(&ds);
        assert!(!dist.is_empty());
        assert!(dist[0] > 0, "some buildings have exactly one location");
    }

    #[test]
    fn fig9b_distribution_is_sorted_and_heavy_tailed() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 2);
        let d = deliveries_per_address(&ds);
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert!(*d.last().unwrap() >= median_sorted(&d) * 2);
    }

    #[test]
    fn fig9cd_counts() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 3);
        let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
        let per_trip = stays_per_trip(&stays);
        assert_eq!(per_trip.len(), ds.trips.len());

        let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        let samples: Vec<_> = dlinfma.samples().cloned().collect();
        let per_addr = candidates_per_address(&samples);
        // At Tiny scale an address is only served by 1-2 trips, so its
        // candidate union is roughly the before-confirmation half of one
        // trip's stays; the paper's full Figure 9(d) relation (candidates
        // per address > stays per trip) emerges at larger scales and is
        // checked by the figure9 bench.
        assert!(mean(&per_addr) > 0.0);
        assert!(mean(&per_addr) >= mean(&per_trip) * 0.3);
    }
}
