//! Axis-aligned bounding boxes in the local metric frame.

use crate::point::Point;

/// An axis-aligned bounding box. `min` is the south-west corner, `max` the
/// north-east corner; both are inclusive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// South-west (minimum x and y) corner.
    pub min: Point,
    /// North-east (maximum x and y) corner.
    pub max: Point,
}

impl BBox {
    /// Creates a bounding box from two corners, swapping coordinates so the
    /// result is always well-formed.
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The tightest box containing every point, or `None` for an empty slice.
    pub fn from_points(points: &[Point]) -> Option<Self> {
        let first = *points.first()?;
        let mut bb = BBox::new(first, first);
        for p in &points[1..] {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grows the box in place so it contains `p`.
    pub fn expand(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Returns a copy grown by `margin` meters on every side.
    pub fn inflated(&self, margin: f64) -> Self {
        Self {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// True when `p` lies inside the box (boundary inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when the two boxes share any point.
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Width (east-west extent) in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (north-south extent) in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center of the box.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Minimum distance from `p` to the box (zero if `p` is inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx.hypot(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_normalizes_corners() {
        let bb = BBox::new(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(bb.min, Point::new(-2.0, -1.0));
        assert_eq!(bb.max, Point::new(5.0, 3.0));
    }

    #[test]
    fn from_points_matches_extremes() {
        let pts = [
            Point::new(1.0, 4.0),
            Point::new(-3.0, 2.0),
            Point::new(0.0, -5.0),
        ];
        let bb = BBox::from_points(&pts).unwrap();
        assert_eq!(bb.min, Point::new(-3.0, -5.0));
        assert_eq!(bb.max, Point::new(1.0, 4.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BBox::from_points(&[]).is_none());
    }

    #[test]
    fn contains_boundary() {
        let bb = BBox::new(Point::ZERO, Point::new(10.0, 10.0));
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(bb.contains(&Point::new(10.0, 10.0)));
        assert!(bb.contains(&Point::new(5.0, 5.0)));
        assert!(!bb.contains(&Point::new(10.01, 5.0)));
    }

    #[test]
    fn intersects_cases() {
        let a = BBox::new(Point::ZERO, Point::new(10.0, 10.0));
        let b = BBox::new(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
        let c = BBox::new(Point::new(11.0, 11.0), Point::new(12.0, 12.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges counts as intersecting.
        let d = BBox::new(Point::new(10.0, 0.0), Point::new(20.0, 10.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn distance_to_point_inside_is_zero() {
        let bb = BBox::new(Point::ZERO, Point::new(10.0, 10.0));
        assert_eq!(bb.distance_to_point(&Point::new(3.0, 7.0)), 0.0);
    }

    #[test]
    fn distance_to_point_outside() {
        let bb = BBox::new(Point::ZERO, Point::new(10.0, 10.0));
        assert!((bb.distance_to_point(&Point::new(13.0, 14.0)) - 5.0).abs() < 1e-12);
        assert!((bb.distance_to_point(&Point::new(-4.0, 5.0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn inflated_grows_every_side() {
        let bb = BBox::new(Point::ZERO, Point::new(2.0, 2.0)).inflated(1.0);
        assert_eq!(bb.min, Point::new(-1.0, -1.0));
        assert_eq!(bb.max, Point::new(3.0, 3.0));
    }

    proptest! {
        #[test]
        fn from_points_contains_all(
            pts in proptest::collection::vec((-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y)), 1..40)
        ) {
            let bb = BBox::from_points(&pts).unwrap();
            for p in &pts {
                prop_assert!(bb.contains(p));
            }
        }
    }
}
