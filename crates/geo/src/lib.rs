#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! Geographic primitives for the DLInfMA reproduction.
//!
//! All pipeline geometry operates on [`Point`]s in a *local metric frame*:
//! east/north offsets in meters from a dataset origin. Raw GPS fixes in
//! WGS-84 degrees are represented by [`LatLng`] and converted with a
//! [`Projection`], which is accurate to well under a meter at city scale —
//! far below the 5–15 m GPS noise the pipeline must tolerate.
//!
//! The crate also provides the spatial data structures the pipeline and the
//! baselines rely on:
//!
//! * [`GeoHash`] cells (used by the UNet-based baseline's 9×9 raster),
//! * a uniform [`GridIndex`] for radius queries over large point sets,
//! * a static [`KdTree`] for nearest-neighbour lookups,
//! * a [`BBox`] axis-aligned bounding box.

pub mod bbox;
pub mod geohash;
pub mod grid;
pub mod kdtree;
pub mod latlng;
pub mod point;

pub use bbox::BBox;
pub use geohash::GeoHash;
pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use latlng::{LatLng, Projection};
pub use point::{centroid, Point};
