//! A uniform grid index for radius queries over large planar point sets.
//!
//! The candidate-pool construction and retrieval steps repeatedly ask "which
//! stay points / candidates lie within `r` meters of here?" over tens of
//! thousands of points. A uniform grid with cell size on the order of the
//! query radius answers those in near-constant time.

use crate::bbox::BBox;
use crate::point::Point;
use std::collections::HashMap;

/// A uniform grid over the plane bucketing items by their location.
///
/// Cells are addressed by `(floor(x / cell), floor(y / cell))`, so the grid
/// is unbounded and sparse: only occupied cells allocate storage.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<(Point, T)>>,
    len: usize,
}

impl<T> GridIndex<T> {
    /// Creates an empty index with the given cell size in meters.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive, got {cell_size}"
        );
        Self {
            cell: cell_size,
            cells: HashMap::new(),
            len: 0,
        }
    }

    /// Builds an index from an iterator of located items.
    pub fn from_items(cell_size: f64, items: impl IntoIterator<Item = (Point, T)>) -> Self {
        let mut g = Self::new(cell_size);
        for (p, v) in items {
            g.insert(p, v);
        }
        g
    }

    fn key(&self, p: &Point) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// Inserts an item at a location.
    pub fn insert(&mut self, p: Point, value: T) {
        self.cells.entry(self.key(&p)).or_default().push((p, value));
        self.len += 1;
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `f` for every item within `radius` meters of `center`
    /// (boundary inclusive).
    pub fn for_each_within(&self, center: &Point, radius: f64, mut f: impl FnMut(&Point, &T)) {
        let r_cells = (radius / self.cell).ceil() as i64;
        let (cx, cy) = self.key(center);
        let r2 = radius * radius;
        for gx in (cx - r_cells)..=(cx + r_cells) {
            for gy in (cy - r_cells)..=(cy + r_cells) {
                if let Some(bucket) = self.cells.get(&(gx, gy)) {
                    for (p, v) in bucket {
                        if p.distance_sq(center) <= r2 {
                            f(p, v);
                        }
                    }
                }
            }
        }
    }

    /// Collects references to all items within `radius` meters of `center`.
    pub fn within(&self, center: &Point, radius: f64) -> Vec<(&Point, &T)> {
        let mut out = Vec::new();
        // Rebind through raw pointers is unnecessary; just collect.
        self.for_each_within_ref(center, radius, &mut out);
        out
    }

    fn for_each_within_ref<'a>(
        &'a self,
        center: &Point,
        radius: f64,
        out: &mut Vec<(&'a Point, &'a T)>,
    ) {
        let r_cells = (radius / self.cell).ceil() as i64;
        let (cx, cy) = self.key(center);
        let r2 = radius * radius;
        for gx in (cx - r_cells)..=(cx + r_cells) {
            for gy in (cy - r_cells)..=(cy + r_cells) {
                if let Some(bucket) = self.cells.get(&(gx, gy)) {
                    for (p, v) in bucket {
                        if p.distance_sq(center) <= r2 {
                            out.push((p, v));
                        }
                    }
                }
            }
        }
    }

    /// Finds the nearest item to `center`, searching outward ring by ring.
    /// Returns `None` when the index is empty.
    pub fn nearest(&self, center: &Point) -> Option<(&Point, &T, f64)> {
        if self.is_empty() {
            return None;
        }
        let (cx, cy) = self.key(center);
        let mut best: Option<(&Point, &T, f64)> = None;
        let mut ring = 0i64;
        loop {
            let mut any_cell = false;
            for gx in (cx - ring)..=(cx + ring) {
                for gy in (cy - ring)..=(cy + ring) {
                    // Only the boundary of the ring is new.
                    if ring > 0
                        && gx > cx - ring
                        && gx < cx + ring
                        && gy > cy - ring
                        && gy < cy + ring
                    {
                        continue;
                    }
                    if let Some(bucket) = self.cells.get(&(gx, gy)) {
                        any_cell = true;
                        for (p, v) in bucket {
                            let d = p.distance(center);
                            if best.is_none_or(|(_, _, bd)| d < bd) {
                                best = Some((p, v, d));
                            }
                        }
                    }
                }
            }
            // A match found at ring k could still be beaten by a point in ring
            // k+1 only if best distance exceeds ring*cell; expand until safe.
            if let Some((_, _, bd)) = best {
                if bd <= ring as f64 * self.cell {
                    return best;
                }
            }
            ring += 1;
            // Termination: once the ring covers the whole occupied area and
            // we have a best, return it.
            if ring as f64 * self.cell > self.max_extent() + self.cell {
                return best;
            }
            let _ = any_cell;
        }
    }

    fn max_extent(&self) -> f64 {
        let max_abs = self
            .cells
            .keys()
            .map(|(x, y)| x.abs().max(y.abs()))
            .max()
            .unwrap_or(0);
        (max_abs + 1) as f64 * self.cell * 2.0
    }

    /// Iterates over all stored items in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Point, &T)> {
        // lint: allow(L9, cells stay hashed for O1 ring lookups on the retrieval hot path; every consumer folds order-insensitively - see bounds)
        self.cells.values().flatten().map(|(p, v)| (p, v))
    }

    /// Bounding box of all stored points, or `None` when empty.
    pub fn bounds(&self) -> Option<BBox> {
        let mut it = self.iter();
        let (first, _) = it.next()?;
        let mut bb = BBox::new(*first, *first);
        for (p, _) in it {
            bb.expand(p);
        }
        Some(bb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_panics() {
        let _ = GridIndex::<u32>::new(0.0);
    }

    #[test]
    fn within_finds_exactly_the_close_points() {
        let mut g = GridIndex::new(10.0);
        g.insert(Point::new(0.0, 0.0), 0usize);
        g.insert(Point::new(5.0, 0.0), 1usize);
        g.insert(Point::new(25.0, 0.0), 2usize);
        let found: Vec<usize> = g
            .within(&Point::ZERO, 10.0)
            .into_iter()
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(found.len(), 2);
        assert!(found.contains(&0) && found.contains(&1));
    }

    #[test]
    fn within_radius_boundary_inclusive() {
        let mut g = GridIndex::new(7.0);
        g.insert(Point::new(10.0, 0.0), ());
        assert_eq!(g.within(&Point::ZERO, 10.0).len(), 1);
        assert_eq!(g.within(&Point::ZERO, 9.999).len(), 0);
    }

    #[test]
    fn nearest_empty_is_none() {
        let g = GridIndex::<()>::new(5.0);
        assert!(g.nearest(&Point::ZERO).is_none());
    }

    #[test]
    fn nearest_single_item() {
        let mut g = GridIndex::new(5.0);
        g.insert(Point::new(100.0, 100.0), 7usize);
        let (_, v, d) = g.nearest(&Point::ZERO).unwrap();
        assert_eq!(*v, 7);
        assert!((d - 100.0 * std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(42);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(-500.0..500.0), rng.gen_range(-500.0..500.0)))
            .collect();
        let g = GridIndex::from_items(25.0, pts.iter().enumerate().map(|(i, p)| (*p, i)));
        for _ in 0..50 {
            let q = Point::new(rng.gen_range(-600.0..600.0), rng.gen_range(-600.0..600.0));
            let (_, _, d) = g.nearest(&q).unwrap();
            let best = pts.iter().map(|p| p.distance(&q)).fold(f64::MAX, f64::min);
            assert!((d - best).abs() < 1e-9, "grid {d} vs scan {best}");
        }
    }

    #[test]
    fn len_and_iter() {
        let mut g = GridIndex::new(1.0);
        assert!(g.is_empty());
        for i in 0..10 {
            g.insert(Point::new(i as f64, 0.0), i);
        }
        assert_eq!(g.len(), 10);
        assert_eq!(g.iter().count(), 10);
    }

    proptest! {
        #[test]
        fn within_matches_linear_scan(
            pts in proptest::collection::vec((-200.0..200.0f64, -200.0..200.0f64), 0..60),
            qx in -250.0..250.0f64, qy in -250.0..250.0f64,
            r in 1.0..150.0f64,
            cell in 1.0..60.0f64,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let g = GridIndex::from_items(cell, points.iter().enumerate().map(|(i, p)| (*p, i)));
            let q = Point::new(qx, qy);
            let mut got: Vec<usize> = g.within(&q, r).into_iter().map(|(_, v)| *v).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| p.distance(&q) <= r)
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
