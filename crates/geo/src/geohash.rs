//! GeoHash encoding and decoding.
//!
//! The UNet-based baseline of the paper rasterizes annotated locations onto a
//! 9×9 grid of GeoHash-8 cells (≈ 32 m × 19 m at Beijing's latitude). This
//! module implements standard base-32 GeoHash with cell arithmetic so the
//! baseline can locate a center cell and enumerate its neighbourhood.

use crate::latlng::LatLng;

use std::fmt;

const BASE32: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

fn base32_index(c: u8) -> Option<u32> {
    BASE32
        .iter()
        .position(|&b| b == c.to_ascii_lowercase())
        .map(|i| i as u32)
}

/// A GeoHash cell, stored as interleaved bit indices plus a precision.
///
/// `lat_bits`/`lng_bits` hold the cell's row/column index at the given
/// precision, which makes neighbour arithmetic (needed for the 9×9 raster)
/// exact instead of string-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeoHash {
    lat_bits: u64,
    lng_bits: u64,
    /// Number of base-32 characters (1..=12).
    precision: u8,
}

impl GeoHash {
    /// Encodes a coordinate at the given precision (number of characters,
    /// clamped to `1..=12`).
    pub fn encode(ll: &LatLng, precision: u8) -> Self {
        let precision = precision.clamp(1, 12);
        let total_bits = precision as u32 * 5;
        let lng_nbits = total_bits.div_ceil(2);
        let lat_nbits = total_bits / 2;

        let lng_frac = (ll.lng + 180.0) / 360.0;
        let lat_frac = (ll.lat + 90.0) / 180.0;
        let lng_bits = frac_to_bits(lng_frac, lng_nbits);
        let lat_bits = frac_to_bits(lat_frac, lat_nbits);
        Self {
            lat_bits,
            lng_bits,
            precision,
        }
    }

    /// Parses a base-32 GeoHash string. Returns `None` on invalid characters
    /// or unsupported lengths.
    pub fn from_str_hash(s: &str) -> Option<Self> {
        if s.is_empty() || s.len() > 12 {
            return None;
        }
        let mut lat_bits: u64 = 0;
        let mut lng_bits: u64 = 0;
        let mut even = true; // GeoHash interleaving starts with longitude.
        for &c in s.as_bytes() {
            let idx = base32_index(c)?;
            for shift in (0..5).rev() {
                let bit = (idx >> shift) & 1;
                if even {
                    lng_bits = (lng_bits << 1) | bit as u64;
                } else {
                    lat_bits = (lat_bits << 1) | bit as u64;
                }
                even = !even;
            }
        }
        Some(Self {
            lat_bits,
            lng_bits,
            precision: s.len() as u8,
        })
    }

    /// Number of base-32 characters.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Renders the base-32 string.
    pub fn to_string_hash(&self) -> String {
        let total_bits = self.precision as u32 * 5;
        let lng_nbits = total_bits.div_ceil(2);
        let lat_nbits = total_bits / 2;
        let mut chars = String::with_capacity(self.precision as usize);
        let mut acc: u32 = 0;
        let mut nacc = 0;
        let mut lng_i = lng_nbits;
        let mut lat_i = lat_nbits;
        for i in 0..total_bits {
            let bit = if i % 2 == 0 {
                lng_i -= 1;
                (self.lng_bits >> lng_i) & 1
            } else {
                lat_i -= 1;
                (self.lat_bits >> lat_i) & 1
            };
            acc = (acc << 1) | bit as u32;
            nacc += 1;
            if nacc == 5 {
                chars.push(BASE32[acc as usize] as char);
                acc = 0;
                nacc = 0;
            }
        }
        chars
    }

    /// The south-west corner and extent of the cell, as
    /// `(min_lat, min_lng, lat_size, lng_size)` in degrees.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        let total_bits = self.precision as u32 * 5;
        let lng_nbits = total_bits.div_ceil(2);
        let lat_nbits = total_bits / 2;
        let lng_size = 360.0 / (1u64 << lng_nbits) as f64;
        let lat_size = 180.0 / (1u64 << lat_nbits) as f64;
        let min_lng = -180.0 + self.lng_bits as f64 * lng_size;
        let min_lat = -90.0 + self.lat_bits as f64 * lat_size;
        (min_lat, min_lng, lat_size, lng_size)
    }

    /// Center of the cell.
    pub fn center(&self) -> LatLng {
        let (min_lat, min_lng, lat_size, lng_size) = self.bounds();
        LatLng::new(min_lat + lat_size / 2.0, min_lng + lng_size / 2.0)
    }

    /// The cell `d_row` rows north and `d_col` columns east of this one,
    /// wrapping at the antimeridian and clamping at the poles.
    pub fn neighbor(&self, d_row: i64, d_col: i64) -> GeoHash {
        let total_bits = self.precision as u32 * 5;
        let lng_nbits = total_bits.div_ceil(2);
        let lat_nbits = total_bits / 2;
        let lng_cells = 1u64 << lng_nbits;
        let lat_cells = 1u64 << lat_nbits;
        let lng = (self.lng_bits as i64 + d_col).rem_euclid(lng_cells as i64) as u64;
        let lat = (self.lat_bits as i64 + d_row).clamp(0, lat_cells as i64 - 1) as u64;
        GeoHash {
            lat_bits: lat,
            lng_bits: lng,
            precision: self.precision,
        }
    }

    /// Row/column index of the cell at its precision (row 0 at the south pole,
    /// column 0 at the antimeridian).
    pub fn cell_index(&self) -> (u64, u64) {
        (self.lat_bits, self.lng_bits)
    }
}

impl fmt::Display for GeoHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_hash())
    }
}

fn frac_to_bits(frac: f64, nbits: u32) -> u64 {
    let cells = (1u64 << nbits) as f64;
    let idx = (frac * cells).floor();
    (idx.max(0.0) as u64).min((1u64 << nbits) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encodes_known_value() {
        // Reference value from the original geohash.org implementation.
        let gh = GeoHash::encode(&LatLng::new(57.64911, 10.40744), 11);
        assert_eq!(gh.to_string_hash(), "u4pruydqqvj");
    }

    #[test]
    fn parse_roundtrip() {
        let gh = GeoHash::from_str_hash("wx4g0ec1").unwrap();
        assert_eq!(gh.to_string_hash(), "wx4g0ec1");
        assert_eq!(gh.precision(), 8);
    }

    #[test]
    fn parse_rejects_invalid() {
        assert!(GeoHash::from_str_hash("").is_none());
        assert!(GeoHash::from_str_hash("abcai").is_none()); // 'a' and 'i' not in alphabet
        assert!(GeoHash::from_str_hash("0123456789012").is_none()); // too long
    }

    #[test]
    fn center_within_bounds() {
        let ll = LatLng::new(39.9042, 116.4074);
        let gh = GeoHash::encode(&ll, 8);
        let c = gh.center();
        let (min_lat, min_lng, lat_size, lng_size) = gh.bounds();
        assert!(c.lat > min_lat && c.lat < min_lat + lat_size);
        assert!(c.lng > min_lng && c.lng < min_lng + lng_size);
        // Original point must fall inside its own cell.
        assert!(ll.lat >= min_lat && ll.lat < min_lat + lat_size);
        assert!(ll.lng >= min_lng && ll.lng < min_lng + lng_size);
    }

    #[test]
    fn geohash8_cell_size_near_beijing() {
        let gh = GeoHash::encode(&LatLng::new(39.9, 116.4), 8);
        let (min_lat, min_lng, lat_size, lng_size) = gh.bounds();
        let sw = LatLng::new(min_lat, min_lng);
        let se = LatLng::new(min_lat, min_lng + lng_size);
        let nw = LatLng::new(min_lat + lat_size, min_lng);
        let w = sw.haversine(&se);
        let h = sw.haversine(&nw);
        // Paper: "resolution GeoHash 8 (about 32m x 19m)".
        assert!((25.0..40.0).contains(&w), "width {w}");
        assert!((15.0..25.0).contains(&h), "height {h}");
    }

    #[test]
    fn neighbor_moves_one_cell() {
        let gh = GeoHash::encode(&LatLng::new(39.9, 116.4), 8);
        let east = gh.neighbor(0, 1);
        let (r0, c0) = gh.cell_index();
        let (r1, c1) = east.cell_index();
        assert_eq!(r0, r1);
        assert_eq!(c0 + 1, c1);
        let back = east.neighbor(0, -1);
        assert_eq!(back, gh);
    }

    #[test]
    fn neighbor_zero_is_identity() {
        let gh = GeoHash::encode(&LatLng::new(39.9, 116.4), 8);
        assert_eq!(gh.neighbor(0, 0), gh);
    }

    proptest! {
        #[test]
        fn string_roundtrip(lat in -85.0..85.0f64, lng in -179.0..179.0f64, prec in 1u8..=12) {
            let gh = GeoHash::encode(&LatLng::new(lat, lng), prec);
            let s = gh.to_string_hash();
            prop_assert_eq!(s.len(), prec as usize);
            let parsed = GeoHash::from_str_hash(&s).unwrap();
            prop_assert_eq!(parsed, gh);
        }

        #[test]
        fn point_in_own_cell(lat in -85.0..85.0f64, lng in -179.0..179.0f64) {
            let gh = GeoHash::encode(&LatLng::new(lat, lng), 8);
            let (min_lat, min_lng, lat_size, lng_size) = gh.bounds();
            prop_assert!(lat >= min_lat && lat < min_lat + lat_size + 1e-12);
            prop_assert!(lng >= min_lng && lng < min_lng + lng_size + 1e-12);
        }

        #[test]
        fn neighbor_grid_consistent(lat in -60.0..60.0f64, lng in -170.0..170.0f64, dr in -4i64..=4, dc in -4i64..=4) {
            let gh = GeoHash::encode(&LatLng::new(lat, lng), 8);
            let n = gh.neighbor(dr, dc);
            let back = n.neighbor(-dr, -dc);
            prop_assert_eq!(back, gh);
        }
    }
}
