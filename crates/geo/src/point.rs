//! Planar points in the local metric frame.
use std::ops::{Add, Div, Mul, Sub};
/// A point in the local metric frame: `x` meters east and `y` meters north
/// of the dataset origin.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Meters east of the origin.
    pub x: f64,
    /// Meters north of the origin.
    pub y: f64,
}
impl Point {
    /// Creates a point from east/north offsets in meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }
    /// The origin of the local frame.
    pub const ZERO: Point = Point { x: 0.0, y: 0.0 };
    /// Euclidean distance to `other` in meters.
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
    /// Squared Euclidean distance, cheaper when only comparisons are needed.
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
    /// Linear interpolation: returns the point a fraction `t` of the way from
    /// `self` to `other` (`t = 0` is `self`, `t = 1` is `other`).
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
    /// Euclidean norm of the point treated as a vector from the origin.
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }
    /// Returns true when both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}
impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}
impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}
impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}
impl Div<f64> for Point {
    type Output = Point;
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}
/// Spatial centroid (arithmetic mean) of a non-empty set of points.
///
/// Returns `None` for an empty slice; the candidate-pool code treats an empty
/// cluster as a logic error upstream.
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let mut sum = Point::ZERO;
    for p in points {
        sum = sum + *p;
    }
    Some(sum / points.len() as f64)
}
#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }
    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(12.5, -7.25);
        assert_eq!(p.distance(&p), 0.0);
    }
    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert_eq!(mid, Point::new(5.0, -10.0));
    }
    #[test]
    fn centroid_of_empty_is_none() {
        assert!(centroid(&[]).is_none());
    }
    #[test]
    fn centroid_of_single_point_is_itself() {
        let p = Point::new(1.0, 2.0);
        assert_eq!(centroid(&[p]), Some(p));
    }
    #[test]
    fn centroid_of_square_is_center() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c = centroid(&pts).unwrap();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }
    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
    }
    fn arb_point() -> impl Strategy<Value = Point> {
        (-1e6..1e6f64, -1e6..1e6f64).prop_map(|(x, y)| Point::new(x, y))
    }
    proptest! {
        #[test]
        fn distance_symmetry(a in arb_point(), b in arb_point()) {
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
        }
        #[test]
        fn distance_nonnegative(a in arb_point(), b in arb_point()) {
            prop_assert!(a.distance(&b) >= 0.0);
        }
        #[test]
        fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-6);
        }
        #[test]
        fn centroid_within_bbox(pts in proptest::collection::vec(arb_point(), 1..50)) {
            let c = centroid(&pts).unwrap();
            let (min_x, max_x) = pts.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| (lo.min(p.x), hi.max(p.x)));
            let (min_y, max_y) = pts.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| (lo.min(p.y), hi.max(p.y)));
            prop_assert!(c.x >= min_x - 1e-6 && c.x <= max_x + 1e-6);
            prop_assert!(c.y >= min_y - 1e-6 && c.y <= max_y + 1e-6);
        }
        #[test]
        fn centroid_translation_equivariant(pts in proptest::collection::vec(arb_point(), 1..20), dx in -1e3..1e3f64, dy in -1e3..1e3f64) {
            let shift = Point::new(dx, dy);
            let shifted: Vec<Point> = pts.iter().map(|p| *p + shift).collect();
            let c0 = centroid(&pts).unwrap();
            let c1 = centroid(&shifted).unwrap();
            prop_assert!((c1.x - (c0.x + dx)).abs() < 1e-6);
            prop_assert!((c1.y - (c0.y + dy)).abs() < 1e-6);
        }
    }
}
