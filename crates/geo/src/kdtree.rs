//! A static 2-d tree for nearest-neighbour queries.
//!
//! Used where the query set is built once and queried many times, e.g.
//! snapping ground-truth delivery locations to their nearest location
//! candidate when labelling training data.

use crate::point::Point;

/// A balanced, immutable k-d tree over `(Point, T)` pairs.
#[derive(Debug, Clone)]
pub struct KdTree<T> {
    nodes: Vec<Node<T>>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node<T> {
    point: Point,
    value: T,
    left: Option<usize>,
    right: Option<usize>,
    axis: u8,
}

impl<T> KdTree<T> {
    /// Builds a balanced tree by recursive median splitting.
    pub fn build(items: Vec<(Point, T)>) -> Self {
        let mut tree = KdTree {
            nodes: Vec::with_capacity(items.len()),
            root: None,
        };
        let mut items = items;
        tree.root = tree.build_rec(&mut items, 0);
        tree
    }

    fn build_rec(&mut self, items: &mut Vec<(Point, T)>, depth: u8) -> Option<usize> {
        if items.is_empty() {
            return None;
        }
        let axis = depth % 2;
        let mid = items.len() / 2;
        items.select_nth_unstable_by(mid, |a, b| {
            let (ka, kb) = if axis == 0 {
                (a.0.x, b.0.x)
            } else {
                (a.0.y, b.0.y)
            };
            ka.total_cmp(&kb)
        });
        let mut right_items: Vec<(Point, T)> = items.split_off(mid + 1);
        let (point, value) = items.pop()?;
        let left = self.build_rec(items, depth + 1);
        let right = self.build_rec(&mut right_items, depth + 1);
        let idx = self.nodes.len();
        self.nodes.push(Node {
            point,
            value,
            left,
            right,
            axis,
        });
        Some(idx)
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nearest item to `query`, or `None` when empty.
    pub fn nearest(&self, query: &Point) -> Option<(&Point, &T, f64)> {
        let root = self.root?;
        let mut best = (root, self.nodes[root].point.distance_sq(query));
        self.nearest_rec(root, query, &mut best);
        let node = &self.nodes[best.0];
        Some((&node.point, &node.value, best.1.sqrt()))
    }

    fn nearest_rec(&self, idx: usize, query: &Point, best: &mut (usize, f64)) {
        let node = &self.nodes[idx];
        let d2 = node.point.distance_sq(query);
        if d2 < best.1 {
            *best = (idx, d2);
        }
        let (qk, nk) = if node.axis == 0 {
            (query.x, node.point.x)
        } else {
            (query.y, node.point.y)
        };
        let (near, far) = if qk < nk {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, query, best);
        }
        let plane = qk - nk;
        if plane * plane < best.1 {
            if let Some(f) = far {
                self.nearest_rec(f, query, best);
            }
        }
    }

    /// All items within `radius` of `query`.
    pub fn within(&self, query: &Point, radius: f64) -> Vec<(&Point, &T)> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.within_rec(root, query, radius, radius * radius, &mut out);
        }
        out
    }

    fn within_rec<'a>(
        &'a self,
        idx: usize,
        query: &Point,
        radius: f64,
        r2: f64,
        out: &mut Vec<(&'a Point, &'a T)>,
    ) {
        let node = &self.nodes[idx];
        if node.point.distance_sq(query) <= r2 {
            out.push((&node.point, &node.value));
        }
        let (qk, nk) = if node.axis == 0 {
            (query.x, node.point.x)
        } else {
            (query.y, node.point.y)
        };
        if qk - radius <= nk {
            if let Some(l) = node.left {
                self.within_rec(l, query, radius, r2, out);
            }
        }
        if qk + radius >= nk {
            if let Some(r) = node.right {
                self.within_rec(r, query, radius, r2, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn empty_tree() {
        let t = KdTree::<u8>::build(vec![]);
        assert!(t.is_empty());
        assert!(t.nearest(&Point::ZERO).is_none());
        assert!(t.within(&Point::ZERO, 100.0).is_empty());
    }

    #[test]
    fn single_node() {
        let t = KdTree::build(vec![(Point::new(1.0, 1.0), "a")]);
        let (p, v, d) = t.nearest(&Point::ZERO).unwrap();
        assert_eq!(*p, Point::new(1.0, 1.0));
        assert_eq!(*v, "a");
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn nearest_matches_linear_scan_randomized() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<(Point, usize)> = (0..500)
            .map(|i| {
                (
                    Point::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3)),
                    i,
                )
            })
            .collect();
        let tree = KdTree::build(pts.clone());
        assert_eq!(tree.len(), 500);
        for _ in 0..100 {
            let q = Point::new(rng.gen_range(-1.2e3..1.2e3), rng.gen_range(-1.2e3..1.2e3));
            let (_, _, d) = tree.nearest(&q).unwrap();
            let best = pts
                .iter()
                .map(|(p, _)| p.distance(&q))
                .fold(f64::MAX, f64::min);
            assert!((d - best).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_points_are_kept() {
        let p = Point::new(3.0, 3.0);
        let t = KdTree::build(vec![(p, 1), (p, 2), (p, 3)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.within(&p, 0.0).len(), 3);
    }

    proptest! {
        #[test]
        fn within_matches_linear_scan(
            pts in proptest::collection::vec((-300.0..300.0f64, -300.0..300.0f64), 0..80),
            qx in -350.0..350.0f64, qy in -350.0..350.0f64, r in 0.0..250.0f64,
        ) {
            let items: Vec<(Point, usize)> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (Point::new(x, y), i))
                .collect();
            let tree = KdTree::build(items.clone());
            let q = Point::new(qx, qy);
            let mut got: Vec<usize> = tree.within(&q, r).into_iter().map(|(_, v)| *v).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(p, _)| p.distance(&q) <= r)
                .map(|(_, i)| *i)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn nearest_never_beaten_by_scan(
            pts in proptest::collection::vec((-300.0..300.0f64, -300.0..300.0f64), 1..80),
            qx in -350.0..350.0f64, qy in -350.0..350.0f64,
        ) {
            let items: Vec<(Point, usize)> = pts
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (Point::new(x, y), i))
                .collect();
            let tree = KdTree::build(items.clone());
            let q = Point::new(qx, qy);
            let (_, _, d) = tree.nearest(&q).unwrap();
            let best = items.iter().map(|(p, _)| p.distance(&q)).fold(f64::MAX, f64::min);
            prop_assert!((d - best).abs() < 1e-9);
        }
    }
}
