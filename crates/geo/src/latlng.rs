//! WGS-84 coordinates and the local metric projection.

use crate::point::Point;

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 coordinate in decimal degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatLng {
    /// Latitude in degrees, positive north. Valid range `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east. Valid range `[-180, 180)`.
    pub lng: f64,
}

impl LatLng {
    /// Creates a coordinate. Does not normalize; callers keep values in range.
    pub const fn new(lat: f64, lng: f64) -> Self {
        Self { lat, lng }
    }

    /// Great-circle distance to `other` in meters (haversine formula).
    pub fn haversine(&self, other: &LatLng) -> f64 {
        let (lat1, lng1) = (self.lat.to_radians(), self.lng.to_radians());
        let (lat2, lng2) = (other.lat.to_radians(), other.lng.to_radians());
        let dlat = lat2 - lat1;
        let dlng = lng2 - lng1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }
}

/// An equirectangular projection centered on a reference coordinate.
///
/// Maps WGS-84 coordinates into the local metric frame used by the rest of
/// the pipeline. At city scale (≤ 50 km from the origin) the distortion
/// relative to the haversine distance is below 0.1%, i.e. centimeters —
/// negligible next to GPS noise.
#[derive(Debug, Clone, Copy)]
pub struct Projection {
    origin: LatLng,
    cos_lat: f64,
}

impl Projection {
    /// Creates a projection centered at `origin`.
    pub fn new(origin: LatLng) -> Self {
        Self {
            origin,
            cos_lat: origin.lat.to_radians().cos(),
        }
    }

    /// The reference coordinate this projection is centered on.
    pub fn origin(&self) -> LatLng {
        self.origin
    }

    /// Projects a WGS-84 coordinate to local east/north meters.
    pub fn project(&self, ll: &LatLng) -> Point {
        let x = (ll.lng - self.origin.lng).to_radians() * self.cos_lat * EARTH_RADIUS_M;
        let y = (ll.lat - self.origin.lat).to_radians() * EARTH_RADIUS_M;
        Point::new(x, y)
    }

    /// Inverse of [`Projection::project`].
    pub fn unproject(&self, p: &Point) -> LatLng {
        let lat = self.origin.lat + (p.y / EARTH_RADIUS_M).to_degrees();
        let lng = self.origin.lng + (p.x / (EARTH_RADIUS_M * self.cos_lat)).to_degrees();
        LatLng::new(lat, lng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const BEIJING: LatLng = LatLng::new(39.9042, 116.4074);

    #[test]
    fn haversine_zero_for_same_point() {
        assert_eq!(BEIJING.haversine(&BEIJING), 0.0);
    }

    #[test]
    fn haversine_known_distance() {
        // Beijing -> Shanghai is roughly 1,070 km.
        let shanghai = LatLng::new(31.2304, 121.4737);
        let d = BEIJING.haversine(&shanghai);
        assert!((1.0e6..1.15e6).contains(&d), "got {d}");
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = LatLng::new(40.0, 116.0);
        let b = LatLng::new(41.0, 116.0);
        let d = a.haversine(&b);
        assert!((110_000.0..112_500.0).contains(&d), "got {d}");
    }

    #[test]
    fn projection_roundtrip_is_exact_enough() {
        let proj = Projection::new(BEIJING);
        let ll = LatLng::new(39.95, 116.52);
        let back = proj.unproject(&proj.project(&ll));
        assert!((back.lat - ll.lat).abs() < 1e-9);
        assert!((back.lng - ll.lng).abs() < 1e-9);
    }

    #[test]
    fn projected_distance_matches_haversine_at_city_scale() {
        let proj = Projection::new(BEIJING);
        let a = LatLng::new(39.93, 116.38);
        let b = LatLng::new(39.88, 116.45);
        let planar = proj.project(&a).distance(&proj.project(&b));
        let sphere = a.haversine(&b);
        let rel = (planar - sphere).abs() / sphere;
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn origin_projects_to_zero() {
        let proj = Projection::new(BEIJING);
        let p = proj.project(&BEIJING);
        assert!(p.norm() < 1e-9);
    }

    proptest! {
        #[test]
        fn roundtrip_anywhere_near_origin(dlat in -0.3..0.3f64, dlng in -0.3..0.3f64) {
            let proj = Projection::new(BEIJING);
            let ll = LatLng::new(BEIJING.lat + dlat, BEIJING.lng + dlng);
            let back = proj.unproject(&proj.project(&ll));
            prop_assert!((back.lat - ll.lat).abs() < 1e-9);
            prop_assert!((back.lng - ll.lng).abs() < 1e-9);
        }

        #[test]
        fn haversine_symmetric(dlat in -0.5..0.5f64, dlng in -0.5..0.5f64) {
            let other = LatLng::new(BEIJING.lat + dlat, BEIJING.lng + dlng);
            let d1 = BEIJING.haversine(&other);
            let d2 = other.haversine(&BEIJING);
            prop_assert!((d1 - d2).abs() < 1e-6);
        }

        #[test]
        fn haversine_triangle_inequality(
            (dlat1, dlng1) in (-0.5..0.5f64, -0.5..0.5f64),
            (dlat2, dlng2) in (-0.5..0.5f64, -0.5..0.5f64),
        ) {
            let a = BEIJING;
            let b = LatLng::new(BEIJING.lat + dlat1, BEIJING.lng + dlng1);
            let c = LatLng::new(BEIJING.lat + dlat2, BEIJING.lng + dlng2);
            let (ab, bc, ac) = (a.haversine(&b), b.haversine(&c), a.haversine(&c));
            prop_assert!(ac <= ab + bc + 1e-6, "{ac} > {ab} + {bc}");
        }

        #[test]
        fn projection_agrees_with_haversine_under_50km(
            (dlat1, dlng1) in (-0.3..0.3f64, -0.35..0.35f64),
            (dlat2, dlng2) in (-0.3..0.3f64, -0.35..0.35f64),
        ) {
            // Both endpoints stay within ~45 km of the projection origin.
            // The dominant distortion is the fixed cos(origin.lat) scale
            // applied to east-west spans at latitudes 0.3 deg off the
            // origin: cos(40.2)/cos(39.9) - 1 is about 0.45%, so a 1%
            // relative bound holds with margin while still catching a
            // broken projection (wrong axis, degrees-vs-radians, missing
            // cos factor are all tens of percent off). The absolute slack
            // covers near-coincident pairs where the relative error is
            // ill-conditioned.
            let proj = Projection::new(BEIJING);
            let a = LatLng::new(BEIJING.lat + dlat1, BEIJING.lng + dlng1);
            let b = LatLng::new(BEIJING.lat + dlat2, BEIJING.lng + dlng2);
            let planar = proj.project(&a).distance(&proj.project(&b));
            let sphere = a.haversine(&b);
            prop_assert!(
                (planar - sphere).abs() < 1e-2 * sphere + 0.5,
                "planar {planar} vs haversine {sphere}"
            );
        }
    }
}
