//! The autograd tape.
//!
//! A [`Graph`] records every forward operation as a node; [`Graph::backward`]
//! replays the tape in reverse, accumulating gradients. Each training step
//! builds a fresh graph — the models here are small enough that the
//! simplicity (no retained-graph lifetimes, no interior mutability) is worth
//! the per-step allocation.
//!
//! Every operation's gradient is validated against central finite
//! differences in this crate's test suite (see `gradcheck`).

use crate::optim::ParamId;
use crate::tensor::Tensor;
use rand::Rng;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    Leaf,
    /// Elementwise sum of two same-shaped tensors.
    Add,
    /// Elementwise difference.
    Sub,
    /// Elementwise (Hadamard) product.
    Mul,
    /// Multiplication by a constant.
    Scale(f32),
    /// `[n,d] + [d]` (or `[1,d]`) broadcast over rows.
    AddBiasRows,
    /// 2-D matrix product.
    Matmul,
    /// 2-D transpose.
    Transpose,
    Tanh,
    Relu,
    Sigmoid,
    /// Row-wise softmax of a 2-D tensor; node value caches the output.
    SoftmaxRows,
    /// Row-wise layer normalization; parents are `(x, gamma, beta)`.
    LayerNorm {
        xhat: Tensor,
        inv_std: Vec<f32>,
    },
    /// Column range `[from, to)` of a 2-D tensor.
    ColSlice {
        from: usize,
        to: usize,
    },
    /// Horizontal concatenation of 2-D tensors with equal row counts.
    ConcatCols {
        widths: Vec<usize>,
    },
    /// Concatenation of 1-D tensors.
    Concat1d {
        lens: Vec<usize>,
    },
    /// Stacks `n` 1-D tensors of length `d` into `[n,d]`.
    StackRows {
        dim: usize,
    },
    /// Row `i` of a 2-D tensor as `[1,d]`.
    RowSlice {
        row: usize,
    },
    /// Shape change over the same elements.
    Reshape {
        parent_shape: Vec<usize>,
    },
    /// Sum of all elements, shape `[1]`.
    Sum,
    /// Mean of all elements, shape `[1]`.
    Mean,
    /// Inverted-dropout mask applied at train time.
    Dropout {
        mask: Tensor,
    },
    /// Row `index` of an embedding table.
    EmbeddingRow {
        index: usize,
    },
    /// Cross-entropy of 1-D logits against a target index; caches softmax.
    SoftmaxCe1d {
        target: usize,
        probs: Tensor,
    },
    /// Cross-entropy of 1-D logits against a soft target distribution.
    SoftmaxCeSoft {
        target: Tensor,
        probs: Tensor,
    },
    /// 2-D convolution: parents `(input [ci,h,w], kernel [co,ci,kh,kw],
    /// bias [co])`, stride 1, symmetric zero padding.
    Conv2d {
        pad: usize,
    },
}

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    op: Op,
    needs_grad: bool,
}

/// Gradients produced by [`Graph::backward`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `var`, if it participated.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }
}

/// A forward tape; see the module docs.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    params: Vec<(ParamId, usize)>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, value: Tensor, parents: Vec<usize>, op: Op) -> Var {
        let needs_grad = parents.iter().any(|&p| self.nodes[p].needs_grad);
        self.nodes.push(Node {
            value,
            parents,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    /// A leaf that does not require gradients (model inputs).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.nodes.push(Node {
            value,
            parents: vec![],
            op: Op::Leaf,
            needs_grad: false,
        });
        Var(self.nodes.len() - 1)
    }

    /// A leaf bound to an optimizer parameter; gradients flow to it.
    pub fn param(&mut self, id: ParamId, value: Tensor) -> Var {
        self.nodes.push(Node {
            value,
            parents: vec![],
            op: Op::Leaf,
            needs_grad: true,
        });
        let var = Var(self.nodes.len() - 1);
        self.params.push((id, var.0));
        var
    }

    /// The current value of a node.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// Elementwise sum; shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x + y);
        self.push(v, vec![a.0, b.0], Op::Add)
    }

    /// Elementwise difference; shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x - y);
        self.push(v, vec![a.0, b.0], Op::Sub)
    }

    /// Elementwise product; shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x * y);
        self.push(v, vec![a.0, b.0], Op::Mul)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * c);
        self.push(v, vec![a.0], Op::Scale(c))
    }

    /// Adds a `[d]` or `[1,d]` bias to every row of a `[n,d]` tensor.
    pub fn add_bias_rows(&mut self, a: Var, bias: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        let (n, d) = (av.rows(), av.cols());
        assert_eq!(bv.numel(), d, "bias length {} != cols {d}", bv.numel());
        let mut out = av.data().to_vec();
        for i in 0..n {
            for j in 0..d {
                out[i * d + j] += bv.data()[j];
            }
        }
        self.push(
            Tensor::new(vec![n, d], out),
            vec![a.0, bias.0],
            Op::AddBiasRows,
        )
    }

    /// 2-D matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, vec![a.0, b.0], Op::Matmul)
    }

    /// 2-D transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transposed();
        self.push(v, vec![a.0], Op::Transpose)
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        self.push(v, vec![a.0], Op::Tanh)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, vec![a.0], Op::Relu)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, vec![a.0], Op::Sigmoid)
    }

    /// Numerically-stable row-wise softmax of a 2-D tensor.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let (n, d) = (av.rows(), av.cols());
        let mut out = vec![0.0f32; n * d];
        for i in 0..n {
            let row = &av.data()[i * d..(i + 1) * d];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for j in 0..d {
                let e = (row[j] - max).exp();
                out[i * d + j] = e;
                denom += e;
            }
            for j in 0..d {
                out[i * d + j] /= denom;
            }
        }
        self.push(Tensor::new(vec![n, d], out), vec![a.0], Op::SoftmaxRows)
    }

    /// Row-wise layer normalization with learned `gamma` and `beta` (`[d]`).
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        const EPS: f32 = 1e-5;
        let xv = &self.nodes[x.0].value;
        let (n, d) = (xv.rows(), xv.cols());
        let gv = &self.nodes[gamma.0].value;
        let bv = &self.nodes[beta.0].value;
        assert_eq!(gv.numel(), d);
        assert_eq!(bv.numel(), d);
        let mut xhat = vec![0.0f32; n * d];
        let mut inv_std = vec![0.0f32; n];
        let mut out = vec![0.0f32; n * d];
        for i in 0..n {
            let row = &xv.data()[i * d..(i + 1) * d];
            let mu = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
            let is = 1.0 / (var + EPS).sqrt();
            inv_std[i] = is;
            for j in 0..d {
                let xh = (row[j] - mu) * is;
                xhat[i * d + j] = xh;
                out[i * d + j] = xh * gv.data()[j] + bv.data()[j];
            }
        }
        self.push(
            Tensor::new(vec![n, d], out),
            vec![x.0, gamma.0, beta.0],
            Op::LayerNorm {
                xhat: Tensor::new(vec![n, d], xhat),
                inv_std,
            },
        )
    }

    /// Columns `[from, to)` of a 2-D tensor.
    pub fn col_slice(&mut self, a: Var, from: usize, to: usize) -> Var {
        let av = &self.nodes[a.0].value;
        let (n, d) = (av.rows(), av.cols());
        assert!(from < to && to <= d, "col_slice {from}..{to} of {d}");
        let w = to - from;
        let mut out = vec![0.0f32; n * w];
        for i in 0..n {
            out[i * w..(i + 1) * w].copy_from_slice(&av.data()[i * d + from..i * d + to]);
        }
        self.push(
            Tensor::new(vec![n, w], out),
            vec![a.0],
            Op::ColSlice { from, to },
        )
    }

    /// Horizontal concatenation of 2-D tensors with identical row counts.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty());
        let n = self.nodes[parts[0].0].value.rows();
        let widths: Vec<usize> = parts
            .iter()
            .map(|v| {
                let t = &self.nodes[v.0].value;
                assert_eq!(t.rows(), n, "concat_cols row mismatch");
                t.cols()
            })
            .collect();
        let total: usize = widths.iter().sum();
        let mut out = vec![0.0f32; n * total];
        for i in 0..n {
            let mut off = 0;
            for (v, &w) in parts.iter().zip(&widths) {
                let t = &self.nodes[v.0].value;
                out[i * total + off..i * total + off + w]
                    .copy_from_slice(&t.data()[i * w..(i + 1) * w]);
                off += w;
            }
        }
        self.push(
            Tensor::new(vec![n, total], out),
            parts.iter().map(|v| v.0).collect(),
            Op::ConcatCols { widths },
        )
    }

    /// Concatenation of 1-D tensors into one vector.
    pub fn concat1d(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty());
        let lens: Vec<usize> = parts
            .iter()
            .map(|v| self.nodes[v.0].value.numel())
            .collect();
        let mut out = Vec::with_capacity(lens.iter().sum());
        for v in parts {
            out.extend_from_slice(self.nodes[v.0].value.data());
        }
        self.push(
            Tensor::new(vec![out.len()], out),
            parts.iter().map(|v| v.0).collect(),
            Op::Concat1d { lens },
        )
    }

    /// Stacks `n` 1-D tensors of equal length `d` into a `[n,d]` matrix.
    pub fn stack_rows(&mut self, rows: &[Var]) -> Var {
        assert!(!rows.is_empty());
        let d = self.nodes[rows[0].0].value.numel();
        let mut out = Vec::with_capacity(rows.len() * d);
        for v in rows {
            let t = &self.nodes[v.0].value;
            assert_eq!(t.numel(), d, "stack_rows length mismatch");
            out.extend_from_slice(t.data());
        }
        self.push(
            Tensor::new(vec![rows.len(), d], out),
            rows.iter().map(|v| v.0).collect(),
            Op::StackRows { dim: d },
        )
    }

    /// Row `row` of a 2-D tensor, shaped `[1,d]`.
    pub fn row_slice(&mut self, a: Var, row: usize) -> Var {
        let av = &self.nodes[a.0].value;
        let (n, d) = (av.rows(), av.cols());
        assert!(row < n);
        let out = av.data()[row * d..(row + 1) * d].to_vec();
        self.push(
            Tensor::new(vec![1, d], out),
            vec![a.0],
            Op::RowSlice { row },
        )
    }

    /// Shape change covering the same elements.
    pub fn reshape(&mut self, a: Var, shape: Vec<usize>) -> Var {
        let parent_shape = self.nodes[a.0].value.shape().to_vec();
        let v = self.nodes[a.0].value.reshaped(shape);
        self.push(v, vec![a.0], Op::Reshape { parent_shape })
    }

    /// Sum of all elements as a scalar node.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        self.push(v, vec![a.0], Op::Sum)
    }

    /// Mean of all elements as a scalar node.
    pub fn mean(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        let v = Tensor::scalar(t.sum() / t.numel() as f32);
        self.push(v, vec![a.0], Op::Mean)
    }

    /// Inverted dropout: at train time zeroes each element with probability
    /// `p` and scales survivors by `1/(1-p)`; at eval time is the identity.
    pub fn dropout<R: Rng>(&mut self, a: Var, p: f32, training: bool, rng: &mut R) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        // lint: allow(L5, exact 0 disables dropout; any nonzero p takes the other branch)
        if !training || p == 0.0 {
            let v = self.nodes[a.0].value.clone();
            let mask = Tensor::full(v.shape().to_vec(), 1.0);
            return self.push(v, vec![a.0], Op::Dropout { mask });
        }
        let keep = 1.0 - p;
        let shape = self.nodes[a.0].value.shape().to_vec();
        let mask_data: Vec<f32> = (0..self.nodes[a.0].value.numel())
            .map(|_| {
                if rng.gen_range(0.0f32..1.0) < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Tensor::new(shape, mask_data);
        let v = self.nodes[a.0].value.zip(&mask, |x, m| x * m);
        self.push(v, vec![a.0], Op::Dropout { mask })
    }

    /// Row `index` of an embedding table (`[vocab, d]`) as a 1-D vector.
    pub fn embedding_row(&mut self, table: Var, index: usize) -> Var {
        let tv = &self.nodes[table.0].value;
        let (v, d) = (tv.rows(), tv.cols());
        assert!(index < v, "embedding index {index} out of {v}");
        let out = tv.data()[index * d..(index + 1) * d].to_vec();
        self.push(
            Tensor::new(vec![d], out),
            vec![table.0],
            Op::EmbeddingRow { index },
        )
    }

    /// Cross-entropy loss of 1-D logits against `target`, as a scalar node.
    pub fn softmax_cross_entropy_1d(&mut self, logits: Var, target: usize) -> Var {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.shape().len(), 1, "expected 1-D logits");
        let n = lv.numel();
        assert!(target < n, "target {target} out of {n}");
        let max = lv.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = lv.data().iter().map(|&x| (x - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        let probs: Vec<f32> = exps.iter().map(|&e| e / denom).collect();
        let loss = -(probs[target].max(1e-12)).ln();
        self.push(
            Tensor::scalar(loss),
            vec![logits.0],
            Op::SoftmaxCe1d {
                target,
                probs: Tensor::vector(&probs),
            },
        )
    }

    /// Cross-entropy of 1-D logits against a soft target distribution `q`
    /// (non-negative, summing to 1): `-sum_k q_k log softmax(logits)_k`.
    pub fn softmax_cross_entropy_soft(&mut self, logits: Var, q: &[f32]) -> Var {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.shape().len(), 1, "expected 1-D logits");
        assert_eq!(lv.numel(), q.len(), "target length mismatch");
        debug_assert!(
            (q.iter().sum::<f32>() - 1.0).abs() < 1e-4,
            "q must sum to 1"
        );
        let max = lv.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = lv.data().iter().map(|&x| (x - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        let probs: Vec<f32> = exps.iter().map(|&e| e / denom).collect();
        let loss: f32 = q
            .iter()
            .zip(&probs)
            .map(|(&qk, &pk)| -qk * pk.max(1e-12).ln())
            .sum();
        self.push(
            Tensor::scalar(loss),
            vec![logits.0],
            Op::SoftmaxCeSoft {
                target: Tensor::vector(q),
                probs: Tensor::vector(&probs),
            },
        )
    }

    /// Stride-1 2-D convolution with symmetric zero padding.
    ///
    /// `input` is `[c_in, h, w]`, `kernel` is `[c_out, c_in, kh, kw]`,
    /// `bias` is `[c_out]`; output is `[c_out, h', w']` with
    /// `h' = h + 2*pad - kh + 1`.
    pub fn conv2d(&mut self, input: Var, kernel: Var, bias: Var, pad: usize) -> Var {
        let iv = self.nodes[input.0].value.clone();
        let kv = self.nodes[kernel.0].value.clone();
        let bv = self.nodes[bias.0].value.clone();
        let (ci, h, w) = (iv.shape()[0], iv.shape()[1], iv.shape()[2]);
        let (co, ci2, kh, kw) = (kv.shape()[0], kv.shape()[1], kv.shape()[2], kv.shape()[3]);
        assert_eq!(ci, ci2, "conv2d channel mismatch");
        assert_eq!(bv.numel(), co);
        let oh = h + 2 * pad - kh + 1;
        let ow = w + 2 * pad - kw + 1;
        let mut out = vec![0.0f32; co * oh * ow];
        for c_out in 0..co {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bv.data()[c_out];
                    for c_in in 0..ci {
                        for ky in 0..kh {
                            let iy = oy + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = ox + kx;
                                if ix < pad || ix - pad >= w {
                                    continue;
                                }
                                let ival = iv.data()[c_in * h * w + (iy - pad) * w + (ix - pad)];
                                let kval = kv.data()[((c_out * ci + c_in) * kh + ky) * kw + kx];
                                acc += ival * kval;
                            }
                        }
                    }
                    out[c_out * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        self.push(
            Tensor::new(vec![co, oh, ow], out),
            vec![input.0, kernel.0, bias.0],
            Op::Conv2d { pad },
        )
    }

    /// Runs reverse-mode accumulation from `loss` (which must be scalar).
    ///
    /// Returns per-node gradients; use [`Gradients::get`] or
    /// [`Graph::param_grads`] to retrieve them.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward() needs a scalar loss"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for idx in (0..=loss.0).rev() {
            let Some(g) = grads[idx].take() else {
                continue;
            };
            let node = &self.nodes[idx];
            if node.needs_grad || !node.parents.is_empty() {
                self.accumulate_parents(idx, &g, &mut grads);
            }
            grads[idx] = Some(g);
        }
        Gradients { grads }
    }

    /// Gradients for every parameter leaf registered via [`Graph::param`].
    pub fn param_grads<'a>(
        &'a self,
        grads: &'a Gradients,
    ) -> impl Iterator<Item = (ParamId, &'a Tensor)> + 'a {
        self.params
            .iter()
            .filter_map(move |&(pid, node)| grads.grads[node].as_ref().map(|g| (pid, g)))
    }

    /// Like [`Graph::param_grads`], but consumes the gradient buffer and
    /// returns the tensors by value — the zero-copy handoff data-parallel
    /// training uses to ship per-sample gradients between threads before
    /// accumulating them in a fixed order.
    pub fn take_param_grads(&self, mut grads: Gradients) -> Vec<(ParamId, Tensor)> {
        self.params
            .iter()
            .filter_map(|&(pid, node)| grads.grads[node].take().map(|g| (pid, g)))
            .collect()
    }

    #[allow(clippy::needless_range_loop)] // index couples several arrays
    fn accumulate_parents(&self, idx: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        let node = &self.nodes[idx];
        let mut add_grad = |parent: usize, grad: Tensor| {
            if !self.nodes[parent].needs_grad {
                // No parameter below this node: the gradient would never be
                // consumed, so don't store it (prunes constant subtrees).
                return;
            }
            match &mut grads[parent] {
                Some(existing) => existing.add_assign(&grad),
                slot @ None => *slot = Some(grad),
            }
        };

        match &node.op {
            Op::Leaf => {}
            Op::Add => {
                add_grad(node.parents[0], g.clone());
                add_grad(node.parents[1], g.clone());
            }
            Op::Sub => {
                add_grad(node.parents[0], g.clone());
                add_grad(node.parents[1], g.map(|x| -x));
            }
            Op::Mul => {
                let a = &self.nodes[node.parents[0]].value;
                let b = &self.nodes[node.parents[1]].value;
                add_grad(node.parents[0], g.zip(b, |gv, bv| gv * bv));
                add_grad(node.parents[1], g.zip(a, |gv, av| gv * av));
            }
            Op::Scale(c) => add_grad(node.parents[0], g.map(|x| x * c)),
            Op::AddBiasRows => {
                add_grad(node.parents[0], g.clone());
                let bias_shape = self.nodes[node.parents[1]].value.shape().to_vec();
                let (n, d) = (g.rows(), g.cols());
                let mut gb = vec![0.0f32; d];
                for i in 0..n {
                    for j in 0..d {
                        gb[j] += g.data()[i * d + j];
                    }
                }
                add_grad(node.parents[1], Tensor::new(bias_shape, gb));
            }
            Op::Matmul => {
                let a = &self.nodes[node.parents[0]].value;
                let b = &self.nodes[node.parents[1]].value;
                add_grad(node.parents[0], g.matmul(&b.transposed()));
                add_grad(node.parents[1], a.transposed().matmul(g));
            }
            Op::Transpose => add_grad(node.parents[0], g.transposed()),
            Op::Tanh => {
                let y = &node.value;
                add_grad(node.parents[0], g.zip(y, |gv, yv| gv * (1.0 - yv * yv)));
            }
            Op::Relu => {
                let y = &node.value;
                add_grad(
                    node.parents[0],
                    g.zip(y, |gv, yv| if yv > 0.0 { gv } else { 0.0 }),
                );
            }
            Op::Sigmoid => {
                let y = &node.value;
                add_grad(node.parents[0], g.zip(y, |gv, yv| gv * yv * (1.0 - yv)));
            }
            Op::SoftmaxRows => {
                let s = &node.value;
                let (n, d) = (s.rows(), s.cols());
                let mut gx = vec![0.0f32; n * d];
                for i in 0..n {
                    let srow = &s.data()[i * d..(i + 1) * d];
                    let grow = &g.data()[i * d..(i + 1) * d];
                    let dot: f32 = srow.iter().zip(grow).map(|(&sv, &gv)| sv * gv).sum();
                    for j in 0..d {
                        gx[i * d + j] = srow[j] * (grow[j] - dot);
                    }
                }
                add_grad(node.parents[0], Tensor::new(vec![n, d], gx));
            }
            Op::LayerNorm { xhat, inv_std } => {
                let gamma = &self.nodes[node.parents[1]].value;
                let (n, d) = (xhat.rows(), xhat.cols());
                let mut gx = vec![0.0f32; n * d];
                let mut ggamma = vec![0.0f32; d];
                let mut gbeta = vec![0.0f32; d];
                for i in 0..n {
                    let xh = &xhat.data()[i * d..(i + 1) * d];
                    let grow = &g.data()[i * d..(i + 1) * d];
                    let mut mean_dxhat = 0.0f32;
                    let mut mean_dxhat_xhat = 0.0f32;
                    for j in 0..d {
                        let dxh = grow[j] * gamma.data()[j];
                        mean_dxhat += dxh;
                        mean_dxhat_xhat += dxh * xh[j];
                        ggamma[j] += grow[j] * xh[j];
                        gbeta[j] += grow[j];
                    }
                    mean_dxhat /= d as f32;
                    mean_dxhat_xhat /= d as f32;
                    for j in 0..d {
                        let dxh = grow[j] * gamma.data()[j];
                        gx[i * d + j] = inv_std[i] * (dxh - mean_dxhat - xh[j] * mean_dxhat_xhat);
                    }
                }
                let gamma_shape = gamma.shape().to_vec();
                let beta_shape = self.nodes[node.parents[2]].value.shape().to_vec();
                add_grad(node.parents[0], Tensor::new(vec![n, d], gx));
                add_grad(node.parents[1], Tensor::new(gamma_shape, ggamma));
                add_grad(node.parents[2], Tensor::new(beta_shape, gbeta));
            }
            Op::ColSlice { from, to } => {
                let parent = &self.nodes[node.parents[0]].value;
                let (n, d) = (parent.rows(), parent.cols());
                let w = to - from;
                let mut gx = vec![0.0f32; n * d];
                for i in 0..n {
                    gx[i * d + from..i * d + to].copy_from_slice(&g.data()[i * w..(i + 1) * w]);
                }
                add_grad(node.parents[0], Tensor::new(vec![n, d], gx));
            }
            Op::ConcatCols { widths } => {
                let n = node.value.rows();
                let total = node.value.cols();
                let mut off = 0;
                for (pi, &w) in node.parents.iter().zip(widths) {
                    let mut gp = vec![0.0f32; n * w];
                    for i in 0..n {
                        gp[i * w..(i + 1) * w]
                            .copy_from_slice(&g.data()[i * total + off..i * total + off + w]);
                    }
                    add_grad(*pi, Tensor::new(vec![n, w], gp));
                    off += w;
                }
            }
            Op::Concat1d { lens } => {
                let mut off = 0;
                for (pi, &l) in node.parents.iter().zip(lens) {
                    add_grad(*pi, Tensor::vector(&g.data()[off..off + l]));
                    off += l;
                }
            }
            Op::StackRows { dim } => {
                for (i, pi) in node.parents.iter().enumerate() {
                    add_grad(*pi, Tensor::vector(&g.data()[i * dim..(i + 1) * dim]));
                }
            }
            Op::RowSlice { row } => {
                let parent = &self.nodes[node.parents[0]].value;
                let (n, d) = (parent.rows(), parent.cols());
                let mut gx = vec![0.0f32; n * d];
                gx[row * d..(row + 1) * d].copy_from_slice(g.data());
                add_grad(node.parents[0], Tensor::new(vec![n, d], gx));
            }
            Op::Reshape { parent_shape } => {
                add_grad(node.parents[0], g.reshaped(parent_shape.clone()));
            }
            Op::Sum => {
                let parent = &self.nodes[node.parents[0]].value;
                add_grad(
                    node.parents[0],
                    Tensor::full(parent.shape().to_vec(), g.item()),
                );
            }
            Op::Mean => {
                let parent = &self.nodes[node.parents[0]].value;
                let scale = g.item() / parent.numel() as f32;
                add_grad(
                    node.parents[0],
                    Tensor::full(parent.shape().to_vec(), scale),
                );
            }
            Op::Dropout { mask } => {
                add_grad(node.parents[0], g.zip(mask, |gv, m| gv * m));
            }
            Op::EmbeddingRow { index } => {
                let table = &self.nodes[node.parents[0]].value;
                let (v, d) = (table.rows(), table.cols());
                let mut gt = vec![0.0f32; v * d];
                gt[index * d..(index + 1) * d].copy_from_slice(g.data());
                add_grad(node.parents[0], Tensor::new(vec![v, d], gt));
            }
            Op::SoftmaxCe1d { target, probs } => {
                let scale = g.item();
                let mut gl: Vec<f32> = probs.data().to_vec();
                gl[*target] -= 1.0;
                for x in &mut gl {
                    *x *= scale;
                }
                add_grad(node.parents[0], Tensor::vector(&gl));
            }
            Op::SoftmaxCeSoft { target, probs } => {
                let scale = g.item();
                let gl: Vec<f32> = probs
                    .data()
                    .iter()
                    .zip(target.data())
                    .map(|(&p, &q)| (p - q) * scale)
                    .collect();
                add_grad(node.parents[0], Tensor::vector(&gl));
            }
            Op::Conv2d { pad } => {
                let input = &self.nodes[node.parents[0]].value;
                let kernel = &self.nodes[node.parents[1]].value;
                let (ci, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
                let (co, _, kh, kw) = (
                    kernel.shape()[0],
                    kernel.shape()[1],
                    kernel.shape()[2],
                    kernel.shape()[3],
                );
                let (oh, ow) = (node.value.shape()[1], node.value.shape()[2]);
                let pad = *pad;
                let mut gi = vec![0.0f32; ci * h * w];
                let mut gk = vec![0.0f32; co * ci * kh * kw];
                let mut gb = vec![0.0f32; co];
                for c_out in 0..co {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let gv = g.data()[c_out * oh * ow + oy * ow + ox];
                            // lint: allow(L5, sparsity fast path; skipping exact zeros only avoids work)
                            if gv == 0.0 {
                                continue;
                            }
                            gb[c_out] += gv;
                            for c_in in 0..ci {
                                for ky in 0..kh {
                                    let iy = oy + ky;
                                    if iy < pad || iy - pad >= h {
                                        continue;
                                    }
                                    for kx in 0..kw {
                                        let ix = ox + kx;
                                        if ix < pad || ix - pad >= w {
                                            continue;
                                        }
                                        let ii = c_in * h * w + (iy - pad) * w + (ix - pad);
                                        let ki = ((c_out * ci + c_in) * kh + ky) * kw + kx;
                                        gi[ii] += gv * kernel.data()[ki];
                                        gk[ki] += gv * input.data()[ii];
                                    }
                                }
                            }
                        }
                    }
                }
                add_grad(node.parents[0], Tensor::new(vec![ci, h, w], gi));
                add_grad(node.parents[1], Tensor::new(vec![co, ci, kh, kw], gk));
                add_grad(node.parents[2], Tensor::vector(&gb));
            }
        }
    }
}
