//! Reusable layers built on the autograd graph.
//!
//! Each layer owns [`ParamId`]s in a shared [`ParamStore`] and exposes a
//! `forward` that appends operations to a per-step [`Graph`]. The set is
//! exactly what the paper's models need: dense layers, layer norm,
//! multi-head self-attention, a transformer encoder (LocMatcher), an LSTM
//! (the DLInfMA-PN variant and RankNet ablations), embeddings (POI
//! category), and 2-D convolutions (the UNet-based baseline).

use crate::graph::{Graph, Var};
use crate::optim::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;

/// Activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// A fully-connected layer `y = act(x W + b)` on `[n, in] -> [n, out]`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: ParamId,
    b: ParamId,
    activation: Activation,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialized weights.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        output: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let w = store.register_xavier(format!("{name}.w"), input, output, rng);
        let b = store.register_zeros(format!("{name}.b"), vec![output]);
        Self { w, b, activation }
    }

    /// Applies the layer to a `[n, in]` input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(self.w, store.value(self.w).clone());
        let b = g.param(self.b, store.value(self.b).clone());
        let z = g.matmul(x, w);
        let z = g.add_bias_rows(z, b);
        match self.activation {
            Activation::Identity => z,
            Activation::Relu => g.relu(z),
            Activation::Tanh => g.tanh(z),
            Activation::Sigmoid => g.sigmoid(z),
        }
    }
}

/// Learned row-wise layer normalization.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
}

impl LayerNorm {
    /// Creates a layer norm over feature dimension `dim` (gamma = 1,
    /// beta = 0).
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.register(format!("{name}.gamma"), Tensor::full(vec![dim], 1.0));
        let beta = store.register_zeros(format!("{name}.beta"), vec![dim]);
        Self { gamma, beta }
    }

    /// Normalizes each row of a `[n, dim]` input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let gamma = g.param(self.gamma, store.value(self.gamma).clone());
        let beta = g.param(self.beta, store.value(self.beta).clone());
        g.layer_norm(x, gamma, beta)
    }
}

/// Multi-head scaled dot-product self-attention over `[n, dim]`.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    wo: ParamId,
    heads: usize,
    dim: usize,
}

impl MultiHeadSelfAttention {
    /// Creates an attention block; `dim` must divide evenly by `heads`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim {dim} % heads {heads} != 0"
        );
        Self {
            wq: store.register_xavier(format!("{name}.wq"), dim, dim, rng),
            wk: store.register_xavier(format!("{name}.wk"), dim, dim, rng),
            wv: store.register_xavier(format!("{name}.wv"), dim, dim, rng),
            wo: store.register_xavier(format!("{name}.wo"), dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Applies self-attention; input and output are `[n, dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let wq = g.param(self.wq, store.value(self.wq).clone());
        let wk = g.param(self.wk, store.value(self.wk).clone());
        let wv = g.param(self.wv, store.value(self.wv).clone());
        let wo = g.param(self.wo, store.value(self.wo).clone());
        let q = g.matmul(x, wq);
        let k = g.matmul(x, wk);
        let v = g.matmul(x, wv);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (from, to) = (h * dh, (h + 1) * dh);
            let qh = g.col_slice(q, from, to);
            let kh = g.col_slice(k, from, to);
            let vh = g.col_slice(v, from, to);
            let kt = g.transpose(kh);
            let scores = g.matmul(qh, kt);
            let scores = g.scale(scores, scale);
            let attn = g.softmax_rows(scores);
            head_outputs.push(g.matmul(attn, vh));
        }
        let concat = g.concat_cols(&head_outputs);
        g.matmul(concat, wo)
    }
}

/// One transformer encoder layer: self-attention and a position-wise
/// feed-forward network, each wrapped in residual + layer norm
/// (post-norm, as in Vaswani et al. and the paper's Figure 8).
#[derive(Debug, Clone)]
pub struct TransformerEncoderLayer {
    attn: MultiHeadSelfAttention,
    ln1: LayerNorm,
    ff1: Dense,
    ff2: Dense,
    ln2: LayerNorm,
    dropout: f32,
}

impl TransformerEncoderLayer {
    /// Creates an encoder layer with feed-forward width `ff_dim`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        Self {
            attn: MultiHeadSelfAttention::new(store, &format!("{name}.attn"), dim, heads, rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            ff1: Dense::new(
                store,
                &format!("{name}.ff1"),
                dim,
                ff_dim,
                Activation::Relu,
                rng,
            ),
            ff2: Dense::new(
                store,
                &format!("{name}.ff2"),
                ff_dim,
                dim,
                Activation::Identity,
                rng,
            ),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            dropout,
        }
    }

    /// Applies the layer to `[n, dim]`.
    pub fn forward<R: Rng>(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Var,
        training: bool,
        rng: &mut R,
    ) -> Var {
        let attn_out = self.attn.forward(g, store, x);
        let attn_out = g.dropout(attn_out, self.dropout, training, rng);
        let res1 = g.add(x, attn_out);
        let norm1 = self.ln1.forward(g, store, res1);
        let ff = self.ff1.forward(g, store, norm1);
        let ff = self.ff2.forward(g, store, ff);
        let ff = g.dropout(ff, self.dropout, training, rng);
        let res2 = g.add(norm1, ff);
        self.ln2.forward(g, store, res2)
    }
}

/// A stack of [`TransformerEncoderLayer`]s (the paper uses `N = 3` layers,
/// 2 heads, 32-unit feed-forward sublayers, dropout 0.1).
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    layers: Vec<TransformerEncoderLayer>,
}

impl TransformerEncoder {
    /// Creates `n_layers` encoder layers.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        n_layers: usize,
        dim: usize,
        heads: usize,
        ff_dim: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        let layers = (0..n_layers)
            .map(|i| {
                TransformerEncoderLayer::new(
                    store,
                    &format!("{name}.layer{i}"),
                    dim,
                    heads,
                    ff_dim,
                    dropout,
                    rng,
                )
            })
            .collect();
        Self { layers }
    }

    /// Applies all layers in sequence to `[n, dim]`.
    pub fn forward<R: Rng>(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        mut x: Var,
        training: bool,
        rng: &mut R,
    ) -> Var {
        for layer in &self.layers {
            x = layer.forward(g, store, x, training, rng);
        }
        x
    }
}

/// A single-layer LSTM processed step by step over the rows of a `[n, in]`
/// sequence; returns the `[n, hidden]` stack of hidden states.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input-to-gates weights `[in, 4*hidden]`, gate order `i, f, g, o`.
    wx: ParamId,
    /// Hidden-to-gates weights `[hidden, 4*hidden]`.
    wh: ParamId,
    /// Gate biases `[4*hidden]` (forget-gate slice initialized to 1).
    b: ParamId,
    hidden: usize,
}

impl Lstm {
    /// Creates an LSTM with `hidden` units.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let wx = store.register_xavier(format!("{name}.wx"), input, 4 * hidden, rng);
        let wh = store.register_xavier(format!("{name}.wh"), hidden, 4 * hidden, rng);
        // Standard trick: bias the forget gate open so early training does
        // not wash out the cell state.
        let mut bias = Tensor::zeros(vec![4 * hidden]);
        for j in hidden..2 * hidden {
            bias.data_mut()[j] = 1.0;
        }
        let b = store.register(format!("{name}.b"), bias);
        Self { wx, wh, b, hidden }
    }

    /// Runs the LSTM over the rows of `x` (`[n, in]`), returning `[n, hidden]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let n = g.value(x).rows();
        let wx = g.param(self.wx, store.value(self.wx).clone());
        let wh = g.param(self.wh, store.value(self.wh).clone());
        let b = g.param(self.b, store.value(self.b).clone());
        let h0 = g.constant(Tensor::zeros(vec![1, self.hidden]));
        let c0 = g.constant(Tensor::zeros(vec![1, self.hidden]));
        let (mut h, mut c) = (h0, c0);
        let mut hidden_rows = Vec::with_capacity(n);
        for t in 0..n {
            let xt = g.row_slice(x, t);
            let zx = g.matmul(xt, wx);
            let zh = g.matmul(h, wh);
            let z = g.add(zx, zh);
            let z = g.add_bias_rows(z, b);
            let hd = self.hidden;
            let i_gate = g.col_slice(z, 0, hd);
            let f_gate = g.col_slice(z, hd, 2 * hd);
            let g_gate = g.col_slice(z, 2 * hd, 3 * hd);
            let o_gate = g.col_slice(z, 3 * hd, 4 * hd);
            let i_gate = g.sigmoid(i_gate);
            let f_gate = g.sigmoid(f_gate);
            let g_gate = g.tanh(g_gate);
            let o_gate = g.sigmoid(o_gate);
            let fc = g.mul(f_gate, c);
            let ig = g.mul(i_gate, g_gate);
            c = g.add(fc, ig);
            let ct = g.tanh(c);
            h = g.mul(o_gate, ct);
            let h_row = g.reshape(h, vec![self.hidden]);
            hidden_rows.push(h_row);
        }
        g.stack_rows(&hidden_rows)
    }
}

/// A learned embedding table; lookup by index.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
}

impl Embedding {
    /// Creates a `[vocab, dim]` table with small Gaussian initialization.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let table = store.register(name, Tensor::randn(vec![vocab, dim], 0.1, rng));
        Self { table }
    }

    /// Looks up one row as a 1-D vector.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, index: usize) -> Var {
        let table = g.param(self.table, store.value(self.table).clone());
        g.embedding_row(table, index)
    }
}

/// A 2-D convolution layer with optional ReLU (stride 1, zero padding).
#[derive(Debug, Clone)]
pub struct Conv2d {
    kernel: ParamId,
    bias: ParamId,
    pad: usize,
    relu: bool,
}

impl Conv2d {
    /// Creates a conv layer with a `[out, in, k, k]` kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        k: usize,
        pad: usize,
        relu: bool,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * k * k;
        let std = (2.0 / fan_in as f32).sqrt();
        let kernel = store.register(
            format!("{name}.kernel"),
            Tensor::randn(vec![out_channels, in_channels, k, k], std, rng),
        );
        let bias = store.register_zeros(format!("{name}.bias"), vec![out_channels]);
        Self {
            kernel,
            bias,
            pad,
            relu,
        }
    }

    /// Applies the convolution to a `[in, h, w]` input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let kernel = g.param(self.kernel, store.value(self.kernel).clone());
        let bias = g.param(self.bias, store.value(self.bias).clone());
        let out = g.conv2d(x, kernel, bias, self.pad);
        if self.relu {
            g.relu(out)
        } else {
            out
        }
    }
}
