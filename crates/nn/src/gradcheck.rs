//! Finite-difference gradient checking.
//!
//! Every autograd op is validated by comparing analytic gradients against
//! central differences. Exposed as a public utility so downstream crates
//! (e.g. the LocMatcher implementation) can check their composed models too.

use crate::graph::{Graph, Var};
use crate::optim::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Result of a gradient check: the largest absolute and relative deviation
/// across all checked parameters.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by magnitude, floored at 1).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True when both deviations are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Checks analytic gradients of `f` against central finite differences.
///
/// `f` must build a scalar loss from a fresh graph and the current parameter
/// values in `store`, deterministically (run any dropout in eval mode or
/// with a fixed mask). Every parameter in `params` is perturbed element by
/// element with step `eps`.
pub fn check_gradients(
    store: &mut ParamStore,
    params: &[ParamId],
    eps: f32,
    f: &mut dyn FnMut(&mut Graph, &ParamStore) -> Var,
) -> GradCheckReport {
    // Analytic pass.
    let mut g = Graph::new();
    let loss = f(&mut g, store);
    let grads = g.backward(loss);
    let mut analytic: Vec<(ParamId, Tensor)> = Vec::new();
    for (pid, grad) in g.param_grads(&grads) {
        if params.contains(&pid) {
            analytic.push((pid, grad.clone()));
        }
    }

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for &pid in params {
        let grad = analytic
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, g)| g.clone())
            .unwrap_or_else(|| Tensor::zeros(store.value(pid).shape().to_vec()));
        let numel = store.value(pid).numel();
        for i in 0..numel {
            let orig = store.value(pid).data()[i];
            store.value_mut(pid).data_mut()[i] = orig + eps;
            let mut gp = Graph::new();
            let lp = f(&mut gp, store);
            let fp = gp.value(lp).item();
            store.value_mut(pid).data_mut()[i] = orig - eps;
            let mut gm = Graph::new();
            let lm = f(&mut gm, store);
            let fm = gm.value(lm).item();
            store.value_mut(pid).data_mut()[i] = orig;

            let numeric = (fp - fm) / (2.0 * eps);
            let a = grad.data()[i];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1.0);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}
