#![warn(missing_docs)]
//! A small tape-based autograd engine and neural-network layer library.
//!
//! Mature deep-learning crates were unavailable for this offline
//! reproduction, and the paper's models are small — LocMatcher is a 3-layer,
//! 2-head transformer with 8-dimensional candidate embeddings — so this
//! crate implements exactly what the paper needs from first principles:
//!
//! * [`Tensor`]: dense row-major `f32` tensors;
//! * [`Graph`]: a forward tape with reverse-mode differentiation, covering
//!   dense algebra, softmax/cross-entropy, layer norm, attention plumbing
//!   (column slicing / concatenation), dropout, embeddings, and conv2d;
//! * [`layers`]: `Dense`, `LayerNorm`, `MultiHeadSelfAttention`,
//!   `TransformerEncoder`, `Lstm`, `Embedding`, `Conv2d`;
//! * [`optim`]: a `ParamStore` plus `Adam` with the paper's step-decay
//!   schedule;
//! * [`gradcheck`]: finite-difference validation used throughout the test
//!   suites.
//!
//! # Example
//! ```
//! use dlinfma_nn::{Graph, ParamStore, Tensor};
//! use dlinfma_nn::layers::{Activation, Dense};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let layer = Dense::new(&mut store, "fc", 4, 2, Activation::Relu, &mut rng);
//! let mut g = Graph::new();
//! let x = g.constant(Tensor::new(vec![3, 4], vec![0.5; 12]));
//! let y = layer.forward(&mut g, &store, x);
//! assert_eq!(g.value(y).shape(), &[3, 2]);
//! ```

pub mod gradcheck;
pub mod graph;
pub mod layers;
pub mod optim;
pub mod tensor;

pub use graph::{Gradients, Graph, Var};
pub use optim::{Adam, ParamId, ParamStore, StepDecay};
pub use tensor::Tensor;
