//! Parameter storage and the Adam optimizer.
//!
//! The paper trains LocMatcher with Adam (`beta1 = 0.9`, `beta2 = 0.999`,
//! learning rate `1e-4`) and halves the learning rate every 5 epochs; the
//! [`StepDecay`] schedule reproduces that.

use crate::tensor::Tensor;
use rand::Rng;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

struct ParamSlot {
    name: String,
    value: Tensor,
    m: Tensor,
    v: Tensor,
    grad: Tensor,
    has_grad: bool,
}

/// Owns all learnable tensors of a model together with their Adam state.
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<ParamSlot>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let shape = value.shape().to_vec();
        self.slots.push(ParamSlot {
            name: name.into(),
            m: Tensor::zeros(shape.clone()),
            v: Tensor::zeros(shape.clone()),
            grad: Tensor::zeros(shape),
            has_grad: false,
            value,
        });
        ParamId(self.slots.len() - 1)
    }

    /// Registers a Xavier-initialized `[fan_in, fan_out]` matrix.
    pub fn register_xavier<R: Rng>(
        &mut self,
        name: impl Into<String>,
        fan_in: usize,
        fan_out: usize,
        rng: &mut R,
    ) -> ParamId {
        self.register(name, Tensor::xavier(fan_in, fan_out, rng))
    }

    /// Registers a zero-initialized tensor (biases).
    pub fn register_zeros(&mut self, name: impl Into<String>, shape: Vec<usize>) -> ParamId {
        self.register(name, Tensor::zeros(shape))
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.slots[id.0].value
    }

    /// Mutable access to a parameter's value (used by tests and by loading
    /// saved weights).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.slots[id.0].value
    }

    /// Name the parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.slots[id.0].name
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.slots.iter().map(|s| s.value.numel()).sum()
    }

    /// Clears accumulated gradients; call once per step before accumulation.
    pub fn zero_grads(&mut self) {
        for s in &mut self.slots {
            if s.has_grad {
                s.grad.data_mut().fill(0.0);
                s.has_grad = false;
            }
        }
    }

    /// Accumulates `grad` into the parameter's gradient buffer (summed over
    /// a mini-batch of per-sample graphs).
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        let slot = &mut self.slots[id.0];
        slot.grad.add_assign(grad);
        slot.has_grad = true;
    }

    /// Copies all parameter values (for early-stopping weight restore).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.slots.iter().map(|s| s.value.clone()).collect()
    }

    /// Exports every parameter as `(name, shape, data)` — a
    /// serialization-agnostic weight dump for persistence layers.
    pub fn export_weights(&self) -> Vec<(String, Vec<usize>, Vec<f32>)> {
        self.slots
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    s.value.shape().to_vec(),
                    s.value.data().to_vec(),
                )
            })
            .collect()
    }

    /// Imports weights produced by [`ParamStore::export_weights`] into a
    /// store with the *same registration order and shapes* (i.e. a model
    /// rebuilt from the same configuration). Optimizer moments reset.
    ///
    /// # Errors
    /// Returns a description of the first mismatch (count, name, or shape).
    pub fn import_weights(
        &mut self,
        weights: &[(String, Vec<usize>, Vec<f32>)],
    ) -> Result<(), String> {
        if weights.len() != self.slots.len() {
            return Err(format!(
                "parameter count mismatch: store has {}, dump has {}",
                self.slots.len(),
                weights.len()
            ));
        }
        for (slot, (name, shape, data)) in self.slots.iter().zip(weights) {
            if &slot.name != name {
                return Err(format!("parameter name mismatch: {} vs {name}", slot.name));
            }
            if slot.value.shape() != shape.as_slice() {
                return Err(format!(
                    "shape mismatch for {name}: {:?} vs {shape:?}",
                    slot.value.shape()
                ));
            }
            if data.len() != slot.value.numel() {
                return Err(format!("data length mismatch for {name}"));
            }
        }
        for (slot, (_, shape, data)) in self.slots.iter_mut().zip(weights) {
            slot.value = Tensor::new(shape.clone(), data.clone());
            slot.m = Tensor::zeros(shape.clone());
            slot.v = Tensor::zeros(shape.clone());
            slot.grad = Tensor::zeros(shape.clone());
            slot.has_grad = false;
        }
        Ok(())
    }

    /// Restores parameter values from a [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the current parameter layout.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.slots.len(), "snapshot layout mismatch");
        for (slot, value) in self.slots.iter_mut().zip(snapshot) {
            assert_eq!(slot.value.shape(), value.shape(), "snapshot shape mismatch");
            slot.value = value.clone();
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Base learning rate (before any schedule).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability term.
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// Adam with the paper's hyperparameters (`lr = 1e-4`, `beta1 = 0.9`,
    /// `beta2 = 0.999`).
    pub fn paper_defaults() -> Self {
        Self::new(1e-4)
    }

    /// Adam with a custom base learning rate and standard betas.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update to every parameter that accumulated a gradient,
    /// scaling gradients by `1 / batch_size` and the learning rate by
    /// `lr_scale` (for schedules).
    pub fn step(&mut self, store: &mut ParamStore, batch_size: usize, lr_scale: f32) {
        assert!(batch_size > 0, "batch size must be positive");
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let lr = self.lr * lr_scale;
        let inv_batch = 1.0 / batch_size as f32;
        for slot in &mut store.slots {
            if !slot.has_grad {
                continue;
            }
            let g = slot.grad.data();
            let m = slot.m.data_mut();
            for (mi, &gi) in m.iter_mut().zip(g) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi * inv_batch;
            }
            let v = slot.v.data_mut();
            for (vi, &gi) in v.iter_mut().zip(g) {
                let gs = gi * inv_batch;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gs * gs;
            }
            let (m, v, w) = (slot.m.data(), slot.v.data(), slot.value.data_mut());
            for ((wi, &mi), &vi) in w.iter_mut().zip(m).zip(v) {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *wi -= lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Learning-rate schedule that multiplies the base rate by `factor` every
/// `every_epochs` epochs — the paper halves the rate every 5 epochs.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Epoch interval between decays.
    pub every_epochs: usize,
    /// Multiplicative factor applied at each decay.
    pub factor: f32,
}

impl StepDecay {
    /// The paper's schedule: halve every 5 epochs.
    pub fn paper_defaults() -> Self {
        Self {
            every_epochs: 5,
            factor: 0.5,
        }
    }

    /// Learning-rate multiplier in effect during `epoch` (0-based).
    pub fn scale_at(&self, epoch: usize) -> f32 {
        self.factor.powi((epoch / self.every_epochs) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::vector(&[1.0, 2.0]));
        assert_eq!(store.name(id), "w");
        assert_eq!(store.value(id).data(), &[1.0, 2.0]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_weights(), 2);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize f(w) = (w - 3)^2 by hand-computed gradients.
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::scalar(0.0));
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            store.zero_grads();
            let w = store.value(id).item();
            let grad = 2.0 * (w - 3.0);
            store.accumulate_grad(id, &Tensor::scalar(grad));
            adam.step(&mut store, 1, 1.0);
        }
        let w = store.value(id).item();
        assert!((w - 3.0).abs() < 0.05, "converged to {w}");
    }

    #[test]
    fn batch_scaling_averages_gradients() {
        // Two identical samples with batch_size 2 must move the weight the
        // same as one sample with batch_size 1.
        let run = |batch: usize| {
            let mut store = ParamStore::new();
            let id = store.register("w", Tensor::scalar(1.0));
            let mut adam = Adam::new(0.01);
            store.zero_grads();
            for _ in 0..batch {
                store.accumulate_grad(id, &Tensor::scalar(4.0));
            }
            adam.step(&mut store, batch, 1.0);
            store.value(id).item()
        };
        assert!((run(1) - run(2)).abs() < 1e-7);
    }

    #[test]
    fn params_without_grads_are_untouched() {
        let mut store = ParamStore::new();
        let a = store.register("a", Tensor::scalar(5.0));
        let b = store.register("b", Tensor::scalar(7.0));
        let mut adam = Adam::new(0.1);
        store.zero_grads();
        store.accumulate_grad(a, &Tensor::scalar(1.0));
        adam.step(&mut store, 1, 1.0);
        assert_ne!(store.value(a).item(), 5.0);
        assert_eq!(store.value(b).item(), 7.0);
    }

    #[test]
    fn step_decay_halves_every_five_epochs() {
        let s = StepDecay::paper_defaults();
        assert_eq!(s.scale_at(0), 1.0);
        assert_eq!(s.scale_at(4), 1.0);
        assert_eq!(s.scale_at(5), 0.5);
        assert_eq!(s.scale_at(10), 0.25);
        assert_eq!(s.scale_at(14), 0.25);
    }

    #[test]
    fn weight_export_import_roundtrip() {
        let mut a = ParamStore::new();
        let w = a.register("w", Tensor::vector(&[1.0, 2.0, 3.0]));
        let b = a.register("b", Tensor::scalar(7.0));
        let dump = a.export_weights();

        let mut fresh = ParamStore::new();
        fresh.register("w", Tensor::zeros(vec![3]));
        fresh.register("b", Tensor::zeros(vec![1]));
        fresh.import_weights(&dump).expect("layout matches");
        assert_eq!(fresh.value(w).data(), &[1.0, 2.0, 3.0]);
        assert_eq!(fresh.value(b).item(), 7.0);
    }

    #[test]
    fn import_rejects_mismatches() {
        let mut a = ParamStore::new();
        a.register("w", Tensor::vector(&[1.0]));
        let dump = a.export_weights();

        let mut wrong_count = ParamStore::new();
        assert!(wrong_count.import_weights(&dump).is_err());

        let mut wrong_name = ParamStore::new();
        wrong_name.register("x", Tensor::vector(&[0.0]));
        assert!(wrong_name.import_weights(&dump).is_err());

        let mut wrong_shape = ParamStore::new();
        wrong_shape.register("w", Tensor::vector(&[0.0, 0.0]));
        assert!(wrong_shape.import_weights(&dump).is_err());
    }

    #[test]
    fn zero_grads_resets_accumulation() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::scalar(0.0));
        store.accumulate_grad(id, &Tensor::scalar(2.0));
        store.zero_grads();
        let mut adam = Adam::new(0.1);
        adam.step(&mut store, 1, 1.0);
        assert_eq!(store.value(id).item(), 0.0, "no grad, no movement");
    }
}
