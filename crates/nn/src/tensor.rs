//! Dense row-major f32 tensors.
//!
//! Shapes are kept deliberately simple: the models in this reproduction are
//! small (a 3-layer, 2-head transformer over at most a few hundred location
//! candidates), so a `Vec<f32>` with a shape vector is both fast enough and
//! easy to verify.

use rand::Rng;

/// A dense row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} implies {numel} elements, got {}",
            data.len()
        );
        Self { shape, data }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let numel = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; numel],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let numel = shape.iter().product();
        Self {
            shape,
            data: vec![value; numel],
        }
    }

    /// A 1-D tensor from a slice.
    pub fn vector(values: &[f32]) -> Self {
        Self::new(vec![values.len()], values.to_vec())
    }

    /// A scalar (shape `[1]`) tensor.
    pub fn scalar(value: f32) -> Self {
        Self::new(vec![1], vec![value])
    }

    /// Gaussian-initialized tensor with the given standard deviation
    /// (Box-Muller over the provided RNG, so runs are reproducible).
    pub fn randn<R: Rng>(shape: Vec<usize>, std: f32, rng: &mut R) -> Self {
        let numel: usize = shape.iter().product();
        let mut data = Vec::with_capacity(numel);
        while data.len() < numel {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < numel {
                data.push(r * theta.sin() * std);
            }
        }
        Self { shape, data }
    }

    /// Xavier/Glorot-uniform initialization for a `[fan_in, fan_out]` matrix.
    pub fn xavier<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let data = (0..fan_in * fan_out)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Self {
            shape: vec![fan_in, fan_out],
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows of a 2-D tensor.
    ///
    /// # Panics
    /// Panics unless the tensor is 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "expected 2-D, got {:?}", self.shape);
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    ///
    /// # Panics
    /// Panics unless the tensor is 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "expected 2-D, got {:?}", self.shape);
        self.shape[1]
    }

    /// Element at `(i, j)` of a 2-D tensor.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        let c = self.cols();
        self.data[i * c + j]
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    /// Panics unless the tensor has exactly one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on non-scalar {:?}", self.shape);
        self.data[0]
    }

    /// Returns a copy with a new shape covering the same elements.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: Vec<usize>) -> Tensor {
        Tensor::new(shape, self.data.clone())
    }

    /// Matrix product of two 2-D tensors (`[m,k] x [k,n] -> [m,n]`).
    ///
    /// # Panics
    /// Panics on non-2-D inputs or mismatched inner dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul {:?} x {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for (kk, &a) in arow.iter().enumerate() {
                // lint: allow(L5, sparsity fast path; skipping exact zeros only avoids work)
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor::new(vec![m, n], out)
    }

    /// Transpose of a 2-D tensor.
    pub fn transposed(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::new(vec![n, m], out)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    #[should_panic(expected = "implies")]
    fn shape_data_mismatch_panics() {
        let _ = Tensor::new(vec![2, 3], vec![0.0; 5]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::new(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::new(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::new(vec![2, 2], vec![3.0, -1.0, 2.0, 5.0]);
        let i = Tensor::new(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::new(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().at2(2, 1), 6.0);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Tensor::randn(vec![10_000], 2.0, &mut rng);
        let mean = t.sum() / t.numel() as f32;
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::xavier(8, 32, &mut rng);
        let limit = (6.0f32 / 40.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn map_zip_add_assign() {
        let a = Tensor::vector(&[1.0, -2.0, 3.0]);
        let b = Tensor::vector(&[10.0, 20.0, 30.0]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[11.0, 18.0, 33.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[11.0, 18.0, 33.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::new(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.reshaped(vec![6]);
        assert_eq!(b.shape(), &[6]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn item_and_scalar() {
        assert_eq!(Tensor::scalar(4.25).item(), 4.25);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
            proptest::collection::vec(-10.0..10.0f32, rows * cols)
                .prop_map(move |data| Tensor::new(vec![rows, cols], data))
        }

        proptest! {
            #[test]
            fn matmul_distributes_over_addition(
                a in arb_matrix(3, 4),
                b in arb_matrix(3, 4),
                c in arb_matrix(4, 2),
            ) {
                // (a + b) c == a c + b c
                let left = a.zip(&b, |x, y| x + y).matmul(&c);
                let right = a.matmul(&c).zip(&b.matmul(&c), |x, y| x + y);
                for (l, r) in left.data().iter().zip(right.data()) {
                    prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
                }
            }

            #[test]
            fn transpose_of_product_is_reversed_product(
                a in arb_matrix(3, 4),
                b in arb_matrix(4, 2),
            ) {
                // (a b)^T == b^T a^T
                let left = a.matmul(&b).transposed();
                let right = b.transposed().matmul(&a.transposed());
                for (l, r) in left.data().iter().zip(right.data()) {
                    prop_assert!((l - r).abs() < 1e-3);
                }
            }

            #[test]
            fn sum_is_linear(
                a in arb_matrix(4, 4),
                k in -5.0..5.0f32,
            ) {
                let scaled = a.map(|x| x * k);
                prop_assert!((scaled.sum() - a.sum() * k).abs() < 1e-2);
            }
        }
    }
}
