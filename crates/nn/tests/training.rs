//! End-to-end training smoke tests: each model family must actually learn.

use dlinfma_nn::layers::{Activation, Dense, Lstm, TransformerEncoder};
use dlinfma_nn::{Adam, Graph, ParamStore, Tensor};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A two-layer MLP must fit XOR — the classic non-linear sanity check.
#[test]
fn mlp_learns_xor() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut store = ParamStore::new();
    let l1 = Dense::new(&mut store, "l1", 2, 8, Activation::Tanh, &mut rng);
    let l2 = Dense::new(&mut store, "l2", 8, 2, Activation::Identity, &mut rng);
    let mut adam = Adam::new(0.05);

    let data: [([f32; 2], usize); 4] = [
        ([0.0, 0.0], 0),
        ([0.0, 1.0], 1),
        ([1.0, 0.0], 1),
        ([1.0, 1.0], 0),
    ];

    for _ in 0..300 {
        store.zero_grads();
        for (x, y) in &data {
            let mut g = Graph::new();
            let input = g.constant(Tensor::new(vec![1, 2], x.to_vec()));
            let h = l1.forward(&mut g, &store, input);
            let logits2d = l2.forward(&mut g, &store, h);
            let logits = g.reshape(logits2d, vec![2]);
            let loss = g.softmax_cross_entropy_1d(logits, *y);
            let grads = g.backward(loss);
            for (pid, grad) in g.param_grads(&grads) {
                store.accumulate_grad(pid, grad);
            }
        }
        adam.step(&mut store, data.len(), 1.0);
    }

    // All four points classified correctly.
    for (x, y) in &data {
        let mut g = Graph::new();
        let input = g.constant(Tensor::new(vec![1, 2], x.to_vec()));
        let h = l1.forward(&mut g, &store, input);
        let logits = l2.forward(&mut g, &store, h);
        let row = g.value(logits);
        let pred = if row.at2(0, 0) > row.at2(0, 1) { 0 } else { 1 };
        assert_eq!(pred, *y, "misclassified {x:?}");
    }
}

/// The transformer + attention-selection stack (LocMatcher's shape) must
/// learn a toy "pick the row with the largest first feature" task over
/// variable-length candidate sets.
#[test]
fn transformer_learns_argmax_selection() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let embed = Dense::new(&mut store, "embed", 3, 8, Activation::Tanh, &mut rng);
    let enc = TransformerEncoder::new(&mut store, "enc", 1, 8, 2, 16, 0.0, &mut rng);
    let score = Dense::new(&mut store, "score", 8, 1, Activation::Identity, &mut rng);
    let mut adam = Adam::new(0.01);

    let gen_sample = |rng: &mut StdRng| {
        let n = rng.gen_range(3..8);
        let feats: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                vec![
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ]
            })
            .collect();
        let target = feats
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a[0].partial_cmp(&b[0]).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        (feats, target)
    };

    let run = |store: &ParamStore,
               embed: &Dense,
               enc: &TransformerEncoder,
               score: &Dense,
               feats: &[Vec<f32>]|
     -> (Graph, dlinfma_nn::Var) {
        let n = feats.len();
        let flat: Vec<f32> = feats.iter().flatten().copied().collect();
        let mut g = Graph::new();
        let x = g.constant(Tensor::new(vec![n, 3], flat));
        let e = embed.forward(&mut g, store, x);
        let mut dummy = StdRng::seed_from_u64(0);
        let z = enc.forward(&mut g, store, e, false, &mut dummy);
        let s = score.forward(&mut g, store, z);
        let logits = g.reshape(s, vec![n]);
        (g, logits)
    };

    for _ in 0..400 {
        store.zero_grads();
        let batch = 8;
        for _ in 0..batch {
            let (feats, target) = gen_sample(&mut rng);
            let (mut g, logits) = run(&store, &embed, &enc, &score, &feats);
            let loss = g.softmax_cross_entropy_1d(logits, target);
            let grads = g.backward(loss);
            for (pid, grad) in g.param_grads(&grads) {
                store.accumulate_grad(pid, grad);
            }
        }
        adam.step(&mut store, 8, 1.0);
    }

    let mut correct = 0;
    let total = 100;
    for _ in 0..total {
        let (feats, target) = gen_sample(&mut rng);
        let (g, logits) = run(&store, &embed, &enc, &score, &feats);
        let vals = g.value(logits);
        let pred = vals
            .data()
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if pred == target {
            correct += 1;
        }
    }
    assert!(
        correct >= 85,
        "transformer selection accuracy {correct}/{total}"
    );
}

/// The LSTM must learn a short-sequence task: predict whether the sum of
/// inputs so far is positive at the last step.
#[test]
fn lstm_learns_running_sign() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let lstm = Lstm::new(&mut store, "lstm", 1, 8, &mut rng);
    let head = Dense::new(&mut store, "head", 8, 2, Activation::Identity, &mut rng);
    let mut adam = Adam::new(0.02);

    let gen = |rng: &mut StdRng| {
        let n = rng.gen_range(3..7);
        let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let label = usize::from(xs.iter().sum::<f32>() > 0.0);
        (xs, label)
    };

    for _ in 0..300 {
        store.zero_grads();
        for _ in 0..8 {
            let (xs, label) = gen(&mut rng);
            let n = xs.len();
            let mut g = Graph::new();
            let x = g.constant(Tensor::new(vec![n, 1], xs));
            let h = lstm.forward(&mut g, &store, x);
            let last = g.row_slice(h, n - 1);
            let logits2d = head.forward(&mut g, &store, last);
            let logits = g.reshape(logits2d, vec![2]);
            let loss = g.softmax_cross_entropy_1d(logits, label);
            let grads = g.backward(loss);
            for (pid, grad) in g.param_grads(&grads) {
                store.accumulate_grad(pid, grad);
            }
        }
        adam.step(&mut store, 8, 1.0);
    }

    let mut correct = 0;
    for _ in 0..100 {
        let (xs, label) = gen(&mut rng);
        let n = xs.len();
        let mut g = Graph::new();
        let x = g.constant(Tensor::new(vec![n, 1], xs));
        let h = lstm.forward(&mut g, &store, x);
        let last = g.row_slice(h, n - 1);
        let logits = head.forward(&mut g, &store, last);
        let v = g.value(logits);
        let pred = usize::from(v.at2(0, 1) > v.at2(0, 0));
        if pred == label {
            correct += 1;
        }
    }
    assert!(correct >= 85, "lstm accuracy {correct}/100");
}

/// Dropout must be identity at eval time and roughly mean-preserving in
/// expectation at train time.
#[test]
fn dropout_semantics() {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::full(vec![1000], 1.0);
    let mut g = Graph::new();
    let xv = g.constant(x.clone());
    let eval = g.dropout(xv, 0.5, false, &mut rng);
    assert_eq!(g.value(eval).data(), x.data());

    let train = g.dropout(xv, 0.5, true, &mut rng);
    let mean = g.value(train).sum() / 1000.0;
    assert!((mean - 1.0).abs() < 0.15, "inverted dropout mean {mean}");
    let zeros = g.value(train).data().iter().filter(|&&v| v == 0.0).count();
    assert!((350..650).contains(&zeros), "dropped {zeros}/1000");
}

/// Softmax cross-entropy must match the analytic value for known logits.
#[test]
fn cross_entropy_known_value() {
    let mut g = Graph::new();
    let logits = g.constant(Tensor::vector(&[1.0, 2.0, 3.0]));
    let loss = g.softmax_cross_entropy_1d(logits, 2);
    // -log(e^3 / (e^1 + e^2 + e^3)) = log(1 + e^-1 + e^-2)
    let expected = (1.0f32 + (-1.0f32).exp() + (-2.0f32).exp()).ln();
    assert!((g.value(loss).item() - expected).abs() < 1e-5);
}
