//! Finite-difference validation of every autograd op and composed layer.

use dlinfma_nn::gradcheck::check_gradients;
use dlinfma_nn::layers::{
    Activation, Conv2d, Dense, Embedding, LayerNorm, Lstm, MultiHeadSelfAttention,
    TransformerEncoder,
};
use dlinfma_nn::{Graph, ParamStore, Tensor, Var};
use rand::{rngs::StdRng, SeedableRng};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Runs a check and asserts it passes.
fn assert_grads(
    store: &mut ParamStore,
    params: &[dlinfma_nn::ParamId],
    f: &mut dyn FnMut(&mut Graph, &ParamStore) -> Var,
) {
    let report = check_gradients(store, params, EPS, f);
    assert!(
        report.passes(TOL),
        "gradient check failed: abs {} rel {}",
        report.max_abs_err,
        report.max_rel_err
    );
}

#[test]
fn grad_add_sub_mul_scale() {
    let mut store = ParamStore::new();
    let a = store.register("a", Tensor::vector(&[0.3, -0.7, 1.1]));
    let b = store.register("b", Tensor::vector(&[0.9, 0.2, -0.4]));
    assert_grads(&mut store, &[a, b], &mut |g, s| {
        let av = g.param(a, s.value(a).clone());
        let bv = g.param(b, s.value(b).clone());
        let x = g.add(av, bv);
        let y = g.sub(x, bv);
        let z = g.mul(y, av);
        let z = g.scale(z, 1.7);
        g.sum(z)
    });
}

#[test]
fn grad_matmul_transpose() {
    let mut store = ParamStore::new();
    let mut r = rng(1);
    let a = store.register("a", Tensor::randn(vec![3, 4], 0.5, &mut r));
    let b = store.register("b", Tensor::randn(vec![4, 2], 0.5, &mut r));
    assert_grads(&mut store, &[a, b], &mut |g, s| {
        let av = g.param(a, s.value(a).clone());
        let bv = g.param(b, s.value(b).clone());
        let c = g.matmul(av, bv);
        let ct = g.transpose(c);
        let d = g.matmul(ct, av); // [2,3] x [3,4]
        g.sum(d)
    });
}

#[test]
fn grad_activations() {
    let mut store = ParamStore::new();
    let a = store.register("a", Tensor::vector(&[0.5, -0.3, 1.2, -2.0]));
    assert_grads(&mut store, &[a], &mut |g, s| {
        let av = g.param(a, s.value(a).clone());
        let t = g.tanh(av);
        let sgm = g.sigmoid(t);
        // ReLU has a kink at 0; inputs here are away from it after sigmoid.
        let r = g.relu(sgm);
        g.sum(r)
    });
}

#[test]
fn grad_add_bias_rows() {
    let mut store = ParamStore::new();
    let mut r = rng(2);
    let x = store.register("x", Tensor::randn(vec![4, 3], 0.5, &mut r));
    let b = store.register("b", Tensor::randn(vec![3], 0.5, &mut r));
    assert_grads(&mut store, &[x, b], &mut |g, s| {
        let xv = g.param(x, s.value(x).clone());
        let bv = g.param(b, s.value(b).clone());
        let y = g.add_bias_rows(xv, bv);
        let y = g.tanh(y);
        g.sum(y)
    });
}

#[test]
fn grad_softmax_rows() {
    let mut store = ParamStore::new();
    let mut r = rng(3);
    let x = store.register("x", Tensor::randn(vec![3, 5], 1.0, &mut r));
    let w = store.register("w", Tensor::randn(vec![3, 5], 1.0, &mut r));
    assert_grads(&mut store, &[x, w], &mut |g, s| {
        let xv = g.param(x, s.value(x).clone());
        let wv = g.param(w, s.value(w).clone());
        let sm = g.softmax_rows(xv);
        // Weighted sum so the gradient is non-trivial per element.
        let y = g.mul(sm, wv);
        g.sum(y)
    });
}

#[test]
fn grad_layer_norm() {
    let mut store = ParamStore::new();
    let mut r = rng(4);
    let x = store.register("x", Tensor::randn(vec![3, 6], 1.0, &mut r));
    let gamma = store.register("gamma", Tensor::randn(vec![6], 0.3, &mut r));
    let beta = store.register("beta", Tensor::randn(vec![6], 0.3, &mut r));
    let w = store.register("w", Tensor::randn(vec![3, 6], 1.0, &mut r));
    assert_grads(&mut store, &[x, gamma, beta], &mut |g, s| {
        let xv = g.param(x, s.value(x).clone());
        let gv = g.param(gamma, s.value(gamma).clone());
        let bv = g.param(beta, s.value(beta).clone());
        let wv = g.param(w, s.value(w).clone());
        let y = g.layer_norm(xv, gv, bv);
        let y = g.mul(y, wv);
        g.sum(y)
    });
}

#[test]
fn grad_slicing_and_concat() {
    let mut store = ParamStore::new();
    let mut r = rng(5);
    let x = store.register("x", Tensor::randn(vec![4, 6], 0.7, &mut r));
    assert_grads(&mut store, &[x], &mut |g, s| {
        let xv = g.param(x, s.value(x).clone());
        let left = g.col_slice(xv, 0, 3);
        let right = g.col_slice(xv, 3, 6);
        let prod = g.mul(left, right);
        let cat = g.concat_cols(&[prod, left]);
        let row = g.row_slice(cat, 2);
        let flat = g.reshape(row, vec![6]);
        let again = g.concat1d(&[flat, flat]);
        let t = g.tanh(again);
        g.sum(t)
    });
}

#[test]
fn grad_stack_rows() {
    let mut store = ParamStore::new();
    let mut r = rng(6);
    let a = store.register("a", Tensor::randn(vec![4], 0.7, &mut r));
    let b = store.register("b", Tensor::randn(vec![4], 0.7, &mut r));
    assert_grads(&mut store, &[a, b], &mut |g, s| {
        let av = g.param(a, s.value(a).clone());
        let bv = g.param(b, s.value(b).clone());
        let m = g.stack_rows(&[av, bv, av]);
        let sm = g.softmax_rows(m);
        let y = g.mul(sm, m);
        g.mean(y)
    });
}

#[test]
fn grad_embedding() {
    let mut store = ParamStore::new();
    let mut r = rng(7);
    let table = store.register("emb", Tensor::randn(vec![5, 3], 0.5, &mut r));
    assert_grads(&mut store, &[table], &mut |g, s| {
        let tv = g.param(table, s.value(table).clone());
        let e1 = g.embedding_row(tv, 2);
        let e2 = g.embedding_row(tv, 4);
        let cat = g.concat1d(&[e1, e2]);
        let t = g.tanh(cat);
        g.sum(t)
    });
}

#[test]
fn grad_softmax_cross_entropy() {
    let mut store = ParamStore::new();
    let mut r = rng(8);
    let x = store.register("x", Tensor::randn(vec![7], 1.0, &mut r));
    assert_grads(&mut store, &[x], &mut |g, s| {
        let xv = g.param(x, s.value(x).clone());
        g.softmax_cross_entropy_1d(xv, 3)
    });
}

#[test]
fn grad_softmax_cross_entropy_soft() {
    let mut store = ParamStore::new();
    let mut r = rng(21);
    let x = store.register("x", Tensor::randn(vec![5], 1.0, &mut r));
    let q = [0.1f32, 0.4, 0.3, 0.15, 0.05];
    assert_grads(&mut store, &[x], &mut |g, s| {
        let xv = g.param(x, s.value(x).clone());
        g.softmax_cross_entropy_soft(xv, &q)
    });
}

#[test]
fn grad_conv2d() {
    let mut store = ParamStore::new();
    let mut r = rng(9);
    let x = store.register("x", Tensor::randn(vec![2, 5, 5], 0.5, &mut r));
    let k = store.register("k", Tensor::randn(vec![3, 2, 3, 3], 0.5, &mut r));
    let b = store.register("b", Tensor::randn(vec![3], 0.5, &mut r));
    assert_grads(&mut store, &[x, k, b], &mut |g, s| {
        let xv = g.param(x, s.value(x).clone());
        let kv = g.param(k, s.value(k).clone());
        let bv = g.param(b, s.value(b).clone());
        let y = g.conv2d(xv, kv, bv, 1);
        let t = g.tanh(y);
        g.sum(t)
    });
}

#[test]
fn grad_dense_layer() {
    let mut store = ParamStore::new();
    let mut r = rng(10);
    let layer = Dense::new(&mut store, "fc", 5, 3, Activation::Tanh, &mut r);
    let params: Vec<_> = (0..store.len()).map(dlinfma_nn::ParamId).collect();
    let input = Tensor::randn(vec![4, 5], 0.7, &mut r);
    assert_grads(&mut store, &params, &mut |g, s| {
        let x = g.constant(input.clone());
        let y = layer.forward(g, s, x);
        g.sum(y)
    });
}

#[test]
fn grad_layernorm_layer() {
    let mut store = ParamStore::new();
    let mut r = rng(11);
    let ln = LayerNorm::new(&mut store, "ln", 4);
    let params: Vec<_> = (0..store.len()).map(dlinfma_nn::ParamId).collect();
    let input = Tensor::randn(vec![3, 4], 1.0, &mut r);
    let weights = Tensor::randn(vec![3, 4], 1.0, &mut r);
    assert_grads(&mut store, &params, &mut |g, s| {
        let x = g.constant(input.clone());
        let w = g.constant(weights.clone());
        let y = ln.forward(g, s, x);
        let y = g.mul(y, w);
        g.sum(y)
    });
}

#[test]
fn grad_attention_layer() {
    let mut store = ParamStore::new();
    let mut r = rng(12);
    let attn = MultiHeadSelfAttention::new(&mut store, "mha", 8, 2, &mut r);
    let params: Vec<_> = (0..store.len()).map(dlinfma_nn::ParamId).collect();
    let input = Tensor::randn(vec![5, 8], 0.7, &mut r);
    assert_grads(&mut store, &params, &mut |g, s| {
        let x = g.constant(input.clone());
        let y = attn.forward(g, s, x);
        let t = g.tanh(y);
        g.sum(t)
    });
}

#[test]
fn grad_transformer_encoder() {
    let mut store = ParamStore::new();
    let mut r = rng(13);
    let enc = TransformerEncoder::new(&mut store, "enc", 2, 8, 2, 16, 0.0, &mut r);
    let params: Vec<_> = (0..store.len()).map(dlinfma_nn::ParamId).collect();
    let input = Tensor::randn(vec![4, 8], 0.5, &mut r);
    assert_grads(&mut store, &params, &mut |g, s| {
        let mut dummy = rng(99); // dropout disabled; rng unused deterministically
        let x = g.constant(input.clone());
        let y = enc.forward(g, s, x, false, &mut dummy);
        let t = g.tanh(y);
        g.sum(t)
    });
}

#[test]
fn grad_lstm() {
    let mut store = ParamStore::new();
    let mut r = rng(14);
    let lstm = Lstm::new(&mut store, "lstm", 3, 4, &mut r);
    let params: Vec<_> = (0..store.len()).map(dlinfma_nn::ParamId).collect();
    let input = Tensor::randn(vec![5, 3], 0.7, &mut r);
    assert_grads(&mut store, &params, &mut |g, s| {
        let x = g.constant(input.clone());
        let h = lstm.forward(g, s, x);
        let t = g.tanh(h);
        g.sum(t)
    });
}

#[test]
fn grad_embedding_layer() {
    let mut store = ParamStore::new();
    let mut r = rng(15);
    let emb = Embedding::new(&mut store, "emb", 6, 3, &mut r);
    let params: Vec<_> = (0..store.len()).map(dlinfma_nn::ParamId).collect();
    assert_grads(&mut store, &params, &mut |g, s| {
        let e = emb.forward(g, s, 4);
        let t = g.tanh(e);
        g.sum(t)
    });
}

#[test]
fn grad_conv_layer() {
    let mut store = ParamStore::new();
    let mut r = rng(16);
    let conv = Conv2d::new(&mut store, "conv", 1, 2, 3, 1, false, &mut r);
    let params: Vec<_> = (0..store.len()).map(dlinfma_nn::ParamId).collect();
    let input = Tensor::randn(vec![1, 6, 6], 0.5, &mut r);
    assert_grads(&mut store, &params, &mut |g, s| {
        let x = g.constant(input.clone());
        let y = conv.forward(g, s, x);
        let t = g.tanh(y);
        g.sum(t)
    });
}
