//! The UNet-based baseline (paper ref [20], adapted per Section V-B).
//!
//! Each address's annotated locations are rasterized onto a 9×9 grid of
//! cells centered at the cell containing the most annotations; a small
//! encoder-decoder CNN with a skip connection scores all 81 cells and the
//! center of the argmax cell is the inferred location. Following the paper,
//! the customer-location channel of the original method is dropped.
//!
//! **Substitution note:** the paper uses GeoHash-8 cells (≈ 32 m × 19 m at
//! Beijing's latitude); this implementation uses an axis-aligned 32 m × 19 m
//! grid in the local metric frame, which has identical cell geometry without
//! the lat/lng roundtrip. The 9×9 window and the failure modes the paper
//! reports (truth outside the window, cell-center quantization error) are
//! preserved exactly.

use crate::annotated::AnnotatedLocations;
use dlinfma_geo::Point;
use dlinfma_nn::layers::Conv2d;
use dlinfma_nn::{Adam, Graph, ParamStore, Tensor};
use dlinfma_synth::AddressId;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use std::collections::HashMap;

/// Grid geometry: paper-reported GeoHash-8 cell size at Beijing.
pub const CELL_W_M: f64 = 32.0;
/// North-south cell extent.
pub const CELL_H_M: f64 = 19.0;
/// Window edge in cells.
pub const GRID: usize = 9;

/// UNet-baseline hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct UNetConfig {
    /// Channels of the first encoder conv.
    pub channels: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for UNetConfig {
    fn default() -> Self {
        Self {
            channels: 8,
            lr: 3e-3,
            batch_size: 16,
            epochs: 15,
            seed: 0,
        }
    }
}

/// One rasterized address: the 9×9 density image and its window origin.
#[derive(Debug, Clone)]
pub struct Raster {
    /// Normalized annotation counts, row-major `[GRID * GRID]`.
    pub image: Vec<f32>,
    /// Cell indices `(cx, cy)` of the window's south-west cell.
    pub origin: (i64, i64),
}

/// Rasterizes one address's annotations; `None` when it has none.
pub fn rasterize(pts: &[Point]) -> Option<Raster> {
    if pts.is_empty() {
        return None;
    }
    let cell = |p: &Point| -> (i64, i64) {
        (
            (p.x / CELL_W_M).floor() as i64,
            (p.y / CELL_H_M).floor() as i64,
        )
    };
    // Anchor: the cell holding the most annotations.
    let mut counts: HashMap<(i64, i64), u32> = HashMap::new();
    for p in pts {
        *counts.entry(cell(p)).or_default() += 1;
    }
    let (&anchor, _) = counts
        .iter()
        .max_by_key(|(c, n)| (**n, std::cmp::Reverse(**c)))
        .expect("non-empty");
    let half = (GRID / 2) as i64;
    let origin = (anchor.0 - half, anchor.1 - half);
    let mut image = vec![0.0f32; GRID * GRID];
    for p in pts {
        let (cx, cy) = cell(p);
        let ox = cx - origin.0;
        let oy = cy - origin.1;
        if (0..GRID as i64).contains(&ox) && (0..GRID as i64).contains(&oy) {
            image[(oy as usize) * GRID + ox as usize] += 1.0;
        }
    }
    let max = image.iter().copied().fold(0.0f32, f32::max).max(1.0);
    for v in &mut image {
        *v /= max;
    }
    Some(Raster { image, origin })
}

impl Raster {
    /// Cell index (0..81) containing `p`, when inside the window.
    pub fn cell_of(&self, p: &Point) -> Option<usize> {
        let cx = (p.x / CELL_W_M).floor() as i64 - self.origin.0;
        let cy = (p.y / CELL_H_M).floor() as i64 - self.origin.1;
        if (0..GRID as i64).contains(&cx) && (0..GRID as i64).contains(&cy) {
            Some((cy as usize) * GRID + cx as usize)
        } else {
            None
        }
    }

    /// Center of window cell `idx` in the metric frame.
    pub fn cell_center(&self, idx: usize) -> Point {
        let cx = self.origin.0 + (idx % GRID) as i64;
        let cy = self.origin.1 + (idx / GRID) as i64;
        Point::new((cx as f64 + 0.5) * CELL_W_M, (cy as f64 + 0.5) * CELL_H_M)
    }
}

/// The fitted UNet-style baseline.
pub struct UNetBaseline {
    store: ParamStore,
    enc1: Conv2d,
    enc2: Conv2d,
    dec: Conv2d,
    head: Conv2d,
}

impl UNetBaseline {
    fn build(cfg: &UNetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let c = cfg.channels;
        let enc1 = Conv2d::new(&mut store, "enc1", 1, c, 3, 1, true, &mut rng);
        let enc2 = Conv2d::new(&mut store, "enc2", c, 2 * c, 3, 1, true, &mut rng);
        let dec = Conv2d::new(&mut store, "dec", 2 * c, c, 3, 1, true, &mut rng);
        let head = Conv2d::new(&mut store, "head", c, 1, 3, 1, false, &mut rng);
        Self {
            store,
            enc1,
            enc2,
            dec,
            head,
        }
    }

    fn forward(&self, g: &mut Graph, image: &[f32]) -> dlinfma_nn::Var {
        let x = g.constant(Tensor::new(vec![1, GRID, GRID], image.to_vec()));
        let c1 = self.enc1.forward(g, &self.store, x);
        let c2 = self.enc2.forward(g, &self.store, c1);
        let d = self.dec.forward(g, &self.store, c2);
        // Skip connection (UNet style): fuse encoder and decoder features.
        let skip = g.add(c1, d);
        let logits = self.head.forward(g, &self.store, skip);
        g.reshape(logits, vec![GRID * GRID])
    }

    /// Trains on addresses whose ground-truth cell is inside their window.
    pub fn fit(
        ann: &AnnotatedLocations,
        train: &[AddressId],
        gt: &HashMap<AddressId, Point>,
        cfg: &UNetConfig,
    ) -> Self {
        let mut model = Self::build(cfg);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));

        let mut samples: Vec<(Vec<f32>, usize)> = Vec::new();
        for &a in train {
            let Some(raster) = rasterize(ann.of(a)) else {
                continue;
            };
            let Some(&truth) = gt.get(&a) else { continue };
            let Some(target) = raster.cell_of(&truth) else {
                continue; // truth escaped the window — unlearnable sample
            };
            samples.push((raster.image, target));
        }

        let mut adam = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            let mut order: Vec<usize> = (0..samples.len()).collect();
            order.shuffle(&mut rng);
            for batch in order.chunks(cfg.batch_size) {
                model.store.zero_grads();
                for &i in batch {
                    let (image, target) = &samples[i];
                    let mut g = Graph::new();
                    let logits = model.forward(&mut g, image);
                    let loss = g.softmax_cross_entropy_1d(logits, *target);
                    let grads = g.backward(loss);
                    for (pid, grad) in g.param_grads(&grads) {
                        model.store.accumulate_grad(pid, grad);
                    }
                }
                adam.step(&mut model.store, batch.len(), 1.0);
            }
        }
        model
    }

    /// Infers the delivery location of one address.
    pub fn infer(&self, ann: &AnnotatedLocations, addr: AddressId) -> Option<Point> {
        let raster = rasterize(ann.of(addr))?;
        let mut g = Graph::new();
        let logits = self.forward(&mut g, &raster.image);
        let vals = g.value(logits);
        let best = vals
            .data()
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)?;
        Some(raster.cell_center(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rasterize_empty_is_none() {
        assert!(rasterize(&[]).is_none());
    }

    #[test]
    fn raster_window_centered_on_densest_cell() {
        let pts = vec![
            Point::new(100.0, 100.0),
            Point::new(101.0, 101.0),
            Point::new(102.0, 99.0),
            Point::new(500.0, 500.0),
        ];
        let r = rasterize(&pts).unwrap();
        // The anchor cell contains (100,100); window center cell index 40.
        let center_idx = (GRID / 2) * GRID + GRID / 2;
        let c = r.cell_center(center_idx);
        assert!(c.distance(&Point::new(100.0, 100.0)) < 40.0);
        // Dense cell has max intensity 1.0 somewhere.
        assert!(r.image.iter().any(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn cell_roundtrip() {
        let pts = vec![Point::new(10.0, 10.0)];
        let r = rasterize(&pts).unwrap();
        let idx = r.cell_of(&Point::new(10.0, 10.0)).unwrap();
        let center = r.cell_center(idx);
        assert!((center.x - 10.0).abs() <= CELL_W_M);
        assert!((center.y - 10.0).abs() <= CELL_H_M);
        // Far point is outside the window.
        assert!(r.cell_of(&Point::new(1e5, 1e5)).is_none());
    }

    #[test]
    fn unet_learns_to_find_offset_truth() {
        // Synthetic task: annotations cluster at the window center but the
        // truth is consistently 2 cells east — the model must learn the bias.
        let mut rng = StdRng::seed_from_u64(0);
        use rand::Rng;
        let mut parts = Vec::new();
        let mut gt = HashMap::new();
        for i in 0..80u32 {
            let base = Point::new(rng.gen_range(0.0..5_000.0), rng.gen_range(0.0..5_000.0));
            let pts: Vec<Point> = (0..5)
                .map(|_| {
                    Point::new(
                        base.x + rng.gen_range(-3.0..3.0),
                        base.y + rng.gen_range(-3.0..3.0),
                    )
                })
                .collect();
            gt.insert(AddressId(i), Point::new(base.x + 2.0 * CELL_W_M, base.y));
            parts.push((AddressId(i), pts));
        }
        let ann = AnnotatedLocations::from_parts(parts);
        let train: Vec<AddressId> = (0..60).map(AddressId).collect();
        let test: Vec<AddressId> = (60..80).map(AddressId).collect();
        let cfg = UNetConfig {
            epochs: 12,
            ..UNetConfig::default()
        };
        let model = UNetBaseline::fit(&ann, &train, &gt, &cfg);
        let mut close = 0;
        for &a in &test {
            let p = model.infer(&ann, a).unwrap();
            if p.distance(&gt[&a]) < 50.0 {
                close += 1;
            }
        }
        assert!(close >= 14, "UNet found {close}/20 offset truths");
    }
}
