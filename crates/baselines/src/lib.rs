#![warn(missing_docs)]
//! Baselines and ablation variants from the paper's Section V-B.
//!
//! Annotation-based baselines ([`annotated`] derives their input from
//! confirmation timestamps):
//!
//! * Geocoding, Annotation, GeoCloud ([`simple`]);
//! * GeoRank — pairwise ranking over annotated locations ([`georank`]);
//! * UNet-based — 9×9 raster semantic segmentation ([`unet`]).
//!
//! Candidate-based heuristics ([`simple`]): MinDist, MaxTC, MaxTC-ILC.
//!
//! DLInfMA variants sharing the paper's candidate generation and features:
//!
//! * DLInfMA-GBDT / -RF / -MLP — independent classification ([`classif`]);
//! * DLInfMA-RkDT / -RkNet — pairwise ranking ([`ranking`]);
//! * DLInfMA-PN — LSTM instead of the transformer ([`pn`]);
//! * DLInfMA-Grid — grid-merging candidates (via
//!   `dlinfma_core::PoolMethod::Grid`).

pub mod annotated;
pub mod classif;
pub mod georank;
pub mod pn;
pub mod ranking;
pub mod simple;
pub mod unet;

pub use annotated::AnnotatedLocations;
pub use classif::{ClassifierKind, ClassifierVariant, MlpClassifier};
pub use georank::GeoRank;
pub use pn::{PnConfig, PnMatcher};
pub use ranking::{RankerKind, RankingVariant};
pub use simple::{
    annotation, geocloud, geocoding, max_tc, max_tc_ilc, min_dist, PrecomputedInference,
};
pub use unet::{rasterize, Raster, UNetBaseline, UNetConfig, CELL_H_M, CELL_W_M, GRID};
