//! Classification-based DLInfMA variants (Section V-B):
//! DLInfMA-GBDT, DLInfMA-RF and DLInfMA-MLP.
//!
//! Same candidate generation and features as DLInfMA, but each candidate is
//! classified *independently* as "is / is not the delivery location"
//! (class weights 8:2 per the paper) and the highest-probability candidate
//! wins. The paper shows this underperforms LocMatcher because candidates
//! are never considered jointly.

use dlinfma_core::{AddressSample, CandidatePool, FeatureConfig};
use dlinfma_geo::Point;
use dlinfma_ml::{FeatureMatrix, Gbdt, GbdtConfig, RandomForest, RandomForestConfig};
use dlinfma_nn::layers::{Activation, Dense};
use dlinfma_nn::{Adam, Graph, ParamStore, Tensor};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// Which classifier backs the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifierKind {
    /// Gradient-boosted trees, 150 stages (DLInfMA-GBDT).
    Gbdt,
    /// Random forest, 400 trees of depth 10 (DLInfMA-RF).
    RandomForest,
    /// One-hidden-layer MLP with 16 neurons (DLInfMA-MLP).
    Mlp,
}

impl ClassifierKind {
    /// Name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierKind::Gbdt => "DLInfMA-GBDT",
            ClassifierKind::RandomForest => "DLInfMA-RF",
            ClassifierKind::Mlp => "DLInfMA-MLP",
        }
    }
}

/// A small MLP binary classifier trained with weighted cross-entropy.
pub struct MlpClassifier {
    store: ParamStore,
    hidden: Dense,
    out: Dense,
}

impl MlpClassifier {
    /// Fits the paper's MLP variant (1 hidden layer, 16 neurons).
    pub fn fit(x: &FeatureMatrix, labels: &[bool], class_weights: (f32, f32), seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let hidden = Dense::new(&mut store, "h", x.n_cols(), 16, Activation::Relu, &mut rng);
        let out = Dense::new(&mut store, "o", 16, 2, Activation::Identity, &mut rng);
        let mut model = Self { store, hidden, out };
        let mut adam = Adam::new(3e-3);
        let mut order: Vec<usize> = (0..x.n_rows()).collect();
        for _ in 0..10 {
            order.shuffle(&mut rng);
            for batch in order.chunks(32) {
                model.store.zero_grads();
                for &i in batch {
                    let mut g = Graph::new();
                    let input = g.constant(Tensor::new(vec![1, x.n_cols()], x.row(i).to_vec()));
                    let h = model.hidden.forward(&mut g, &model.store, input);
                    let logits2d = model.out.forward(&mut g, &model.store, h);
                    let logits = g.reshape(logits2d, vec![2]);
                    let target = usize::from(labels[i]);
                    let raw = g.softmax_cross_entropy_1d(logits, target);
                    let w = if labels[i] {
                        class_weights.1
                    } else {
                        class_weights.0
                    };
                    let loss = g.scale(raw, w);
                    let grads = g.backward(loss);
                    for (pid, grad) in g.param_grads(&grads) {
                        model.store.accumulate_grad(pid, grad);
                    }
                }
                adam.step(&mut model.store, batch.len(), 1.0);
            }
        }
        model
    }

    /// Probability of the positive class.
    pub fn predict_proba(&self, row: &[f32]) -> f64 {
        let mut g = Graph::new();
        let input = g.constant(Tensor::new(vec![1, row.len()], row.to_vec()));
        let h = self.hidden.forward(&mut g, &self.store, input);
        let logits = self.out.forward(&mut g, &self.store, h);
        let v = g.value(logits);
        let (a, b) = (v.at2(0, 0), v.at2(0, 1));
        let m = a.max(b);
        let (ea, eb) = ((a - m).exp(), (b - m).exp());
        f64::from(eb / (ea + eb))
    }
}

enum Model {
    Gbdt(Gbdt),
    Forest(RandomForest),
    Mlp(MlpClassifier),
}

/// A fitted classification variant.
pub struct ClassifierVariant {
    kind: ClassifierKind,
    model: Model,
    fcfg: FeatureConfig,
}

impl ClassifierVariant {
    /// Trains on labelled samples (one row per candidate, class weight 8:2).
    pub fn fit(
        samples: &[AddressSample],
        fcfg: FeatureConfig,
        kind: ClassifierKind,
        seed: u64,
    ) -> Self {
        let mut rows: Vec<Vec<f32>> = Vec::new();
        let mut labels: Vec<bool> = Vec::new();
        for s in samples {
            let Some(pos) = s.label else { continue };
            for (i, f) in s.features.iter().enumerate() {
                rows.push(f.to_vec(&fcfg));
                labels.push(i == pos);
            }
        }
        let x = FeatureMatrix::from_rows(&rows);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = match kind {
            ClassifierKind::Gbdt => Model::Gbdt(Gbdt::fit(
                &x,
                &labels,
                &GbdtConfig {
                    n_stages: 150,
                    class_weights: Some((0.2, 0.8)),
                    ..GbdtConfig::default()
                },
                &mut rng,
            )),
            ClassifierKind::RandomForest => Model::Forest(RandomForest::fit(
                &x,
                &labels,
                &RandomForestConfig {
                    // Paper setting is 400 trees; scaled to synthetic data.
                    n_trees: 100,
                    ..RandomForestConfig::default()
                },
                &mut rng,
            )),
            ClassifierKind::Mlp => Model::Mlp(MlpClassifier::fit(&x, &labels, (0.2, 0.8), seed)),
        };
        Self { kind, model, fcfg }
    }

    /// Name of the variant.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn score(&self, row: &[f32]) -> f64 {
        match &self.model {
            Model::Gbdt(m) => m.predict_proba(row),
            Model::Forest(m) => m.predict_proba(row),
            Model::Mlp(m) => m.predict_proba(row),
        }
    }

    /// Highest-probability candidate of a sample.
    pub fn infer_sample(&self, s: &AddressSample, pool: &CandidatePool) -> Option<Point> {
        let best = s
            .features
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                self.score(&a.to_vec(&self.fcfg))
                    .total_cmp(&self.score(&b.to_vec(&self.fcfg)))
            })
            .map(|(i, _)| i)?;
        Some(pool.candidate(s.candidates[best]).pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_core::{DlInfMa, DlInfMaConfig};
    use dlinfma_synth::{generate, spatial_split, Preset, Scale};

    #[test]
    fn all_three_variants_beat_random_selection() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 5);
        let mut dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        dlinfma.label_from_dataset(&ds);
        let split = spatial_split(&ds, 0.7, 0.0);
        let train: Vec<AddressSample> = split
            .train
            .iter()
            .filter_map(|a| dlinfma.sample(*a).cloned())
            .collect();
        let fcfg = FeatureConfig::default();

        for kind in [
            ClassifierKind::Gbdt,
            ClassifierKind::RandomForest,
            ClassifierKind::Mlp,
        ] {
            let model = ClassifierVariant::fit(&train, fcfg, kind, 0);
            let mut err_model = 0.0;
            let mut err_random = 0.0;
            let mut n = 0;
            for &a in &split.test {
                let Some(s) = dlinfma.sample(a) else { continue };
                let Some(p) = model.infer_sample(s, dlinfma.pool()) else {
                    continue;
                };
                let gt = city.addresses[a.0 as usize].true_delivery_location;
                // "Random" baseline: the first retrieved candidate.
                let random = dlinfma.pool().candidate(s.candidates[0]).pos;
                err_model += p.distance(&gt);
                err_random += random.distance(&gt);
                n += 1;
            }
            assert!(n > 0);
            assert!(
                err_model < err_random,
                "{}: {:.1}m !< first-candidate {:.1}m",
                kind.name(),
                err_model / n as f64,
                err_random / n as f64
            );
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ClassifierKind::Gbdt.name(), "DLInfMA-GBDT");
        assert_eq!(ClassifierKind::RandomForest.name(), "DLInfMA-RF");
        assert_eq!(ClassifierKind::Mlp.name(), "DLInfMA-MLP");
    }
}
