//! Geocoding, Annotation, GeoCloud and the heuristic candidate-based
//! baselines (MinDist, MaxTC, MaxTC-ILC) — Section V-B.

use crate::annotated::AnnotatedLocations;
use dlinfma_cluster::{dbscan, DbscanConfig};
use dlinfma_core::{AddressSample, CandidatePool};
use dlinfma_geo::{centroid, Point};
use dlinfma_synth::{AddressId, Dataset};
use std::collections::HashMap;

/// A fitted baseline holding one inferred location per address.
///
/// All the simple baselines resolve to a per-address point at fit time;
/// timing-sensitive benchmarks call the `infer_*` free functions instead.
#[derive(Debug, Clone)]
pub struct PrecomputedInference {
    name: &'static str,
    map: HashMap<AddressId, Point>,
}

impl PrecomputedInference {
    /// Method name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Inferred location, or `None` when the method had no evidence.
    pub fn infer(&self, addr: AddressId) -> Option<Point> {
        self.map.get(&addr).copied()
    }

    /// Number of addresses with an inference.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing was inferred.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// **Geocoding**: the geocoded waybill location is the prediction.
pub fn geocoding(dataset: &Dataset) -> PrecomputedInference {
    PrecomputedInference {
        name: "Geocoding",
        map: dataset
            .addresses
            .iter()
            .map(|a| (a.id, a.geocode))
            .collect(),
    }
}

/// **Annotation** (paper ref [5]): the spatial centroid of the address's
/// annotated locations.
pub fn annotation(ann: &AnnotatedLocations) -> PrecomputedInference {
    let map = ann
        .addresses()
        .filter_map(|a| centroid(ann.of(a)).map(|c| (a, c)))
        .collect();
    PrecomputedInference {
        name: "Annotation",
        map,
    }
}

/// **GeoCloud** (paper ref [19]): DBSCAN over the annotated locations and
/// the centroid of the biggest cluster (min_pts = 1 per the paper, so even
/// single-delivery addresses cluster).
pub fn geocloud(ann: &AnnotatedLocations, eps_m: f64) -> PrecomputedInference {
    let cfg = DbscanConfig {
        eps: eps_m,
        min_pts: 1,
    };
    let map = ann
        .addresses()
        .filter_map(|a| {
            let pts = ann.of(a);
            if pts.is_empty() {
                return None;
            }
            let labels = dbscan(pts, &cfg);
            // Count cluster sizes; min_pts = 1 means no noise.
            let mut sizes: HashMap<usize, Vec<Point>> = HashMap::new();
            for (p, l) in pts.iter().zip(&labels) {
                if let Some(c) = l {
                    sizes.entry(*c).or_default().push(*p);
                }
            }
            let biggest = sizes
                .into_iter()
                .max_by_key(|(c, v)| (v.len(), usize::MAX - c))?
                .1;
            centroid(&biggest).map(|c| (a, c))
        })
        .collect();
    PrecomputedInference {
        name: "GeoCloud",
        map,
    }
}

/// Per-address candidate inference used by MinDist / MaxTC / MaxTC-ILC.
fn from_samples(
    name: &'static str,
    samples: &[AddressSample],
    pool: &CandidatePool,
    pick: impl Fn(&AddressSample) -> Option<usize>,
) -> PrecomputedInference {
    let map = samples
        .iter()
        .filter_map(|s| {
            let idx = pick(s)?;
            Some((s.address, pool.candidate(s.candidates[idx]).pos))
        })
        .collect();
    PrecomputedInference { name, map }
}

/// **MinDist**: the candidate nearest the geocoded location.
pub fn min_dist(samples: &[AddressSample], pool: &CandidatePool) -> PrecomputedInference {
    from_samples("MinDist", samples, pool, |s| {
        argmin_by(&s.features, |f| (f.distance_m, 0.0))
    })
}

/// **MaxTC**: the candidate with the highest trip coverage. Ties (common
/// with few deliveries, where many candidates reach TC = 1) resolve to the
/// lowest candidate id — the paper reports this heuristic among the worst
/// precisely because TC alone cannot separate such candidates.
pub fn max_tc(samples: &[AddressSample], pool: &CandidatePool) -> PrecomputedInference {
    from_samples("MaxTC", samples, pool, |s| {
        argmin_by(&s.features, |f| (-f.trip_coverage, 0.0))
    })
}

/// **MaxTC-ILC** (Equation 5): highest `TC * (1 / LC)` — TF-IDF-style
/// penalization of commonly-visited locations. `LC = 0` means the location
/// is *never* visited off-building, the strongest possible signal, so the
/// ratio is treated as infinite via a small floor; ties break toward the
/// geocode.
pub fn max_tc_ilc(samples: &[AddressSample], pool: &CandidatePool) -> PrecomputedInference {
    // LC is Laplace-smoothed: with sparse data many candidates have LC = 0
    // (never observed off-building), and a raw 1/LC would rank them all
    // "infinitely" good regardless of TC. The 0.05 floor corresponds to one
    // phantom off-building visit in twenty trips.
    from_samples("MaxTC-ILC", samples, pool, |s| {
        argmin_by(&s.features, |f| {
            (-(f.trip_coverage / (f.location_commonality + 0.05)), 0.0)
        })
    })
}

fn argmin_by(
    features: &[dlinfma_core::CandidateFeatures],
    key: impl Fn(&dlinfma_core::CandidateFeatures) -> (f64, f64),
) -> Option<usize> {
    features
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let (ka, kb) = (key(a), key(b));
            ka.0.total_cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_core::{DlInfMa, DlInfMaConfig};
    use dlinfma_synth::{generate, Preset, Scale};

    fn world() -> (dlinfma_synth::City, Dataset, DlInfMa) {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 0);
        let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        (city, ds, dlinfma)
    }

    #[test]
    fn geocoding_returns_the_geocode() {
        let (_, ds, _) = world();
        let g = geocoding(&ds);
        assert_eq!(g.name(), "Geocoding");
        for a in &ds.addresses {
            assert_eq!(g.infer(a.id), Some(a.geocode));
        }
    }

    #[test]
    fn annotation_is_centroid_of_annotations() {
        let (_, ds, _) = world();
        let ann = AnnotatedLocations::from_dataset(&ds);
        let m = annotation(&ann);
        for a in ann.addresses() {
            let expect = centroid(ann.of(a)).unwrap();
            let got = m.infer(a).unwrap();
            assert!(got.distance(&expect) < 1e-9);
        }
    }

    #[test]
    fn geocloud_picks_the_dense_cluster() {
        // Hand-built annotations: 3 points near the origin, 1 far outlier
        // (a delayed confirmation). GeoCloud must ignore the outlier;
        // Annotation gets dragged toward it.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(0.0, 5.0),
            Point::new(400.0, 400.0),
        ];
        let ann = AnnotatedLocations::from_parts(vec![(AddressId(0), pts.to_vec())]);
        let gc = geocloud(&ann, 20.0).infer(AddressId(0)).unwrap();
        let an = annotation(&ann).infer(AddressId(0)).unwrap();
        assert!(
            gc.distance(&Point::new(1.67, 1.67)) < 1.0,
            "geocloud at {gc:?}"
        );
        assert!(
            an.distance(&Point::new(101.25, 101.25)) < 1.0,
            "annotation at {an:?}"
        );
    }

    #[test]
    fn min_dist_picks_nearest_candidate_to_geocode() {
        let (_, ds, dlinfma) = world();
        let samples: Vec<_> = dlinfma.samples().cloned().collect();
        let m = min_dist(&samples, dlinfma.pool());
        for s in &samples {
            if s.candidates.is_empty() {
                continue;
            }
            let got = m.infer(s.address).unwrap();
            let best = s
                .features
                .iter()
                .map(|f| f.distance_m)
                .fold(f64::MAX, f64::min);
            assert!((got.distance(&ds.address(s.address).geocode) - best).abs() < 1e-6);
        }
    }

    #[test]
    fn max_tc_ilc_penalizes_common_locations() {
        let (_, _, dlinfma) = world();
        let samples: Vec<_> = dlinfma.samples().cloned().collect();
        let tc = max_tc(&samples, dlinfma.pool());
        let tcilc = max_tc_ilc(&samples, dlinfma.pool());
        assert_eq!(tc.len(), tcilc.len());
        // They must disagree somewhere: common corridor stays attract MaxTC.
        let differing = samples
            .iter()
            .filter(|s| tc.infer(s.address) != tcilc.infer(s.address))
            .count();
        assert!(differing > 0, "TC and TC-ILC should differ on some address");
    }
}
