//! Annotated-location derivation.
//!
//! Annotation-based baselines (Annotation, GeoCloud, GeoRank, UNet-based)
//! consume the courier's position *at the moment the delivery was
//! confirmed*. Following the paper ("the annotated locations could be easily
//! generated based on the trajectory data (based on the time stamps of
//! confirmed deliveries)"), we interpolate each trip's trajectory at the
//! waybill's recorded delivery time. When confirmations are delayed, these
//! annotations drift away from the true delivery location — the failure mode
//! DLInfMA is designed to survive.

use dlinfma_detcol::OrdMap;
use dlinfma_geo::Point;
use dlinfma_synth::{AddressId, Dataset};

/// Per-address annotated delivery locations.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedLocations {
    per_address: OrdMap<AddressId, Vec<Point>>,
}

impl AnnotatedLocations {
    /// Derives annotations for every waybill in the dataset.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let mut per_address: OrdMap<AddressId, Vec<Point>> = OrdMap::new();
        for w in &dataset.waybills {
            let trip = dataset.trip(w.trip);
            if let Some(pos) = trip.trajectory.position_at(w.t_recorded_delivery) {
                per_address.entry(w.address).or_default().push(pos);
            }
        }
        Self { per_address }
    }

    /// Builds from explicit per-address annotation lists (tests, tools).
    pub fn from_parts(parts: Vec<(AddressId, Vec<Point>)>) -> Self {
        Self {
            per_address: parts.into_iter().collect(),
        }
    }

    /// Annotated locations of one address (empty slice when none).
    pub fn of(&self, addr: AddressId) -> &[Point] {
        self.per_address.get(&addr).map_or(&[], Vec::as_slice)
    }

    /// Addresses with at least one annotation, ascending by id.
    pub fn addresses(&self) -> impl Iterator<Item = AddressId> + '_ {
        self.per_address.keys().copied()
    }

    /// Number of annotated addresses.
    pub fn len(&self) -> usize {
        self.per_address.len()
    }

    /// True when no annotations exist.
    pub fn is_empty(&self) -> bool {
        self.per_address.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{generate, generate_with, world_config, DelayConfig, Preset, Scale};

    #[test]
    fn every_waybill_contributes_an_annotation() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 0);
        let ann = AnnotatedLocations::from_dataset(&ds);
        let total: usize = ann.addresses().map(|a| ann.of(a).len()).sum();
        assert_eq!(total, ds.waybills.len());
    }

    #[test]
    fn without_delays_annotations_are_near_truth() {
        let mut cfg = world_config(Preset::DowBJ, Scale::Tiny);
        cfg.delays = DelayConfig::none();
        let (city, ds) = generate_with(&cfg, 1);
        let ann = AnnotatedLocations::from_dataset(&ds);
        let mut close = 0;
        let mut n = 0;
        for a in ann.addresses() {
            let gt = city.addresses[a.0 as usize].true_delivery_location;
            for p in ann.of(a) {
                n += 1;
                if p.distance(&gt) < 30.0 {
                    close += 1;
                }
            }
        }
        assert!(close * 10 >= n * 8, "{close}/{n} annotations near truth");
    }

    #[test]
    fn with_full_delays_annotations_drift() {
        let mut cfg = world_config(Preset::DowBJ, Scale::Tiny);
        cfg.delays = DelayConfig::sweep(1.0);
        let (city, ds) = generate_with(&cfg, 1);
        let ann = AnnotatedLocations::from_dataset(&ds);
        let mut far = 0;
        let mut n = 0;
        for a in ann.addresses() {
            let gt = city.addresses[a.0 as usize].true_delivery_location;
            for p in ann.of(a) {
                n += 1;
                if p.distance(&gt) > 50.0 {
                    far += 1;
                }
            }
        }
        assert!(far * 10 >= n * 2, "only {far}/{n} annotations drifted");
    }

    #[test]
    fn unknown_address_has_no_annotations() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 2);
        let ann = AnnotatedLocations::from_dataset(&ds);
        assert!(ann.of(AddressId(u32::MAX - 1)).is_empty());
    }
}
