//! Pairwise-ranking DLInfMA variants (Section V-B):
//! DLInfMA-RkDT (decision-tree base learner) and DLInfMA-RkNet (RankNet).
//!
//! Same candidates and features as DLInfMA, but the model judges candidate
//! *pairs* and inference aggregates round-robin wins. The paper shows
//! ranking beats independent classification (it models pairwise relations)
//! but still loses to LocMatcher (which considers all candidates jointly).

use dlinfma_core::{AddressSample, CandidatePool, FeatureConfig};
use dlinfma_geo::Point;
use dlinfma_ml::{make_training_pairs, vote_best, FeatureMatrix, TreeClassifier, TreeConfig};
use dlinfma_nn::layers::{Activation, Dense};
use dlinfma_nn::{Adam, Graph, ParamStore, Tensor};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// Which base learner ranks the pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankerKind {
    /// CART with at most 1024 leaves (DLInfMA-RkDT).
    DecisionTree,
    /// RankNet: a scoring MLP trained on pair preferences (DLInfMA-RkNet).
    RankNet,
}

impl RankerKind {
    /// Name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            RankerKind::DecisionTree => "DLInfMA-RkDT",
            RankerKind::RankNet => "DLInfMA-RkNet",
        }
    }
}

/// RankNet scorer: a 16-unit hidden layer producing a scalar utility; the
/// probability that `a` beats `b` is `sigma(s(a) - s(b))`.
struct RankNet {
    store: ParamStore,
    hidden: Dense,
    out: Dense,
}

impl RankNet {
    fn fit(samples: &[(Vec<f32>, Vec<f32>)], dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let hidden = Dense::new(&mut store, "h", dim, 16, Activation::Relu, &mut rng);
        let out = Dense::new(&mut store, "o", 16, 1, Activation::Identity, &mut rng);
        let mut model = Self { store, hidden, out };
        let mut adam = Adam::new(3e-3);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..10 {
            order.shuffle(&mut rng);
            for batch in order.chunks(32) {
                model.store.zero_grads();
                for &i in batch {
                    let (winner, loser) = &samples[i];
                    let mut g = Graph::new();
                    let sw = model.score_var(&mut g, winner);
                    let sl = model.score_var(&mut g, loser);
                    let pair = g.concat1d(&[sw, sl]);
                    // Cross-entropy on [s_w, s_l] with target 0 is exactly
                    // RankNet's logistic pair loss.
                    let loss = g.softmax_cross_entropy_1d(pair, 0);
                    let grads = g.backward(loss);
                    for (pid, grad) in g.param_grads(&grads) {
                        model.store.accumulate_grad(pid, grad);
                    }
                }
                adam.step(&mut model.store, batch.len(), 1.0);
            }
        }
        model
    }

    fn score_var(&self, g: &mut Graph, row: &[f32]) -> dlinfma_nn::Var {
        let input = g.constant(Tensor::new(vec![1, row.len()], row.to_vec()));
        let h = self.hidden.forward(g, &self.store, input);
        let s = self.out.forward(g, &self.store, h);
        g.reshape(s, vec![1])
    }

    fn score(&self, row: &[f32]) -> f64 {
        let mut g = Graph::new();
        let s = self.score_var(&mut g, row);
        f64::from(g.value(s).item())
    }
}

enum Model {
    Tree(TreeClassifier),
    Net(RankNet),
}

/// A fitted ranking variant.
pub struct RankingVariant {
    kind: RankerKind,
    model: Model,
    fcfg: FeatureConfig,
}

impl RankingVariant {
    /// Trains on labelled samples by forming all positive/negative candidate
    /// pairs per address.
    pub fn fit(
        samples: &[AddressSample],
        fcfg: FeatureConfig,
        kind: RankerKind,
        seed: u64,
    ) -> Self {
        let model = match kind {
            RankerKind::DecisionTree => {
                let mut rows: Vec<Vec<f32>> = Vec::new();
                let mut labels: Vec<bool> = Vec::new();
                for s in samples {
                    let Some(pos) = s.label else { continue };
                    if s.features.len() < 2 {
                        continue;
                    }
                    let feats = FeatureMatrix::from_rows(
                        &s.features
                            .iter()
                            .map(|f| f.to_vec(&fcfg))
                            .collect::<Vec<_>>(),
                    );
                    make_training_pairs(&feats, pos, &mut rows, &mut labels);
                }
                let x = FeatureMatrix::from_rows(&rows);
                Model::Tree(TreeClassifier::fit(
                    &x,
                    &labels,
                    None,
                    &TreeConfig {
                        max_leaf_nodes: 1024,
                        max_depth: 20,
                        ..TreeConfig::default()
                    },
                    None as Option<&mut StdRng>,
                ))
            }
            RankerKind::RankNet => {
                let mut pairs: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
                for s in samples {
                    let Some(pos) = s.label else { continue };
                    let win = s.features[pos].to_vec(&fcfg);
                    for (i, f) in s.features.iter().enumerate() {
                        if i != pos {
                            pairs.push((win.clone(), f.to_vec(&fcfg)));
                        }
                    }
                }
                let dim = dlinfma_core::CandidateFeatures::vec_len(&fcfg);
                Model::Net(RankNet::fit(&pairs, dim, seed))
            }
        };
        Self { kind, model, fcfg }
    }

    /// Name of the variant.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Infers by round-robin voting (tree) or utility argmax (RankNet,
    /// whose scores are transitive by construction).
    pub fn infer_sample(&self, s: &AddressSample, pool: &CandidatePool) -> Option<Point> {
        if s.candidates.is_empty() {
            return None;
        }
        let rows: Vec<Vec<f32>> = s.features.iter().map(|f| f.to_vec(&self.fcfg)).collect();
        let best = match &self.model {
            Model::Tree(clf) => {
                let feats = FeatureMatrix::from_rows(&rows);
                let scorer = |a: &[f32], b: &[f32]| {
                    let mut row = a.to_vec();
                    row.extend_from_slice(b);
                    clf.predict_proba(&row)
                };
                vote_best(&feats, &scorer)?
            }
            Model::Net(net) => rows
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| net.score(a).total_cmp(&net.score(b)))
                .map(|(i, _)| i)?,
        };
        Some(pool.candidate(s.candidates[best]).pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_core::{DlInfMa, DlInfMaConfig};
    use dlinfma_synth::{generate, spatial_split, Preset, Scale};

    #[test]
    fn both_rankers_beat_first_candidate() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 6);
        let mut dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        dlinfma.label_from_dataset(&ds);
        let split = spatial_split(&ds, 0.7, 0.0);
        let train: Vec<AddressSample> = split
            .train
            .iter()
            .filter_map(|a| dlinfma.sample(*a).cloned())
            .collect();
        let fcfg = FeatureConfig::default();

        for kind in [RankerKind::DecisionTree, RankerKind::RankNet] {
            let model = RankingVariant::fit(&train, fcfg, kind, 0);
            let mut err_model = 0.0;
            let mut err_first = 0.0;
            let mut n = 0;
            for &a in &split.test {
                let Some(s) = dlinfma.sample(a) else { continue };
                let Some(p) = model.infer_sample(s, dlinfma.pool()) else {
                    continue;
                };
                let gt = city.addresses[a.0 as usize].true_delivery_location;
                let first = dlinfma.pool().candidate(s.candidates[0]).pos;
                err_model += p.distance(&gt);
                err_first += first.distance(&gt);
                n += 1;
            }
            assert!(n > 0);
            assert!(
                err_model < err_first,
                "{}: {:.1}m !< {:.1}m",
                kind.name(),
                err_model / n as f64,
                err_first / n as f64
            );
        }
    }

    #[test]
    fn empty_sample_is_none() {
        let model = RankingVariant {
            kind: RankerKind::RankNet,
            model: Model::Net(RankNet::fit(&[], 3, 0)),
            fcfg: FeatureConfig::default(),
        };
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 7);
        let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        let empty = AddressSample {
            address: dlinfma_synth::AddressId(0),
            station: dlinfma_synth::StationId(0),
            candidates: vec![],
            features: vec![],
            n_deliveries: 0,
            poi_category: 0,
            geocode: Point::ZERO,
            label: None,
            truth_distances: None,
        };
        assert!(model.infer_sample(&empty, dlinfma.pool()).is_none());
    }
}
