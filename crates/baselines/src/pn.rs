//! DLInfMA-PN: the pointer-network-style variant (Section V-B) that
//! replaces LocMatcher's transformer encoder with an LSTM, as the paper's
//! reference [18] did. The paper shows it loses to the transformer because
//! an LSTM struggles with long-range dependencies across large candidate
//! sets.

use dlinfma_core::{AddressSample, CandidateFeatures, CandidatePool, FeatureConfig, TIME_BINS};
use dlinfma_geo::Point;
use dlinfma_nn::layers::{Activation, Dense, Embedding, Lstm};
use dlinfma_nn::{Adam, Graph, ParamId, ParamStore, StepDecay, Tensor, Var};
use dlinfma_synth::N_POI_CATEGORIES;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// DLInfMA-PN hyperparameters (paper: LSTM with 32 neurons; the rest
/// mirrors LocMatcher).
#[derive(Debug, Clone, Copy)]
pub struct PnConfig {
    /// Time-distribution embedding width.
    pub r_time: usize,
    /// LSTM hidden width (paper: 32).
    pub hidden: usize,
    /// Attention scorer width.
    pub p: usize,
    /// POI embedding width.
    pub poi_embed_dim: usize,
    /// Feature switches.
    pub features: FeatureConfig,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Epoch cap.
    pub max_epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for PnConfig {
    fn default() -> Self {
        Self {
            r_time: 3,
            hidden: 32,
            p: 32,
            poi_embed_dim: 3,
            features: FeatureConfig::default(),
            lr: 3e-3,
            batch_size: 16,
            max_epochs: 30,
            patience: 4,
            seed: 0,
        }
    }
}

/// The fitted pointer-network variant.
pub struct PnMatcher {
    cfg: PnConfig,
    store: ParamStore,
    time_dense: Option<Dense>,
    lstm: Lstm,
    poi_embed: Embedding,
    w: ParamId,
    u: ParamId,
    b: ParamId,
    v: ParamId,
}

impl PnMatcher {
    /// Initializes an untrained model.
    pub fn new(cfg: PnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let time_dense = cfg.features.use_profile.then(|| {
            Dense::new(
                &mut store,
                "time_dense",
                TIME_BINS,
                cfg.r_time,
                Activation::Relu,
                &mut rng,
            )
        });
        let scalars = CandidateFeatures::scalars_len(&cfg.features);
        let input_dim = if cfg.features.use_profile {
            scalars + cfg.r_time
        } else {
            scalars
        };
        let lstm = Lstm::new(&mut store, "lstm", input_dim, cfg.hidden, &mut rng);
        let poi_embed = Embedding::new(
            &mut store,
            "poi_embed",
            N_POI_CATEGORIES,
            cfg.poi_embed_dim,
            &mut rng,
        );
        let w = store.register("score.w", Tensor::xavier(cfg.hidden, cfg.p, &mut rng));
        let u = store.register(
            "score.u",
            Tensor::xavier(cfg.poi_embed_dim + 1, cfg.p, &mut rng),
        );
        let b = store.register_zeros("score.b", vec![cfg.p]);
        let v = store.register("score.v", Tensor::xavier(cfg.p, 1, &mut rng));
        Self {
            cfg,
            store,
            time_dense,
            lstm,
            poi_embed,
            w,
            u,
            b,
            v,
        }
    }

    fn forward(&self, g: &mut Graph, sample: &AddressSample) -> Var {
        let n = sample.candidates.len();
        let fcfg = &self.cfg.features;
        let scalars_flat: Vec<f32> = sample
            .features
            .iter()
            .flat_map(|f| f.scalars(fcfg))
            .collect();
        let scalars_dim = CandidateFeatures::scalars_len(fcfg);
        let scalars = g.constant(Tensor::new(vec![n, scalars_dim], scalars_flat));
        let inputs = if let Some(td) = &self.time_dense {
            let time_flat: Vec<f32> = sample
                .features
                .iter()
                .flat_map(|f| f.time_distribution.iter().map(|&x| x as f32))
                .collect();
            let time = g.constant(Tensor::new(vec![n, TIME_BINS], time_flat));
            let emb = td.forward(g, &self.store, time);
            g.concat_cols(&[scalars, emb])
        } else {
            scalars
        };
        let h = self.lstm.forward(g, &self.store, inputs);

        let w = g.param(self.w, self.store.value(self.w).clone());
        let u = g.param(self.u, self.store.value(self.u).clone());
        let b = g.param(self.b, self.store.value(self.b).clone());
        let v = g.param(self.v, self.store.value(self.v).clone());
        let hw = g.matmul(h, w);
        let poi = self
            .poi_embed
            .forward(g, &self.store, sample.poi_category as usize);
        let nd = g.constant(Tensor::vector(&[(sample.n_deliveries as f32).ln_1p()]));
        let ctx = g.concat1d(&[poi, nd]);
        let ctx_row = g.reshape(ctx, vec![1, self.cfg.poi_embed_dim + 1]);
        let uc = g.matmul(ctx_row, u);
        let uc_flat = g.reshape(uc, vec![self.cfg.p]);
        let pre = g.add_bias_rows(hw, uc_flat);
        let pre = g.add_bias_rows(pre, b);
        let t = g.tanh(pre);
        let s = g.matmul(t, v);
        g.reshape(s, vec![n])
    }

    /// Trains with early stopping on validation loss.
    pub fn train(&mut self, train: &[AddressSample], val: &[AddressSample]) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let usable: Vec<&AddressSample> = train
            .iter()
            .filter(|s| s.label.is_some() && !s.candidates.is_empty())
            .collect();
        let mut adam = Adam::new(self.cfg.lr);
        let decay = StepDecay::paper_defaults();
        let mut best_val = f32::INFINITY;
        let mut best = self.store.snapshot();
        let mut since = 0;
        for epoch in 0..self.cfg.max_epochs {
            let mut order: Vec<usize> = (0..usable.len()).collect();
            order.shuffle(&mut rng);
            for batch in order.chunks(self.cfg.batch_size) {
                self.store.zero_grads();
                for &i in batch {
                    let s = usable[i];
                    let mut g = Graph::new();
                    let logits = self.forward(&mut g, s);
                    let loss = g.softmax_cross_entropy_1d(logits, s.label.expect("filtered"));
                    let grads = g.backward(loss);
                    for (pid, grad) in g.param_grads(&grads) {
                        self.store.accumulate_grad(pid, grad);
                    }
                }
                adam.step(&mut self.store, batch.len(), decay.scale_at(epoch));
            }
            let vl = self.mean_loss(val);
            if vl < best_val - 1e-5 {
                best_val = vl;
                best = self.store.snapshot();
                since = 0;
            } else {
                since += 1;
                if since >= self.cfg.patience {
                    break;
                }
            }
        }
        self.store.restore(&best);
    }

    fn mean_loss(&self, samples: &[AddressSample]) -> f32 {
        let mut total = 0.0;
        let mut n = 0;
        for s in samples {
            let Some(t) = s.label else { continue };
            if s.candidates.is_empty() {
                continue;
            }
            let mut g = Graph::new();
            let logits = self.forward(&mut g, s);
            let loss = g.softmax_cross_entropy_1d(logits, t);
            total += g.value(loss).item();
            n += 1;
        }
        if n == 0 {
            f32::INFINITY
        } else {
            total / n as f32
        }
    }

    /// Predicted delivery location.
    pub fn infer_sample(&self, s: &AddressSample, pool: &CandidatePool) -> Option<Point> {
        if s.candidates.is_empty() {
            return None;
        }
        let mut g = Graph::new();
        let logits = self.forward(&mut g, s);
        let vals = g.value(logits);
        let best = vals
            .data()
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)?;
        Some(pool.candidate(s.candidates[best]).pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_core::{DlInfMa, DlInfMaConfig};
    use dlinfma_synth::{generate, spatial_split, Preset, Scale};

    #[test]
    fn pn_variant_learns() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 8);
        let mut dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        dlinfma.label_from_dataset(&ds);
        let split = spatial_split(&ds, 0.6, 0.2);
        let train: Vec<AddressSample> = split
            .train
            .iter()
            .filter_map(|a| dlinfma.sample(*a).cloned())
            .collect();
        let val: Vec<AddressSample> = split
            .val
            .iter()
            .filter_map(|a| dlinfma.sample(*a).cloned())
            .collect();
        let cfg = PnConfig {
            max_epochs: 10,
            ..PnConfig::default()
        };
        let mut model = PnMatcher::new(cfg);
        model.train(&train, &val);

        // PN is the weakest learned variant in the paper; the robust check
        // is that it learns to beat an untrained selection (first retrieved
        // candidate), not that it beats every baseline at tiny scale.
        let mut err_pn = 0.0;
        let mut err_first = 0.0;
        let mut n = 0;
        for &a in &split.test {
            let Some(s) = dlinfma.sample(a) else { continue };
            let Some(p) = model.infer_sample(s, dlinfma.pool()) else {
                continue;
            };
            let gt = city.addresses[a.0 as usize].true_delivery_location;
            let first = dlinfma.pool().candidate(s.candidates[0]).pos;
            err_pn += p.distance(&gt);
            err_first += first.distance(&gt);
            n += 1;
        }
        assert!(n > 0);
        assert!(
            err_pn < err_first,
            "PN {:.1}m !< first-candidate {:.1}m",
            err_pn / n as f64,
            err_first / n as f64
        );
        let _ = &ds;
    }
}
