//! GeoRank (paper ref [6]): pairwise ranking over *annotated locations*.
//!
//! Each annotated location of an address is a candidate; a decision-tree
//! pairwise ranker (max 1024 leaves, as the paper configures) is trained on
//! candidate pairs and inference picks the candidate that wins the most
//! round-robin comparisons. Because candidates come from annotations only,
//! the method inherits the annotations' mis-annotation errors — the paper's
//! core criticism.

use crate::annotated::AnnotatedLocations;
use dlinfma_geo::Point;
use dlinfma_ml::{make_training_pairs, vote_best, FeatureMatrix, TreeClassifier, TreeConfig};
use dlinfma_synth::{AddressId, Dataset};
use std::collections::HashMap;

/// Per-annotation features: distance to the geocode, mean distance to the
/// address's other annotations (centrality), and local annotation density.
fn annotation_features(pts: &[Point], geocode: Point) -> Vec<Vec<f32>> {
    let n = pts.len();
    pts.iter()
        .enumerate()
        .map(|(i, p)| {
            let mean_other = if n > 1 {
                pts.iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, q)| p.distance(q))
                    .sum::<f64>()
                    / (n - 1) as f64
            } else {
                0.0
            };
            let density = pts
                .iter()
                .filter(|q| p.distance(q) <= dlinfma_params::D_MAX_M)
                .count() as f64
                / n as f64;
            vec![
                (p.distance(&geocode) / 100.0) as f32,
                (mean_other / 100.0) as f32,
                density as f32,
            ]
        })
        .collect()
}

/// A fitted GeoRank model.
pub struct GeoRank {
    clf: TreeClassifier,
}

impl GeoRank {
    /// Trains the pairwise ranker on `train` addresses, with positives taken
    /// as the annotation nearest the ground truth.
    pub fn fit(
        dataset: &Dataset,
        ann: &AnnotatedLocations,
        train: &[AddressId],
        gt: &HashMap<AddressId, Point>,
    ) -> Self {
        let mut rows: Vec<Vec<f32>> = Vec::new();
        let mut labels: Vec<bool> = Vec::new();
        for &a in train {
            let pts = ann.of(a);
            if pts.len() < 2 {
                continue;
            }
            let Some(&truth) = gt.get(&a) else { continue };
            let pos = pts
                .iter()
                .enumerate()
                .min_by(|(_, p), (_, q)| p.distance(&truth).total_cmp(&q.distance(&truth)))
                .map(|(i, _)| i)
                .expect("len >= 2");
            let feats =
                FeatureMatrix::from_rows(&annotation_features(pts, dataset.address(a).geocode));
            make_training_pairs(&feats, pos, &mut rows, &mut labels);
        }
        let x = FeatureMatrix::from_rows(&rows);
        let clf = TreeClassifier::fit(
            &x,
            &labels,
            None,
            &TreeConfig {
                max_leaf_nodes: 1024,
                max_depth: 20,
                ..TreeConfig::default()
            },
            None as Option<&mut rand::rngs::StdRng>,
        );
        Self { clf }
    }

    /// Infers the delivery location of one address by round-robin voting
    /// over its annotated locations.
    pub fn infer(
        &self,
        dataset: &Dataset,
        ann: &AnnotatedLocations,
        addr: AddressId,
    ) -> Option<Point> {
        let pts = ann.of(addr);
        if pts.is_empty() {
            return None;
        }
        if pts.len() == 1 {
            return Some(pts[0]);
        }
        let feats =
            FeatureMatrix::from_rows(&annotation_features(pts, dataset.address(addr).geocode));
        let scorer = |a: &[f32], b: &[f32]| {
            let mut row = a.to_vec();
            row.extend_from_slice(b);
            self.clf.predict_proba(&row)
        };
        vote_best(&feats, &scorer).map(|i| pts[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{generate, spatial_split, Preset, Scale};

    #[test]
    fn georank_beats_plain_centroid_under_delays() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 3);
        let ann = AnnotatedLocations::from_dataset(&ds);
        let split = spatial_split(&ds, 0.7, 0.0);
        let gt: HashMap<AddressId, Point> = city
            .addresses
            .iter()
            .map(|a| (a.id, a.true_delivery_location))
            .collect();
        let model = GeoRank::fit(&ds, &ann, &split.train, &gt);

        let mut err_rank = 0.0;
        let mut err_centroid = 0.0;
        let mut n = 0;
        for &a in &split.test {
            let truth = gt[&a];
            let Some(p) = model.infer(&ds, &ann, a) else {
                continue;
            };
            let c = dlinfma_geo::centroid(ann.of(a)).unwrap();
            err_rank += p.distance(&truth);
            err_centroid += c.distance(&truth);
            n += 1;
        }
        assert!(n > 0);
        // Selecting one annotation should not be much worse than the
        // centroid, and is typically better under batch-delay annotations.
        assert!(
            err_rank <= err_centroid * 1.25,
            "GeoRank {:.1} vs centroid {:.1}",
            err_rank / n as f64,
            err_centroid / n as f64
        );
    }

    #[test]
    fn single_annotation_short_circuits() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 4);
        let ann = AnnotatedLocations::from_parts(vec![(AddressId(0), vec![Point::new(1.0, 2.0)])]);
        let gt: HashMap<AddressId, Point> = city
            .addresses
            .iter()
            .map(|a| (a.id, a.true_delivery_location))
            .collect();
        let model = GeoRank::fit(&ds, &ann, &[], &gt);
        assert_eq!(
            model.infer(&ds, &ann, AddressId(0)),
            Some(Point::new(1.0, 2.0))
        );
        assert_eq!(model.infer(&ds, &ann, AddressId(1)), None);
    }
}
