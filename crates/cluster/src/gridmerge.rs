//! Fixed-grid location generation (the DLInfMA-Grid variant).
//!
//! Space is discretized into `cell x cell` squares and each occupied cell
//! becomes one location (the centroid of its points). The paper observes
//! this produces *more* locations than hierarchical clustering because two
//! stays of the same physical location can straddle a cell boundary — the
//! exact artifact this module intentionally reproduces for the ablation.

use crate::hierarchical::Cluster;
use dlinfma_geo::{centroid, Point};
use std::collections::HashMap;

/// Buckets points into a fixed grid of `cell_size x cell_size` squares; each
/// occupied cell becomes a [`Cluster`] with the cell's points as members.
///
/// # Panics
/// Panics if `cell_size` is not positive and finite.
pub fn grid_clusters(points: &[Point], cell_size: f64) -> Vec<Cluster> {
    assert!(
        cell_size.is_finite() && cell_size > 0.0,
        "cell size must be positive, got {cell_size}"
    );
    let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, p) in points.iter().enumerate() {
        let key = (
            (p.x / cell_size).floor() as i64,
            (p.y / cell_size).floor() as i64,
        );
        cells.entry(key).or_default().push(i);
    }
    let mut out: Vec<Cluster> = cells
        .into_values()
        .filter_map(|members| {
            let pts: Vec<Point> = members.iter().map(|&i| points[i]).collect();
            centroid(&pts).map(|centroid| Cluster {
                centroid,
                weight: members.len(),
                members,
            })
        })
        .collect();
    // Deterministic output order regardless of hash iteration.
    out.sort_by(|a, b| {
        a.centroid
            .x
            .total_cmp(&b.centroid.x)
            .then(a.centroid.y.total_cmp(&b.centroid.y))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::hierarchical_cluster;

    #[test]
    fn empty_input() {
        assert!(grid_clusters(&[], 40.0).is_empty());
    }

    #[test]
    fn points_in_same_cell_merge() {
        let pts = [Point::new(1.0, 1.0), Point::new(5.0, 5.0)];
        let out = grid_clusters(&pts, 40.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].weight, 2);
        assert_eq!(out[0].centroid, Point::new(3.0, 3.0));
    }

    #[test]
    fn boundary_straddling_splits_nearby_points() {
        // Two points 2 m apart on either side of the x = 40 boundary end up
        // in different cells — the artifact the paper reports.
        let pts = [Point::new(39.0, 0.0), Point::new(41.0, 0.0)];
        let grid = grid_clusters(&pts, 40.0);
        assert_eq!(grid.len(), 2);
        let hier = hierarchical_cluster(&pts, 40.0);
        assert_eq!(hier.len(), 1, "hierarchical merges what the grid splits");
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let pts = [
            Point::new(-1.0, -1.0),
            Point::new(-39.0, -39.0),
            Point::new(1.0, 1.0),
        ];
        let out = grid_clusters(&pts, 40.0);
        // (-1,-1) and (-39,-39) share cell (-1,-1); (1,1) is in cell (0,0).
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn members_partition_input() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 17) as f64 * 11.0, (i % 13) as f64 * 7.0))
            .collect();
        let out = grid_clusters(&pts, 25.0);
        let mut seen: Vec<usize> = out.iter().flat_map(|c| c.members.iter().copied()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn grid_never_fewer_locations_than_hierarchical_on_tight_blobs() {
        // Blobs of radius << cell size: hierarchical gives exactly one
        // cluster per blob; the grid may split blobs near boundaries, so its
        // count is >= the hierarchical count.
        let mut pts = Vec::new();
        for bx in 0..5 {
            for by in 0..5 {
                let cx = bx as f64 * 100.0 + 39.0; // deliberately near boundaries
                let cy = by as f64 * 100.0 + 39.0;
                for k in 0..6 {
                    pts.push(Point::new(cx + (k % 3) as f64, cy + (k / 3) as f64));
                }
            }
        }
        let g = grid_clusters(&pts, 40.0).len();
        let h = hierarchical_cluster(&pts, 40.0).len();
        assert!(g >= h, "grid {g} < hierarchical {h}");
    }
}
