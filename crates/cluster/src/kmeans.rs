//! Lloyd's k-means with k-means++ seeding.
//!
//! The paper lists k-means among the clustering methods previously adopted
//! for generating locations from stay points and rejects it because the
//! number of clusters is hard to set. It is implemented here so ablation
//! benches can quantify that claim.

use dlinfma_geo::{centroid, Point};
use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final cluster centers (`<= k`; empty clusters are dropped).
    pub centers: Vec<Point>,
    /// For each input point, the index of its center in `centers`.
    pub assignment: Vec<usize>,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs k-means++ seeded Lloyd iterations until assignments stabilize or
/// `max_iters` is reached.
///
/// Returns `None` when `points` is empty or `k == 0`.
pub fn kmeans<R: Rng>(
    points: &[Point],
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> Option<KMeansResult> {
    if points.is_empty() || k == 0 {
        return None;
    }
    let k = k.min(points.len());

    // k-means++ seeding: first center uniform, then proportional to squared
    // distance from the nearest chosen center.
    let mut centers: Vec<Point> = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())]);
    let mut d2: Vec<f64> = points.iter().map(|p| p.distance_sq(&centers[0])).collect();
    while centers.len() < k {
        // Non-finite weights (a NaN fix poisons its distance) carry no mass
        // in the draw; without the filter a NaN total panics `gen_range`.
        let total: f64 = d2.iter().filter(|w| w.is_finite()).sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with a center; pick any.
            points[rng.gen_range(0..points.len())]
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if !w.is_finite() {
                    continue;
                }
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            points[chosen]
        };
        centers.push(next);
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(p.distance_sq(&next));
        }
    }

    let mut assignment = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = centers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| p.distance_sq(a).total_cmp(&p.distance_sq(b)))
                .map(|(j, _)| j)
                // lint: allow(L2, centers always holds the first seeded center)
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update.
        let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); centers.len()];
        for (i, p) in points.iter().enumerate() {
            buckets[assignment[i]].push(*p);
        }
        for (c, bucket) in centers.iter_mut().zip(&buckets) {
            if let Some(m) = centroid(bucket) {
                *c = m;
            }
        }
    }

    // Drop empty clusters and remap assignments densely.
    let mut counts = vec![0usize; centers.len()];
    for &a in &assignment {
        counts[a] += 1;
    }
    let mut remap = vec![usize::MAX; centers.len()];
    let mut kept = Vec::new();
    for (i, c) in centers.into_iter().enumerate() {
        if counts[i] > 0 {
            remap[i] = kept.len();
            kept.push(c);
        }
    }
    for a in &mut assignment {
        *a = remap[*a];
    }

    Some(KMeansResult {
        centers: kept,
        assignment,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn empty_input_is_none() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(kmeans(&[], 3, 10, &mut rng).is_none());
        assert!(kmeans(&[Point::ZERO], 0, 10, &mut rng).is_none());
    }

    #[test]
    fn k_clamped_to_point_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let res = kmeans(&[Point::ZERO, Point::new(10.0, 0.0)], 5, 10, &mut rng).unwrap();
        assert!(res.centers.len() <= 2);
    }

    #[test]
    fn recovers_two_well_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut pts = Vec::new();
        for _ in 0..50 {
            pts.push(Point::new(
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            ));
        }
        for _ in 0..50 {
            pts.push(Point::new(
                200.0 + rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            ));
        }
        let res = kmeans(&pts, 2, 50, &mut rng).unwrap();
        assert_eq!(res.centers.len(), 2);
        let mut xs: Vec<f64> = res.centers.iter().map(|c| c.x).collect();
        xs.sort_by(f64::total_cmp);
        assert!(xs[0].abs() < 5.0, "center near origin, got {}", xs[0]);
        assert!(
            (xs[1] - 200.0).abs() < 5.0,
            "center near 200, got {}",
            xs[1]
        );
        // First 50 points share a cluster, last 50 the other.
        assert!(res.assignment[..50].iter().all(|&a| a == res.assignment[0]));
        assert!(res.assignment[50..]
            .iter()
            .all(|&a| a == res.assignment[50]));
        assert_ne!(res.assignment[0], res.assignment[50]);
    }

    /// Regression: a NaN fix (corrupt GPS row) must not panic k-means.
    /// The seeding draw skips non-finite weights and `total_cmp` gives NaN
    /// distances a defined order, so Lloyd iterations terminate and every
    /// point still gets an assignment.
    #[test]
    fn nan_coordinates_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pts: Vec<Point> = (0..20)
            .map(|i| Point::new((i % 5) as f64 * 10.0, (i / 5) as f64 * 10.0))
            .collect();
        pts.push(Point::new(f64::NAN, f64::NAN));
        let res = kmeans(&pts, 3, 20, &mut rng).unwrap();
        assert_eq!(res.assignment.len(), pts.len());
        assert!((1..=3).contains(&res.centers.len()));
        for &a in &res.assignment {
            assert!(a < res.centers.len());
        }
    }

    #[test]
    fn assignment_indices_valid_and_dense() {
        let mut rng = StdRng::seed_from_u64(13);
        let pts: Vec<Point> = (0..40)
            .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
            .collect();
        let res = kmeans(&pts, 6, 30, &mut rng).unwrap();
        assert_eq!(res.assignment.len(), 40);
        for &a in &res.assignment {
            assert!(a < res.centers.len());
        }
        // Every kept center has at least one member.
        for c in 0..res.centers.len() {
            assert!(res.assignment.contains(&c));
        }
    }

    #[test]
    fn identical_points_collapse() {
        let mut rng = StdRng::seed_from_u64(17);
        let pts = vec![Point::new(7.0, 7.0); 10];
        let res = kmeans(&pts, 3, 10, &mut rng).unwrap();
        for c in &res.centers {
            assert_eq!(*c, Point::new(7.0, 7.0));
        }
    }
}
