//! Centroid-linkage agglomerative clustering with a distance threshold.
//!
//! This is the clustering method DLInfMA adopts for candidate-pool
//! construction: start with every stay point as its own cluster and
//! repeatedly merge the two clusters whose centroids are closest, until no
//! two centroids are within the distance threshold `D`. The centroid of each
//! final cluster becomes a location candidate.
//!
//! The implementation is grid-accelerated with a lazy-deletion binary heap:
//! merge candidates are only generated between clusters whose centroids are
//! within `D`, which keeps the common case (tens of thousands of stay points
//! spread over a district) near `O(n log n)` instead of the naive `O(n^3)`.

use dlinfma_geo::{GridIndex, Point};
use dlinfma_obs::{self as obs, names};
use dlinfma_pool::Pool;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Below this many input points the parallel initial-pair scan costs more
/// than it saves; [`merge_weighted_pooled`] falls back to the serial scan.
const PARALLEL_PAIR_SCAN_MIN: usize = 512;

/// Heap pops between `cluster/heap-size` trace counter samples inside the
/// merge loop — frequent enough to see the heap drain, cheap enough not to
/// perturb it.
const HEAP_SAMPLE_EVERY: u64 = 1024;

/// Where one merge call spent its time, split between the parallel initial
/// pair scan and the sequential heap merge loop. `scan_cpu_ns` is summed
/// per-chunk worker time (equals `scan_wall_ns` modulo scheduling overhead
/// when serial); the engine aggregates these into the clustering stage's
/// CPU column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Wall-clock time of the initial nearest-pair scan, ns.
    pub scan_wall_ns: u64,
    /// Summed per-chunk CPU time of the scan, ns.
    pub scan_cpu_ns: u64,
    /// Wall-clock time of the heap merge loop, ns.
    pub merge_ns: u64,
    /// Merges performed.
    pub merges: u64,
    /// Stale heap entries skipped by lazy deletion.
    pub stale: u64,
}

impl MergeStats {
    /// Folds another call's stats into this one (the engine sums the
    /// per-dirty-component merges of one ingest).
    pub fn accumulate(&mut self, other: &MergeStats) {
        self.scan_wall_ns += other.scan_wall_ns;
        self.scan_cpu_ns += other.scan_cpu_ns;
        self.merge_ns += other.merge_ns;
        self.merges += other.merges;
        self.stale += other.stale;
    }

    /// Total CPU attributed to the call: scan worker time plus the serial
    /// merge loop.
    pub fn cpu_ns(&self) -> u64 {
        self.scan_cpu_ns + self.merge_ns
    }
}

/// A point with a multiplicity, used for incremental pool merging where an
/// existing candidate summarizes many stay points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedPoint {
    /// Centroid of the mass this entry represents.
    pub pos: Point,
    /// Number of original stay points it summarizes (≥ 1).
    pub weight: usize,
}

impl WeightedPoint {
    /// A unit-weight point.
    pub fn unit(pos: Point) -> Self {
        Self { pos, weight: 1 }
    }
}

/// A cluster produced by [`hierarchical_cluster`] / [`merge_weighted`].
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Weighted centroid of all member mass.
    pub centroid: Point,
    /// Indices into the input slice of the members merged into this cluster.
    pub members: Vec<usize>,
    /// Total weight (number of original stay points).
    pub weight: usize,
}

#[derive(Debug)]
struct Active {
    centroid: Point,
    weight: usize,
    members: Vec<usize>,
    generation: u64,
    alive: bool,
}

/// Heap entry ordered by smallest distance first.
#[derive(Debug, PartialEq)]
struct Pair {
    dist: f64,
    a: usize,
    b: usize,
    a_gen: u64,
    b_gen: u64,
}

impl Eq for Pair {}

impl Ord for Pair {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest distance.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

impl PartialOrd for Pair {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Clusters unit-weight points; see [`merge_weighted`] for the general form.
///
/// Returns clusters whose member lists index into `points`. The union of all
/// member lists is exactly `0..points.len()`.
pub fn hierarchical_cluster(points: &[Point], distance_threshold: f64) -> Vec<Cluster> {
    let weighted: Vec<WeightedPoint> = points.iter().map(|&p| WeightedPoint::unit(p)).collect();
    merge_weighted(&weighted, distance_threshold)
}

/// Clusters weighted points with centroid linkage until no two cluster
/// centroids are closer than `distance_threshold`.
///
/// This single entry point serves both the initial pool construction (all
/// weights 1) and the paper's bi-weekly incremental update: pass the existing
/// candidates (with their accumulated stay-point counts as weights) together
/// with the new batch's points, and the same merge process combines them.
///
/// # Panics
/// Panics if `distance_threshold` is not finite and positive, or any weight
/// is zero.
pub fn merge_weighted(items: &[WeightedPoint], distance_threshold: f64) -> Vec<Cluster> {
    merge_weighted_impl(items, distance_threshold, None).0
}

/// [`merge_weighted`] with the initial nearest-pair scan fanned out over
/// `pool` — the dominant cost on large inputs, where every point queries the
/// grid for its radius-`D` neighbors. The merge loop itself stays
/// sequential (each merge invalidates heap entries), but the heap it starts
/// from is an order-insensitive multiset with a total tie-break order
/// (`Pair`'s `Ord` falls back to indices), so the pooled and serial runs
/// produce bitwise-identical clusters.
pub fn merge_weighted_pooled(
    items: &[WeightedPoint],
    distance_threshold: f64,
    pool: &Pool,
) -> Vec<Cluster> {
    merge_weighted_impl(items, distance_threshold, Some(pool)).0
}

/// [`merge_weighted_pooled`] returning the call's [`MergeStats`] alongside
/// the clusters, for callers that attribute clustering wall/CPU time (the
/// incremental engine, the bench harness).
pub fn merge_weighted_pooled_stats(
    items: &[WeightedPoint],
    distance_threshold: f64,
    pool: &Pool,
) -> (Vec<Cluster>, MergeStats) {
    merge_weighted_impl(items, distance_threshold, Some(pool))
}

fn merge_weighted_impl(
    items: &[WeightedPoint],
    distance_threshold: f64,
    pool: Option<&Pool>,
) -> (Vec<Cluster>, MergeStats) {
    let _span = obs::span(names::CLUSTER_MERGE_WEIGHTED);
    assert!(
        distance_threshold.is_finite() && distance_threshold > 0.0,
        "distance threshold must be positive, got {distance_threshold}"
    );
    assert!(
        items.iter().all(|w| w.weight > 0),
        "weights must be positive"
    );

    let d = distance_threshold;
    let mut active: Vec<Active> = items
        .iter()
        .enumerate()
        .map(|(i, w)| Active {
            centroid: w.pos,
            weight: w.weight,
            members: vec![i],
            generation: 0,
            alive: true,
        })
        .collect();

    // Grid of (cluster id, generation) entries; stale entries are skipped.
    let mut grid: GridIndex<(usize, u64)> = GridIndex::new(d.max(1.0));
    for (i, a) in active.iter().enumerate() {
        grid.insert(a.centroid, (i, 0));
    }

    let collect_neighbors =
        |id: usize, active: &[Active], grid: &GridIndex<(usize, u64)>, out: &mut Vec<Pair>| {
            let me = &active[id];
            grid.for_each_within(&me.centroid, d, |_, &(other, other_gen)| {
                if other == id {
                    return;
                }
                let o = &active[other];
                if !o.alive || o.generation != other_gen {
                    return;
                }
                let dist = me.centroid.distance(&o.centroid);
                if dist < d {
                    out.push(Pair {
                        dist,
                        a: id,
                        b: other,
                        a_gen: me.generation,
                        b_gen: other_gen,
                    });
                }
            });
        };

    // The initial all-points neighbor scan dominates large inputs and is
    // read-only, so it fans out over the pool. The heap is a multiset —
    // which thread found a pair doesn't change what gets popped.
    let mut stats = MergeStats::default();
    let scan_sw = obs::Stopwatch::start();
    let mut heap: BinaryHeap<Pair> = BinaryHeap::new();
    match pool {
        Some(p) if p.threads() > 1 && active.len() >= PARALLEL_PAIR_SCAN_MIN => {
            let ids: Vec<usize> = (0..active.len()).collect();
            let chunk = ids.len().div_ceil(p.threads() * 4).max(1);
            let lists = p.par_chunks(&ids, chunk, |_, ids| {
                let _scan_span = obs::trace_span(names::CLUSTER_PAIR_SCAN);
                let sw = obs::Stopwatch::start();
                let mut local = Vec::new();
                for &id in ids {
                    collect_neighbors(id, &active, &grid, &mut local);
                }
                (local, sw.elapsed_ns())
            });
            for (l, cpu_ns) in lists {
                stats.scan_cpu_ns += cpu_ns;
                heap.extend(l);
            }
        }
        _ => {
            let _scan_span = obs::trace_span(names::CLUSTER_PAIR_SCAN);
            let mut local = Vec::new();
            for id in 0..active.len() {
                collect_neighbors(id, &active, &grid, &mut local);
            }
            heap.extend(local);
            stats.scan_cpu_ns = scan_sw.elapsed_ns();
        }
    }
    stats.scan_wall_ns = scan_sw.elapsed_ns();

    let merge_span = obs::trace_span(names::CLUSTER_MERGE_LOOP);
    let merge_sw = obs::Stopwatch::start();
    let mut n_merges = 0u64;
    let mut n_stale = 0u64;
    let mut n_pops = 0u64;
    let mut scratch: Vec<Pair> = Vec::new();
    while let Some(Pair {
        a, b, a_gen, b_gen, ..
    }) = heap.pop()
    {
        n_pops += 1;
        if n_pops.is_multiple_of(HEAP_SAMPLE_EVERY) {
            obs::trace_counter(names::CLUSTER_HEAP_SIZE, heap.len() as f64);
        }
        if !active[a].alive
            || !active[b].alive
            || active[a].generation != a_gen
            || active[b].generation != b_gen
        {
            n_stale += 1;
            continue; // stale entry
        }
        n_merges += 1;
        // Merge b into a with a weighted centroid.
        let (wa, wb) = (active[a].weight as f64, active[b].weight as f64);
        let new_centroid = Point::new(
            (active[a].centroid.x * wa + active[b].centroid.x * wb) / (wa + wb),
            (active[a].centroid.y * wa + active[b].centroid.y * wb) / (wa + wb),
        );
        let b_members = std::mem::take(&mut active[b].members);
        active[b].alive = false;
        active[a].members.extend(b_members);
        active[a].weight += active[b].weight;
        active[a].centroid = new_centroid;
        active[a].generation += 1;
        let gen = active[a].generation;
        grid.insert(new_centroid, (a, gen));
        scratch.clear();
        collect_neighbors(a, &active, &grid, &mut scratch);
        heap.extend(scratch.drain(..));
    }
    stats.merge_ns = merge_sw.elapsed_ns();
    stats.merges = n_merges;
    stats.stale = n_stale;
    drop(merge_span);

    let out: Vec<Cluster> = active
        .into_iter()
        .filter(|a| a.alive)
        .map(|a| Cluster {
            centroid: a.centroid,
            members: a.members,
            weight: a.weight,
        })
        .collect();
    if obs::enabled() {
        obs::counter(names::CLUSTER_INPUTS).add(items.len() as u64);
        obs::counter(names::CLUSTER_MERGES).add(n_merges);
        obs::counter(names::CLUSTER_STALE_HEAP_ENTRIES).add(n_stale);
        obs::counter(names::CLUSTER_CLUSTERS_OUT).add(out.len() as u64);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn empty_input_gives_no_clusters() {
        assert!(hierarchical_cluster(&[], 40.0).is_empty());
    }

    #[test]
    fn single_point_is_its_own_cluster() {
        let out = hierarchical_cluster(&[Point::new(3.0, 4.0)], 40.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].centroid, Point::new(3.0, 4.0));
        assert_eq!(out[0].members, vec![0]);
        assert_eq!(out[0].weight, 1);
    }

    #[test]
    fn two_close_points_merge() {
        let out = hierarchical_cluster(&[Point::new(0.0, 0.0), Point::new(10.0, 0.0)], 40.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].centroid, Point::new(5.0, 0.0));
        assert_eq!(out[0].weight, 2);
    }

    #[test]
    fn two_far_points_stay_apart() {
        let out = hierarchical_cluster(&[Point::new(0.0, 0.0), Point::new(100.0, 0.0)], 40.0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn threshold_is_exclusive_at_exactly_d() {
        // "until there does not exist two clusters such that the distance of
        // their centroids is smaller than D" — exactly D apart must NOT merge.
        let out = hierarchical_cluster(&[Point::new(0.0, 0.0), Point::new(40.0, 0.0)], 40.0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn closest_pair_merges_first() {
        // Three collinear points: 0, 30, 100. The (0,30) pair merges to
        // centroid 15; 100 is 85 m from it, so it stays separate.
        let out = hierarchical_cluster(
            &[
                Point::new(0.0, 0.0),
                Point::new(30.0, 0.0),
                Point::new(100.0, 0.0),
            ],
            40.0,
        );
        assert_eq!(out.len(), 2);
        let mut centroids: Vec<f64> = out.iter().map(|c| c.centroid.x).collect();
        centroids.sort_by(f64::total_cmp);
        assert!((centroids[0] - 15.0).abs() < 1e-9);
        assert!((centroids[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn chain_merges_through_moving_centroid() {
        // Points at 0, 35, 70: (0,35) merge -> 17.5; 70 is 52.5 away (> 40)
        // so the chain stops. Centroid movement matters.
        let out = hierarchical_cluster(
            &[
                Point::new(0.0, 0.0),
                Point::new(35.0, 0.0),
                Point::new(70.0, 0.0),
            ],
            40.0,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn dense_blob_becomes_one_cluster() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let out = hierarchical_cluster(&pts, 40.0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].weight, 200);
        assert!(out[0].centroid.norm() < 2.0);
    }

    #[test]
    fn well_separated_blobs_stay_separate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pts = Vec::new();
        let centers = [
            Point::new(0.0, 0.0),
            Point::new(500.0, 0.0),
            Point::new(0.0, 500.0),
        ];
        for c in &centers {
            for _ in 0..50 {
                pts.push(Point::new(
                    c.x + rng.gen_range(-8.0..8.0),
                    c.y + rng.gen_range(-8.0..8.0),
                ));
            }
        }
        let out = hierarchical_cluster(&pts, 40.0);
        assert_eq!(out.len(), 3);
        for cl in &out {
            assert_eq!(cl.weight, 50);
            assert!(centers.iter().any(|c| cl.centroid.distance(c) < 10.0));
        }
    }

    #[test]
    fn members_partition_the_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point> = (0..150)
            .map(|_| Point::new(rng.gen_range(-300.0..300.0), rng.gen_range(-300.0..300.0)))
            .collect();
        let out = hierarchical_cluster(&pts, 40.0);
        let mut seen: Vec<usize> = out.iter().flat_map(|c| c.members.iter().copied()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..150).collect::<Vec<_>>());
        for c in &out {
            assert_eq!(c.weight, c.members.len());
        }
    }

    #[test]
    fn weighted_merge_respects_mass() {
        // A heavy existing candidate at x=0 (weight 9) and a new unit point
        // at x=10 merge to x=1, not x=5.
        let items = [
            WeightedPoint {
                pos: Point::new(0.0, 0.0),
                weight: 9,
            },
            WeightedPoint::unit(Point::new(10.0, 0.0)),
        ];
        let out = merge_weighted(&items, 40.0);
        assert_eq!(out.len(), 1);
        assert!((out[0].centroid.x - 1.0).abs() < 1e-9);
        assert_eq!(out[0].weight, 10);
    }

    #[test]
    fn incremental_equals_rerun_for_separated_batches() {
        // When the two batches occupy disjoint areas, clustering batch 2 into
        // batch 1's candidates equals clustering everything at once.
        let batch1 = [Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let batch2 = [Point::new(500.0, 0.0), Point::new(505.0, 0.0)];
        let pool1 = hierarchical_cluster(&batch1, 40.0);
        let mut items: Vec<WeightedPoint> = pool1
            .iter()
            .map(|c| WeightedPoint {
                pos: c.centroid,
                weight: c.weight,
            })
            .collect();
        items.extend(batch2.iter().map(|&p| WeightedPoint::unit(p)));
        let merged = merge_weighted(&items, 40.0);

        let all: Vec<Point> = batch1.iter().chain(batch2.iter()).copied().collect();
        let rerun = hierarchical_cluster(&all, 40.0);
        assert_eq!(merged.len(), rerun.len());
        let mut a: Vec<(i64, i64)> = merged
            .iter()
            .map(|c| (c.centroid.x.round() as i64, c.centroid.y.round() as i64))
            .collect();
        let mut b: Vec<(i64, i64)> = rerun
            .iter()
            .map(|c| (c.centroid.x.round() as i64, c.centroid.y.round() as i64))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "distance threshold must be positive")]
    fn invalid_threshold_panics() {
        let _ = hierarchical_cluster(&[Point::ZERO], 0.0);
    }

    #[test]
    fn pooled_scan_is_bitwise_identical_to_serial() {
        // Enough points to cross PARALLEL_PAIR_SCAN_MIN, dense enough that
        // many merges happen, across several worker counts.
        let mut rng = StdRng::seed_from_u64(7);
        let items: Vec<WeightedPoint> = (0..900)
            .map(|_| {
                WeightedPoint::unit(Point::new(
                    rng.gen_range(-400.0..400.0),
                    rng.gen_range(-400.0..400.0),
                ))
            })
            .collect();
        let serial = merge_weighted(&items, 40.0);
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let pooled = merge_weighted_pooled(&items, 40.0, &pool);
            assert_eq!(serial.len(), pooled.len(), "threads={threads}");
            for (a, b) in serial.iter().zip(&pooled) {
                assert_eq!(a.members, b.members, "threads={threads}");
                assert_eq!(
                    a.centroid.x.to_bits(),
                    b.centroid.x.to_bits(),
                    "threads={threads}"
                );
                assert_eq!(
                    a.centroid.y.to_bits(),
                    b.centroid.y.to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn no_two_final_centroids_within_d(
            pts in proptest::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 0..120),
            d in 5.0..80.0f64,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let out = hierarchical_cluster(&points, d);
            for i in 0..out.len() {
                for j in (i + 1)..out.len() {
                    prop_assert!(
                        out[i].centroid.distance(&out[j].centroid) >= d - 1e-9,
                        "centroids {} and {} are {} < {}",
                        i, j, out[i].centroid.distance(&out[j].centroid), d
                    );
                }
            }
        }

        #[test]
        fn members_always_partition(
            pts in proptest::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 0..120),
            d in 5.0..80.0f64,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let out = hierarchical_cluster(&points, d);
            let mut seen: Vec<usize> = out.iter().flat_map(|c| c.members.iter().copied()).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..points.len()).collect::<Vec<_>>());
            let total: usize = out.iter().map(|c| c.weight).sum();
            prop_assert_eq!(total, points.len());
        }
    }
}
