//! DBSCAN density-based clustering.
//!
//! Used by the GeoCloud baseline (Section V-B): annotated locations are
//! DBSCAN-clustered and the centroid of the biggest cluster becomes the
//! inferred delivery location, which filters out mis-annotated outliers.

use dlinfma_geo::{GridIndex, Point};

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanConfig {
    /// Neighbourhood radius in meters.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point. The paper sets this to 1 for GeoCloud so single-delivery
    /// addresses still form a cluster.
    pub min_pts: usize,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        Self {
            eps: dlinfma_params::D_MAX_M,
            min_pts: 1,
        }
    }
}

/// Runs DBSCAN over `points`.
///
/// Returns one label per input point: `Some(cluster_id)` with ids dense from
/// zero, or `None` for noise points.
pub fn dbscan(points: &[Point], cfg: &DbscanConfig) -> Vec<Option<usize>> {
    assert!(cfg.eps.is_finite() && cfg.eps > 0.0, "eps must be positive");
    assert!(cfg.min_pts >= 1, "min_pts must be at least 1");
    let n = points.len();
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    if n == 0 {
        return labels;
    }

    let grid = GridIndex::from_items(cfg.eps, points.iter().enumerate().map(|(i, p)| (*p, i)));
    let neighbors = |i: usize| -> Vec<usize> {
        let mut out = Vec::new();
        grid.for_each_within(&points[i], cfg.eps, |_, &j| out.push(j));
        out
    };

    let mut next_cluster = 0usize;
    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let nbrs = neighbors(i);
        if nbrs.len() < cfg.min_pts {
            continue; // noise (may be claimed by a later cluster as border)
        }
        let cid = next_cluster;
        next_cluster += 1;
        labels[i] = Some(cid);
        // Expand the cluster breadth-first.
        let mut queue: Vec<usize> = nbrs;
        while let Some(j) = queue.pop() {
            if labels[j].is_none() {
                labels[j] = Some(cid); // border or core point joins
            }
            if visited[j] {
                continue;
            }
            visited[j] = true;
            let jn = neighbors(j);
            if jn.len() >= cfg.min_pts {
                queue.extend(jn);
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn empty_input() {
        assert!(dbscan(&[], &DbscanConfig::default()).is_empty());
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        // With min_pts = 1 (the GeoCloud setting) every point is a core
        // point, so there is no noise.
        let pts = [Point::new(0.0, 0.0), Point::new(1000.0, 0.0)];
        let labels = dbscan(
            &pts,
            &DbscanConfig {
                eps: 20.0,
                min_pts: 1,
            },
        );
        assert_eq!(labels, vec![Some(0), Some(1)]);
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut pts = Vec::new();
        for _ in 0..30 {
            pts.push(Point::new(
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-5.0..5.0),
            ));
        }
        for _ in 0..30 {
            pts.push(Point::new(
                300.0 + rng.gen_range(-5.0..5.0),
                rng.gen_range(-5.0..5.0),
            ));
        }
        let labels = dbscan(
            &pts,
            &DbscanConfig {
                eps: 15.0,
                min_pts: 3,
            },
        );
        let a = labels[0].expect("first blob clustered");
        let b = labels[30].expect("second blob clustered");
        assert_ne!(a, b);
        assert!(labels[..30].iter().all(|l| *l == Some(a)));
        assert!(labels[30..].iter().all(|l| *l == Some(b)));
    }

    #[test]
    fn isolated_point_is_noise_with_high_min_pts() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(500.0, 0.0), // isolated
        ];
        let labels = dbscan(
            &pts,
            &DbscanConfig {
                eps: 10.0,
                min_pts: 3,
            },
        );
        assert!(labels[0].is_some());
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], None);
    }

    #[test]
    fn chain_connectivity() {
        // A chain of points each within eps of the next links into one cluster.
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64 * 8.0, 0.0)).collect();
        let labels = dbscan(
            &pts,
            &DbscanConfig {
                eps: 10.0,
                min_pts: 2,
            },
        );
        assert!(labels.iter().all(|l| *l == Some(0)));
    }

    #[test]
    fn cluster_ids_are_dense() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(200.0, 0.0),
        ];
        let labels = dbscan(
            &pts,
            &DbscanConfig {
                eps: 10.0,
                min_pts: 1,
            },
        );
        let mut ids: Vec<usize> = labels.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn bad_eps_panics() {
        let _ = dbscan(
            &[Point::ZERO],
            &DbscanConfig {
                eps: -1.0,
                min_pts: 1,
            },
        );
    }
}
