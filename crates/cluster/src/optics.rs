//! OPTICS: Ordering Points To Identify the Clustering Structure
//! (Ankerst et al., 1999).
//!
//! The paper lists OPTICS (its reference [11]) among the clustering methods
//! previously used to generate locations from stay points and rejects
//! density-based methods because their density parameter is hard to set and
//! their clusters have irregular shapes. It is implemented here so the
//! clustering-choice ablation bench can quantify that claim.

use dlinfma_geo::{GridIndex, Point};

/// OPTICS parameters.
#[derive(Debug, Clone, Copy)]
pub struct OpticsConfig {
    /// Maximum neighbourhood radius examined, meters.
    pub max_eps: f64,
    /// Minimum neighbourhood size (including the point) for a core point.
    pub min_pts: usize,
}

impl Default for OpticsConfig {
    fn default() -> Self {
        Self {
            max_eps: dlinfma_params::CLUSTER_DISTANCE_M,
            min_pts: 3,
        }
    }
}

/// One entry of the OPTICS ordering.
#[derive(Debug, Clone, Copy)]
pub struct OrderedPoint {
    /// Index into the input slice.
    pub index: usize,
    /// Reachability distance (`f64::INFINITY` for ordering starts).
    pub reachability: f64,
}

/// Computes the OPTICS cluster ordering with reachability distances.
pub fn optics_ordering(points: &[Point], cfg: &OpticsConfig) -> Vec<OrderedPoint> {
    assert!(cfg.max_eps > 0.0 && cfg.max_eps.is_finite(), "bad max_eps");
    assert!(cfg.min_pts >= 1, "min_pts must be >= 1");
    let n = points.len();
    let mut processed = vec![false; n];
    let mut reachability = vec![f64::INFINITY; n];
    let mut order: Vec<OrderedPoint> = Vec::with_capacity(n);
    if n == 0 {
        return order;
    }
    let grid = GridIndex::from_items(cfg.max_eps, points.iter().enumerate().map(|(i, p)| (*p, i)));

    let neighbors = |i: usize| -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        grid.for_each_within(&points[i], cfg.max_eps, |p, &j| {
            out.push((j, points[i].distance(p)));
        });
        out
    };

    // Core distance: distance to the min_pts-th nearest neighbour.
    let core_distance = |nbrs: &[(usize, f64)]| -> Option<f64> {
        if nbrs.len() < cfg.min_pts {
            return None;
        }
        let mut ds: Vec<f64> = nbrs.iter().map(|&(_, d)| d).collect();
        ds.sort_by(f64::total_cmp);
        ds.get(cfg.min_pts.checked_sub(1)?).copied()
    };

    for start in 0..n {
        if processed[start] {
            continue;
        }
        processed[start] = true;
        order.push(OrderedPoint {
            index: start,
            reachability: f64::INFINITY,
        });
        let nbrs = neighbors(start);
        let Some(core) = core_distance(&nbrs) else {
            continue;
        };
        // Seed list as a simple binary-heap-free priority scan (n is modest
        // for stay-point workloads; correctness over micro-optimization).
        let mut seeds: Vec<usize> = Vec::new();
        let update = |center_core: f64,
                      nbrs: &[(usize, f64)],
                      reachability: &mut [f64],
                      seeds: &mut Vec<usize>,
                      processed: &[bool]| {
            for &(j, d) in nbrs {
                if processed[j] {
                    continue;
                }
                let new_reach = center_core.max(d);
                if new_reach < reachability[j] {
                    reachability[j] = new_reach;
                    if !seeds.contains(&j) {
                        seeds.push(j);
                    }
                }
            }
        };
        update(core, &nbrs, &mut reachability, &mut seeds, &processed);

        while !seeds.is_empty() {
            // Pop the seed with the smallest reachability.
            let Some((pos, &next)) = seeds
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| reachability[a].total_cmp(&reachability[b]))
            else {
                break;
            };
            seeds.swap_remove(pos);
            if processed[next] {
                continue;
            }
            processed[next] = true;
            order.push(OrderedPoint {
                index: next,
                reachability: reachability[next],
            });
            let nn = neighbors(next);
            if let Some(c) = core_distance(&nn) {
                update(c, &nn, &mut reachability, &mut seeds, &processed);
            }
        }
    }
    order
}

/// Extracts flat clusters from an OPTICS ordering by cutting the
/// reachability plot at `eps_cut`: a new cluster starts wherever the
/// reachability exceeds the cut. Returns per-point labels
/// (`None` = noise).
pub fn optics_extract(points: &[Point], cfg: &OpticsConfig, eps_cut: f64) -> Vec<Option<usize>> {
    let order = optics_ordering(points, cfg);
    let mut labels = vec![None; points.len()];
    let mut current: Option<usize> = None;
    let mut next_cluster = 0usize;
    for op in &order {
        if op.reachability > eps_cut {
            // This point is not density-reachable at eps_cut: it either
            // starts a new cluster (if it is a core point at the cut) or is
            // noise. Peek: treat it as a potential cluster opener; it will
            // be claimed when followers arrive.
            current = None;
        }
        match current {
            Some(c) => labels[op.index] = Some(c),
            None => {
                // Open a tentative cluster; confirmed by the next in-cut
                // follower, otherwise the point stays a singleton cluster.
                labels[op.index] = Some(next_cluster);
                current = Some(next_cluster);
                next_cluster += 1;
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize, r: f64) -> Vec<Point> {
        (0..n)
            .map(|_| Point::new(cx + rng.gen_range(-r..r), cy + rng.gen_range(-r..r)))
            .collect()
    }

    #[test]
    fn empty_input() {
        let cfg = OpticsConfig::default();
        assert!(optics_ordering(&[], &cfg).is_empty());
        assert!(optics_extract(&[], &cfg, 20.0).is_empty());
    }

    #[test]
    fn ordering_visits_every_point_once() {
        let mut rng = StdRng::seed_from_u64(0);
        let pts = blob(&mut rng, 0.0, 0.0, 40, 10.0);
        let order = optics_ordering(&pts, &OpticsConfig::default());
        assert_eq!(order.len(), 40);
        let mut seen: Vec<usize> = order.iter().map(|o| o.index).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn two_blobs_get_two_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pts = blob(&mut rng, 0.0, 0.0, 30, 8.0);
        pts.extend(blob(&mut rng, 300.0, 0.0, 30, 8.0));
        let labels = optics_extract(&pts, &OpticsConfig::default(), 20.0);
        let a = labels[0].expect("first blob labelled");
        let b = labels[30].expect("second blob labelled");
        assert_ne!(a, b);
        assert!(labels[..30].iter().all(|l| *l == Some(a)));
        assert!(labels[30..].iter().all(|l| *l == Some(b)));
    }

    #[test]
    fn dense_core_has_small_reachability() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = blob(&mut rng, 0.0, 0.0, 50, 5.0);
        let order = optics_ordering(&pts, &OpticsConfig::default());
        // After the ordering start, reachabilities inside one dense blob stay
        // far below max_eps.
        for op in order.iter().skip(1) {
            assert!(op.reachability < 15.0, "reach {}", op.reachability);
        }
    }

    #[test]
    fn isolated_points_are_singletons() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(500.0, 0.0),
            Point::new(1000.0, 0.0),
        ];
        let labels = optics_extract(
            &pts,
            &OpticsConfig {
                max_eps: 40.0,
                min_pts: 2,
            },
            20.0,
        );
        // Each point opens its own (singleton) cluster.
        let mut ids: Vec<usize> = labels.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }
}
