#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! Clustering algorithms for stay points.
//!
//! The paper's candidate-pool construction (Section III-B) clusters couriers'
//! stay points so each physical delivery location is represented once:
//!
//! * [`hierarchical`] — centroid-linkage agglomerative clustering driven by a
//!   single distance threshold `D` (the method the paper adopts, `D = 40 m`),
//!   including the incremental *merge-new-into-existing* mode used for
//!   bi-weekly batch updates;
//! * [`dbscan`] — density-based clustering (used by the GeoCloud baseline);
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding (mentioned as a
//!   rejected alternative; exercised by ablation benches);
//! * [`gridmerge`] — fixed-grid bucketing (the DLInfMA-Grid variant, which
//!   the paper shows splits locations at cell boundaries);
//! * [`optics`] — the OPTICS ordering (another rejected alternative),
//!   exercised by the clustering-choice ablation bench.

pub mod dbscan;
pub mod gridmerge;
pub mod hierarchical;
pub mod kmeans;
pub mod optics;

pub use dbscan::{dbscan, DbscanConfig};
pub use gridmerge::grid_clusters;
pub use hierarchical::{
    hierarchical_cluster, merge_weighted, merge_weighted_pooled, merge_weighted_pooled_stats,
    Cluster, MergeStats, WeightedPoint,
};
pub use kmeans::{kmeans, KMeansResult};
pub use optics::{optics_extract, optics_ordering, OpticsConfig, OrderedPoint};
