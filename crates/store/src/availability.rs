//! Application 2: customer availability inference (Section VI-C).
//!
//! Knowing *when* a customer actually receives parcels improves delivery
//! success rates. Recorded confirmation times are delayed, so the deployed
//! system corrects them: after the delivery location of an address is
//! inferred, the *actual* delivery time of each waybill is recovered as the
//! time of the courier's stay point nearest the inferred location within the
//! trip, and an hour-of-day availability profile is accumulated from the
//! corrected times.

use dlinfma_core::{CandidatePool, DlInfMa};
use dlinfma_detcol::OrdMap;
use dlinfma_synth::{AddressId, Dataset};

/// Hour-of-day availability profile of one address.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityProfile {
    /// Per-hour delivery counts.
    pub counts: [u32; 24],
}

impl AvailabilityProfile {
    /// Normalized hour-of-day distribution (sums to 1, all zeros when no
    /// deliveries).
    pub fn distribution(&self) -> [f64; 24] {
        let total: u32 = self.counts.iter().sum();
        let mut out = [0.0; 24];
        if total > 0 {
            for (o, &c) in out.iter_mut().zip(&self.counts) {
                *o = f64::from(c) / f64::from(total);
            }
        }
        out
    }

    /// Hours whose availability probability is at least `threshold`
    /// (Figure 15(b)'s shaded windows).
    pub fn windows(&self, threshold: f64) -> Vec<usize> {
        self.distribution()
            .iter()
            .enumerate()
            .filter(|(_, &p)| p >= threshold)
            .map(|(h, _)| h)
            .collect()
    }
}

/// Weekly availability: per day-of-week, per hour-of-day delivery counts
/// (Section VI-C models feasibility by time of day AND day of week).
#[derive(Debug, Clone, PartialEq)]
pub struct WeeklyAvailability {
    /// `counts[dow][hour]`, `dow` 0 = the epoch's weekday.
    pub counts: [[u32; 24]; 7],
}

impl WeeklyAvailability {
    /// An empty profile.
    pub fn new() -> Self {
        Self {
            counts: [[0; 24]; 7],
        }
    }

    /// Records a delivery at epoch-relative time `t` (seconds).
    pub fn record(&mut self, t: f64) {
        let day = ((t.rem_euclid(7.0 * 86_400.0)) / 86_400.0) as usize % 7;
        let hour = ((t.rem_euclid(86_400.0)) / 3_600.0) as usize % 24;
        self.counts[day][hour] += 1;
    }

    /// Hour windows of one weekday whose probability (within that weekday)
    /// reaches `threshold`.
    pub fn windows_on(&self, day: usize, threshold: f64) -> Vec<usize> {
        let total: u32 = self.counts[day].iter().sum();
        if total == 0 {
            return Vec::new();
        }
        self.counts[day]
            .iter()
            .enumerate()
            .filter(|(_, &c)| f64::from(c) / f64::from(total) >= threshold)
            .map(|(h, _)| h)
            .collect()
    }

    /// Total deliveries recorded.
    pub fn total(&self) -> u32 {
        self.counts.iter().flatten().sum()
    }
}

impl Default for WeeklyAvailability {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds weekly availability profiles from corrected delivery times.
pub fn weekly_availability(
    dataset: &Dataset,
    dlinfma: &DlInfMa,
    radius_m: f64,
) -> OrdMap<AddressId, WeeklyAvailability> {
    let mut out: OrdMap<AddressId, WeeklyAvailability> = OrdMap::new();
    for (wi, w) in dataset.waybills.iter().enumerate() {
        let Some(inferred) = dlinfma.infer(w.address) else {
            continue;
        };
        let t = corrected_delivery_time(dlinfma.pool(), dataset, wi, inferred, radius_m);
        out.entry(w.address).or_default().record(t);
    }
    out
}

/// Recovers the actual delivery time of a waybill: the mid-time of the
/// trip's candidate visit nearest the inferred delivery location (within
/// `radius_m`), falling back to the recorded time.
pub fn corrected_delivery_time(
    pool: &CandidatePool,
    dataset: &Dataset,
    waybill_idx: usize,
    inferred: dlinfma_geo::Point,
    radius_m: f64,
) -> f64 {
    let w = &dataset.waybills[waybill_idx];
    pool.visits(w.trip)
        .iter()
        .filter(|&&(c, t)| {
            pool.candidate(c).pos.distance(&inferred) <= radius_m && t <= w.t_recorded_delivery
        })
        .map(|&(_, t)| t)
        .min_by(|a, b| {
            // Closest stay time *before* the recorded bound: the latest one.
            b.total_cmp(a)
        })
        .unwrap_or(w.t_recorded_delivery)
}

/// Builds availability profiles for every delivered address using corrected
/// delivery times.
pub fn availability_profiles(
    dataset: &Dataset,
    dlinfma: &DlInfMa,
    radius_m: f64,
) -> OrdMap<AddressId, AvailabilityProfile> {
    let mut out: OrdMap<AddressId, AvailabilityProfile> = OrdMap::new();
    for (wi, w) in dataset.waybills.iter().enumerate() {
        let Some(inferred) = dlinfma.infer(w.address) else {
            continue;
        };
        let t = corrected_delivery_time(dlinfma.pool(), dataset, wi, inferred, radius_m);
        let hour = ((t.rem_euclid(86_400.0)) / 3_600.0) as usize % 24;
        out.entry(w.address)
            .or_insert(AvailabilityProfile { counts: [0; 24] })
            .counts[hour] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_core::DlInfMaConfig;
    use dlinfma_synth::{generate, spatial_split, Preset, Scale};

    fn trained() -> (Dataset, DlInfMa) {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 31);
        let split = spatial_split(&ds, 0.6, 0.2);
        let mut cfg = DlInfMaConfig::fast();
        cfg.model.max_epochs = 5;
        let mut dl = DlInfMa::prepare(&ds, cfg);
        dl.label_from_dataset(&ds);
        dl.train(&split.train, &split.val);
        (ds, dl)
    }

    #[test]
    fn corrected_times_are_no_later_than_recorded() {
        let (ds, dl) = trained();
        for (wi, w) in ds.waybills.iter().enumerate().take(100) {
            let Some(inferred) = dl.infer(w.address) else {
                continue;
            };
            let t = corrected_delivery_time(dl.pool(), &ds, wi, inferred, 30.0);
            assert!(t <= w.t_recorded_delivery + 1e-6);
            assert!(t >= ds.trip(w.trip).t_start - 1e-6);
        }
    }

    #[test]
    fn correction_moves_toward_actual_time() {
        let (ds, dl) = trained();
        let mut err_recorded = 0.0;
        let mut err_corrected = 0.0;
        let mut n = 0;
        for (wi, w) in ds.waybills.iter().enumerate() {
            let Some(inferred) = dl.infer(w.address) else {
                continue;
            };
            let t = corrected_delivery_time(dl.pool(), &ds, wi, inferred, 30.0);
            err_recorded += (w.t_recorded_delivery - w.t_actual_delivery).abs();
            err_corrected += (t - w.t_actual_delivery).abs();
            n += 1;
        }
        assert!(n > 0);
        assert!(
            err_corrected < err_recorded,
            "corrected {:.0}s !< recorded {:.0}s (n={n})",
            err_corrected / n as f64,
            err_recorded / n as f64
        );
    }

    #[test]
    fn profiles_cover_working_hours() {
        let (ds, dl) = trained();
        let profiles = availability_profiles(&ds, &dl, 30.0);
        assert!(!profiles.is_empty());
        for p in profiles.values() {
            let dist = p.distribution();
            let sum: f64 = dist.iter().sum();
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
            // Trips run 08:30-late; no deliveries before 6am.
            for h in 0..6 {
                assert_eq!(p.counts[h], 0, "delivery at {h}h?");
            }
        }
    }

    #[test]
    fn weekly_profile_buckets_by_day_and_hour() {
        let mut w = WeeklyAvailability::new();
        // Day 0, 09:00 and day 2, 14:00.
        w.record(9.0 * 3_600.0);
        w.record(2.0 * 86_400.0 + 14.0 * 3_600.0);
        w.record(2.0 * 86_400.0 + 14.5 * 3_600.0);
        assert_eq!(w.total(), 3);
        assert_eq!(w.counts[0][9], 1);
        assert_eq!(w.counts[2][14], 2);
        assert_eq!(w.windows_on(0, 0.5), vec![9]);
        assert_eq!(w.windows_on(2, 0.5), vec![14]);
        assert!(w.windows_on(5, 0.1).is_empty());
    }

    #[test]
    fn weekly_availability_covers_delivered_addresses() {
        let (ds, dl) = trained();
        let weekly = weekly_availability(&ds, &dl, 30.0);
        assert!(!weekly.is_empty());
        for p in weekly.values() {
            assert!(p.total() > 0);
        }
    }

    #[test]
    fn windows_threshold() {
        let mut counts = [0u32; 24];
        counts[9] = 6;
        counts[15] = 3;
        counts[20] = 1;
        let p = AvailabilityProfile { counts };
        assert_eq!(p.windows(0.3), vec![9, 15]);
        assert_eq!(p.windows(0.05), vec![9, 15, 20]);
        assert!(p.windows(0.9).is_empty());
    }
}
