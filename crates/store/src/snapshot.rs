//! Immutable store snapshots for the serving layer.
//!
//! The deployed service (Section VI) answers queries *while* courier data
//! keeps arriving. [`crate::kv::DeliveryLocationStore`] already allows
//! concurrent readers, but its refresh takes a write lock: a reader arriving
//! mid-refresh blocks for the whole table rebuild. The serving layer instead
//! publishes an immutable [`LocationSnapshot`] per materialize boundary and
//! swaps an `Arc` inside a [`SnapshotCell`]:
//!
//! * **readers never block on ingest** — [`SnapshotCell::load`] clones an
//!   `Arc` under a read lock held for nanoseconds; snapshot *construction*
//!   (the expensive part) happens entirely outside the cell;
//! * **every query sees one consistent epoch** — a snapshot is frozen at
//!   build time and tagged with a monotonically increasing epoch when
//!   published, so a reader holding one can answer any number of lookups
//!   against a single coherent state and report which state that was.
//!
//! The lookup semantics are exactly the deployed fallback chain of
//! [`crate::kv`]: address-level inference, then the building-level
//! mostly-used location, then the geocode.

use crate::kv::QuerySource;
use dlinfma_core::{Engine, ShardedEngine};
use dlinfma_detcol::OrdMap;
use dlinfma_geo::Point;
use dlinfma_synth::{AddressId, BuildingId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The three query tables of a snapshot: address-level inferences,
/// building-level votes, and the geocode universe.
type SnapshotTables = (
    HashMap<AddressId, Point>,
    HashMap<BuildingId, Point>,
    HashMap<AddressId, (BuildingId, Point)>,
);

/// One immutable, epoch-tagged view of the delivery-location tables.
///
/// Constructed from a quiescent [`Engine`] (between ingests) and never
/// mutated afterwards; cheap to share via `Arc`.
#[derive(Debug, Clone, Default)]
pub struct LocationSnapshot {
    epoch: u64,
    days_ingested: u32,
    n_candidates: usize,
    n_stays: usize,
    healthy: bool,
    anomalies: usize,
    /// Day batches ingested per source shard when the snapshot was frozen;
    /// one entry for a single-engine snapshot, empty for the pre-ingest
    /// snapshot. The snapshot itself is still published atomically — these
    /// only report how far each shard's ingest had progressed.
    shard_epochs: Vec<u64>,
    by_address: HashMap<AddressId, Point>,
    by_building: HashMap<BuildingId, Point>,
    geocodes: HashMap<AddressId, (BuildingId, Point)>,
}

impl LocationSnapshot {
    /// The empty pre-ingest snapshot (epoch 0 by convention). Healthy —
    /// nothing observed means nothing anomalous, matching how the obs
    /// `HealthReport::is_healthy` treats zero observed days.
    pub fn empty() -> Self {
        Self {
            healthy: true,
            ..Self::default()
        }
    }

    /// Freezes the engine's current materialized state into a snapshot.
    ///
    /// Address-level entries come from [`Engine::infer`] (empty until a
    /// model is installed via [`Engine::set_model`]); building-level
    /// entries are the per-building mostly-used inferred location with ~1 m
    /// vote quantization, mirroring
    /// [`crate::kv::DeliveryLocationStore::refresh`]; geocodes cover the
    /// whole address universe so the chain always bottoms out. The epoch is
    /// stamped later, at [`SnapshotCell::publish`] time.
    pub fn from_engine(engine: &Engine, days_ingested: u32) -> Self {
        let (by_address, by_building, geocodes) =
            Self::build_tables(engine.addresses(), |a| engine.infer(a));
        let health = engine.health_report();
        Self {
            epoch: 0,
            days_ingested,
            n_candidates: engine.pool().len(),
            n_stays: engine.n_stays(),
            healthy: health.is_healthy(),
            anomalies: health.anomalies().len(),
            shard_epochs: vec![u64::from(days_ingested)],
            by_address,
            by_building,
            geocodes,
        }
    }

    /// Freezes a [`ShardedEngine`]'s merged state into one snapshot — the
    /// fleet-mode twin of [`LocationSnapshot::from_engine`].
    ///
    /// Address-level entries come from [`ShardedEngine::infer`] (the owning
    /// shard's sample scored by the fleet model, with cross-shard
    /// fallback); the building-level vote and the geocode table are
    /// computed over the merged index exactly as in the single-engine path,
    /// so a 1-shard fleet freezes to the bit-identical snapshot. Health is
    /// the conjunction of the shards' health reports; `shard_epochs`
    /// carries each shard's ingested-day count. The merged snapshot is
    /// published through the same [`SnapshotCell::publish`] as any other —
    /// one atomic swap, never per-shard.
    pub fn from_sharded(fleet: &ShardedEngine, days_ingested: u32) -> Self {
        let (by_address, by_building, geocodes) =
            Self::build_tables(fleet.addresses(), |a| fleet.infer(a));
        let (healthy, anomalies) = fleet.shards().iter().fold((true, 0), |(h, n), e| {
            let r = e.health_report();
            (h && r.is_healthy(), n + r.anomalies().len())
        });
        Self {
            epoch: 0,
            days_ingested,
            n_candidates: fleet.n_candidates(),
            n_stays: fleet.n_stays(),
            healthy,
            anomalies,
            shard_epochs: fleet.shard_epochs(),
            by_address,
            by_building,
            geocodes,
        }
    }

    /// The shared table-building core of the two freeze paths: address
    /// entries from `infer`, building entries as the per-building
    /// mostly-used inferred location with ~1 m vote quantization, geocodes
    /// over the whole universe.
    fn build_tables(
        addresses: &[dlinfma_synth::Address],
        infer: impl Fn(AddressId) -> Option<Point>,
    ) -> SnapshotTables {
        type Votes = OrdMap<(i64, i64), (usize, Point)>;
        let mut by_address: HashMap<AddressId, Point> = HashMap::new();
        let mut building_votes: OrdMap<BuildingId, Votes> = OrdMap::new();
        for a in addresses {
            if let Some(p) = infer(a.id) {
                by_address.insert(a.id, p);
                let key = ((p.x * 1.0) as i64, (p.y * 1.0) as i64);
                let slot = building_votes
                    .entry(a.building)
                    .or_default()
                    .entry(key)
                    .or_insert((0, p));
                slot.0 += 1;
            }
        }
        let by_building = building_votes
            .into_iter()
            .filter_map(|(b, votes)| {
                votes
                    .into_iter()
                    .max_by_key(|(_, (n, _))| *n)
                    .map(|(_, (_, p))| (b, p))
            })
            .collect();
        let geocodes = addresses
            .iter()
            .map(|a| (a.id, (a.building, a.geocode)))
            .collect();
        (by_address, by_building, geocodes)
    }

    /// A snapshot over externally-built tables (no engine attached):
    /// health defaults to healthy, funnel counters to zero. Used by tests
    /// and by callers serving tables produced out-of-process.
    pub fn from_tables(
        by_address: HashMap<AddressId, Point>,
        by_building: HashMap<BuildingId, Point>,
        geocodes: HashMap<AddressId, (BuildingId, Point)>,
    ) -> Self {
        Self {
            healthy: true,
            by_address,
            by_building,
            geocodes,
            ..Self::default()
        }
    }

    /// Overrides the per-shard epoch markers — for snapshots built from
    /// externally-produced tables ([`LocationSnapshot::from_tables`]) where
    /// the caller knows how many source shards stood behind them.
    #[must_use]
    pub fn with_shard_epochs(mut self, shard_epochs: Vec<u64>) -> Self {
        self.shard_epochs = shard_epochs;
        self
    }

    /// Answers a query through the deployed fallback chain; `None` only for
    /// addresses entirely unknown to this snapshot's universe.
    pub fn query(&self, addr: AddressId) -> Option<(Point, QuerySource)> {
        if let Some(&p) = self.by_address.get(&addr) {
            return Some((p, QuerySource::Address));
        }
        let &(building, geocode) = self.geocodes.get(&addr)?;
        if let Some(&p) = self.by_building.get(&building) {
            return Some((p, QuerySource::Building));
        }
        Some((geocode, QuerySource::Geocode))
    }

    /// The publish epoch: 0 for the initial empty snapshot, then one more
    /// per [`SnapshotCell::publish`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Days the source engine had ingested when this snapshot was frozen.
    pub fn days_ingested(&self) -> u32 {
        self.days_ingested
    }

    /// Address-level entries (inferred locations).
    pub fn len(&self) -> usize {
        self.by_address.len()
    }

    /// True when no address-level inferences are present.
    pub fn is_empty(&self) -> bool {
        self.by_address.is_empty()
    }

    /// Addresses in the snapshot's universe (geocode table size).
    pub fn n_addresses(&self) -> usize {
        self.geocodes.len()
    }

    /// Candidate-pool size at freeze time.
    pub fn n_candidates(&self) -> usize {
        self.n_candidates
    }

    /// Extracted stay points at freeze time.
    pub fn n_stays(&self) -> usize {
        self.n_stays
    }

    /// Whether the source engine's health report was anomaly-free.
    pub fn healthy(&self) -> bool {
        self.healthy
    }

    /// Anomaly count in the source engine's health report.
    pub fn anomalies(&self) -> usize {
        self.anomalies
    }

    /// Day batches each source shard had ingested at freeze time — one
    /// entry per shard ([`LocationSnapshot::from_engine`] reports itself as
    /// a single shard), empty for the pre-ingest snapshot.
    pub fn shard_epochs(&self) -> &[u64] {
        &self.shard_epochs
    }

    /// Number of engine shards behind this snapshot (0 for the pre-ingest
    /// snapshot, 1 for the single-engine path).
    pub fn n_shards(&self) -> usize {
        self.shard_epochs.len()
    }
}

/// The reader/publisher rendezvous: one `Arc` slot swapped at materialize
/// boundaries.
///
/// The lock is only ever held for an `Arc` clone (read side) or a pointer
/// store (write side); all snapshot construction happens before
/// [`SnapshotCell::publish`] is called. Epochs are assigned here — not by
/// the builder — so they are monotonic no matter how many snapshots were
/// built concurrently or discarded.
#[derive(Debug)]
pub struct SnapshotCell {
    slot: RwLock<Arc<LocationSnapshot>>,
}

impl Default for SnapshotCell {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotCell {
    /// A cell holding the empty epoch-0 snapshot.
    pub fn new() -> Self {
        Self {
            slot: RwLock::new(Arc::new(LocationSnapshot::empty())),
        }
    }

    /// The current snapshot. Wait-free in practice: an `Arc` clone under a
    /// momentary read lock. Callers keep the returned `Arc` for as many
    /// queries as need one consistent view.
    pub fn load(&self) -> Arc<LocationSnapshot> {
        Arc::clone(&self.slot.read())
    }

    /// Atomically replaces the current snapshot, stamping it with the next
    /// epoch (previous epoch + 1). Returns the epoch assigned.
    pub fn publish(&self, mut snap: LocationSnapshot) -> u64 {
        let mut guard = self.slot.write();
        let epoch = guard.epoch + 1;
        snap.epoch = epoch;
        *guard = Arc::new(snap);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_core::DlInfMaConfig;
    use dlinfma_synth::{generate, replay, Preset, Scale};

    /// A hand-built snapshot: addresses 0..n map to `(k, k)`, buildings and
    /// geocodes filled so the chain is exercisable.
    fn sentinel_snapshot(n: usize, k: f64) -> LocationSnapshot {
        let mut s = LocationSnapshot::empty();
        for i in 0..n {
            s.by_address.insert(AddressId(i as u32), Point::new(k, k));
            s.geocodes
                .insert(AddressId(i as u32), (BuildingId(0), Point::new(-1.0, -1.0)));
        }
        s
    }

    #[test]
    fn fallback_chain_order() {
        let mut s = LocationSnapshot::empty();
        s.by_address.insert(AddressId(0), Point::new(1.0, 1.0));
        s.by_building.insert(BuildingId(7), Point::new(2.0, 2.0));
        s.geocodes
            .insert(AddressId(0), (BuildingId(9), Point::new(3.0, 3.0)));
        s.geocodes
            .insert(AddressId(1), (BuildingId(7), Point::new(3.0, 3.0)));
        s.geocodes
            .insert(AddressId(2), (BuildingId(9), Point::new(3.0, 3.0)));

        let (p, src) = s.query(AddressId(0)).unwrap();
        assert_eq!((src, p.x), (QuerySource::Address, 1.0));
        let (p, src) = s.query(AddressId(1)).unwrap();
        assert_eq!((src, p.x), (QuerySource::Building, 2.0));
        let (p, src) = s.query(AddressId(2)).unwrap();
        assert_eq!((src, p.x), (QuerySource::Geocode, 3.0));
        assert!(s.query(AddressId(3)).is_none());
    }

    #[test]
    fn publish_stamps_monotonic_epochs() {
        let cell = SnapshotCell::new();
        assert_eq!(cell.load().epoch(), 0);
        assert_eq!(cell.publish(sentinel_snapshot(1, 1.0)), 1);
        assert_eq!(cell.publish(sentinel_snapshot(1, 2.0)), 2);
        let snap = cell.load();
        assert_eq!(snap.epoch(), 2);
        let (p, _) = snap.query(AddressId(0)).unwrap();
        assert_eq!(p.x, 2.0);
    }

    #[test]
    fn from_engine_without_model_serves_geocodes() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 3);
        let mut engine = Engine::new(ds.addresses.clone(), DlInfMaConfig::fast());
        let mut days = 0u32;
        for batch in replay(&ds) {
            engine.ingest(&batch);
            days += 1;
        }
        let snap = LocationSnapshot::from_engine(&engine, days);
        assert!(snap.is_empty(), "no model => no address-level entries");
        assert_eq!(snap.n_addresses(), ds.addresses.len());
        assert_eq!(snap.days_ingested(), days);
        assert!(snap.n_candidates() > 0);
        let a = &ds.addresses[0];
        let (p, src) = snap.query(a.id).unwrap();
        assert_eq!(src, QuerySource::Geocode);
        assert_eq!((p.x, p.y), (a.geocode.x, a.geocode.y));
    }

    /// Freezing a fleet must behave like freezing one engine: at 1 shard
    /// the snapshots agree field-for-field, and at 2 shards the merged
    /// snapshot carries the same universe, the same funnel totals, one
    /// epoch entry per shard, and publishes through the cell as a single
    /// atomic swap.
    #[test]
    fn from_sharded_merges_shards_into_one_snapshot() {
        use dlinfma_core::ShardedEngine;
        use dlinfma_synth::{generate_with, world_config};

        let mut wcfg = world_config(Preset::DowBJ, Scale::Tiny);
        wcfg.sim.n_stations = 3;
        let (_, ds) = generate_with(&wcfg, 17);

        let mut engine = Engine::new(ds.addresses.clone(), DlInfMaConfig::fast());
        let mut fleet1 = ShardedEngine::new(ds.addresses.clone(), DlInfMaConfig::fast(), 1);
        let mut fleet2 = ShardedEngine::new(ds.addresses.clone(), DlInfMaConfig::fast(), 2);
        let mut days = 0u32;
        for batch in replay(&ds) {
            engine.ingest(&batch);
            fleet1.ingest(&batch);
            fleet2.ingest(&batch);
            days += 1;
        }

        let single = LocationSnapshot::from_engine(&engine, days);
        let one = LocationSnapshot::from_sharded(&fleet1, days);
        let two = LocationSnapshot::from_sharded(&fleet2, days);

        // 1 shard == the single-engine path, field for field.
        assert_eq!(one.len(), single.len());
        assert_eq!(one.n_addresses(), single.n_addresses());
        assert_eq!(one.n_candidates(), single.n_candidates());
        assert_eq!(one.n_stays(), single.n_stays());
        assert_eq!(one.healthy(), single.healthy());
        assert_eq!(one.anomalies(), single.anomalies());
        assert_eq!(one.shard_epochs(), single.shard_epochs());
        assert_eq!(one.n_shards(), 1);

        // 2 shards: same universe and funnel totals, per-shard epochs.
        assert_eq!(two.n_addresses(), single.n_addresses());
        assert_eq!(two.n_candidates(), single.n_candidates());
        assert_eq!(two.n_stays(), single.n_stays());
        assert_eq!(two.n_shards(), 2);
        assert_eq!(two.shard_epochs(), &[u64::from(days); 2]);
        for a in &ds.addresses {
            assert_eq!(two.query(a.id), single.query(a.id));
        }

        // One atomic publish for the whole merged snapshot.
        let cell = SnapshotCell::new();
        assert_eq!(cell.publish(two), 1);
        assert_eq!(cell.load().n_shards(), 2);
    }

    /// The no-torn-reads proof at the store layer: a publisher swaps
    /// sentinel snapshots (`epoch k` ⇒ every address answers `(k, k)`)
    /// while readers hammer `load()`. Every reader must observe a snapshot
    /// whose *entire* contents agree with its own epoch — a mixed view
    /// would mean a torn publish.
    #[test]
    fn concurrent_loads_see_single_epoch_views() {
        const ADDRS: usize = 64;
        const PUBLISHES: usize = 200;
        let cell = Arc::new(SnapshotCell::new());
        cell.publish(sentinel_snapshot(ADDRS, 1.0));
        let pool = dlinfma_pool::Pool::new(6);
        pool.scope(|scope| {
            for _ in 0..4 {
                let cell = &cell;
                scope.spawn(move || {
                    for _ in 0..2_000 {
                        let snap = cell.load();
                        let epoch = snap.epoch();
                        assert!(epoch >= 1);
                        for i in 0..ADDRS {
                            let (p, src) = snap.query(AddressId(i as u32)).unwrap();
                            assert_eq!(src, QuerySource::Address);
                            assert_eq!(
                                (p.x, p.y),
                                (epoch as f64, epoch as f64),
                                "torn read: entry {i} disagrees with epoch {epoch}"
                            );
                        }
                    }
                });
            }
            scope.spawn(|| {
                for k in 2..=PUBLISHES as u64 {
                    // Build outside the cell (as the serve layer does), then
                    // swap; the epoch stamped must match the sentinel value.
                    let snap = sentinel_snapshot(ADDRS, k as f64);
                    assert_eq!(cell.publish(snap), k);
                }
            });
        });
        assert_eq!(cell.load().epoch(), PUBLISHES as u64);
    }
}
