//! Application 1: route planning (Section VI-B).
//!
//! New couriers are handed a planned visiting order over the day's delivery
//! locations. Routes are solved as a TSP with nearest-neighbour construction
//! plus 2-opt improvement; planning over *inferred* delivery locations gives
//! tours whose real-world (ground-truth) length beats tours planned over
//! geocodes, because geocodes mis-place the actual stops.

use dlinfma_geo::Point;

/// A planned route: a visiting order over the input stops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Indices into the stop list, in visiting order.
    pub order: Vec<usize>,
}

impl Route {
    /// Total length of the route over the given stop coordinates, starting
    /// and ending at `depot`.
    pub fn length(&self, depot: Point, stops: &[Point]) -> f64 {
        let mut len = 0.0;
        let mut pos = depot;
        for &i in &self.order {
            len += pos.distance(&stops[i]);
            pos = stops[i];
        }
        len + pos.distance(&depot)
    }
}

/// Plans a route with nearest-neighbour construction and 2-opt improvement.
pub fn plan_route(depot: Point, stops: &[Point]) -> Route {
    let n = stops.len();
    if n == 0 {
        return Route { order: vec![] };
    }
    // Nearest-neighbour construction.
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut pos = depot;
    for _ in 0..n {
        let Some(next) = (0..n)
            .filter(|&i| !visited[i])
            .min_by(|&a, &b| pos.distance(&stops[a]).total_cmp(&pos.distance(&stops[b])))
        else {
            break;
        };
        visited[next] = true;
        order.push(next);
        pos = stops[next];
    }
    // 2-opt: reverse segments while it shortens the closed tour.
    let dist = |a: usize, b: usize| stops[a].distance(&stops[b]);
    let endpoint = |o: &[usize], i: isize| -> Point {
        if i < 0 || i as usize >= o.len() {
            depot
        } else {
            stops[o[i as usize]]
        }
    };
    let mut improved = true;
    let mut rounds = 0;
    while improved && rounds < 50 {
        improved = false;
        rounds += 1;
        for i in 0..n.saturating_sub(1) {
            for j in (i + 1)..n {
                // Edges (i-1, i) and (j, j+1) with segment [i..=j] reversed.
                let before = endpoint(&order, i as isize - 1).distance(&stops[order[i]])
                    + stops[order[j]].distance(&endpoint(&order, j as isize + 1));
                let after = endpoint(&order, i as isize - 1).distance(&stops[order[j]])
                    + stops[order[i]].distance(&endpoint(&order, j as isize + 1));
                if after + 1e-9 < before {
                    order[i..=j].reverse();
                    improved = true;
                }
            }
        }
        let _ = dist;
    }
    Route { order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn empty_and_single_stop() {
        let depot = Point::ZERO;
        assert!(plan_route(depot, &[]).order.is_empty());
        let r = plan_route(depot, &[Point::new(3.0, 4.0)]);
        assert_eq!(r.order, vec![0]);
        assert!((r.length(depot, &[Point::new(3.0, 4.0)]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn visits_every_stop_once() {
        let mut rng = StdRng::seed_from_u64(0);
        let stops: Vec<Point> = (0..30)
            .map(|_| Point::new(rng.gen_range(0.0..1e3), rng.gen_range(0.0..1e3)))
            .collect();
        let r = plan_route(Point::ZERO, &stops);
        let mut seen = r.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn two_opt_improves_or_matches_greedy_square() {
        // Four corners of a square visited from the center: optimal tour is
        // the perimeter; 2-opt must find it.
        let stops = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
        ];
        let depot = Point::new(50.0, 50.0);
        let r = plan_route(depot, &stops);
        let len = r.length(depot, &stops);
        // Optimal: depot -> corner (70.7) + 3 edges (300) + corner -> depot.
        assert!(len <= 442.0, "tour length {len}");
    }

    #[test]
    fn beats_random_order_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let stops: Vec<Point> = (0..25)
            .map(|_| Point::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)))
            .collect();
        let depot = Point::ZERO;
        let planned = plan_route(depot, &stops).length(depot, &stops);
        let identity = Route {
            order: (0..stops.len()).collect(),
        }
        .length(depot, &stops);
        assert!(
            planned <= identity,
            "planned {planned} vs identity {identity}"
        );
    }
}
