//! The deployed delivery-location store (Section VI-A, Figure 14).
//!
//! Inference runs offline; online queries hit a key-value store with a
//! three-level fallback chain exactly as deployed at JD Logistics:
//!
//! 1. the address-level inferred location;
//! 2. the *building-level* mostly-used delivery location (so brand-new
//!    addresses in a known building still resolve);
//! 3. the geocoded location.
//!
//! The store is concurrent: queries take a read lock, periodic refreshes a
//! write lock.

use dlinfma_core::DlInfMa;
use dlinfma_detcol::OrdMap;
use dlinfma_geo::Point;
use dlinfma_synth::{AddressId, BuildingId, Dataset};
use parking_lot::RwLock;
use std::collections::HashMap;

/// Which fallback level answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySource {
    /// Address-level inferred location.
    Address,
    /// Building-level mostly-used location.
    Building,
    /// Geocoded location.
    Geocode,
}

#[derive(Debug, Default)]
struct Tables {
    by_address: HashMap<AddressId, Point>,
    by_building: HashMap<BuildingId, Point>,
    geocodes: HashMap<AddressId, (BuildingId, Point)>,
}

/// Concurrent delivery-location store with the deployment fallback chain.
#[derive(Debug, Default)]
pub struct DeliveryLocationStore {
    tables: RwLock<Tables>,
}

impl DeliveryLocationStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds all tables from a trained pipeline: per-address inferred
    /// locations plus, per building, the location inferred for the most
    /// addresses (the "mostly used" building-level answer).
    pub fn refresh(&self, dataset: &Dataset, dlinfma: &DlInfMa) {
        type Votes = OrdMap<(i64, i64), (usize, Point)>;
        let mut by_address: HashMap<AddressId, Point> = HashMap::new();
        let mut building_votes: OrdMap<BuildingId, Votes> = OrdMap::new();
        for a in &dataset.addresses {
            if let Some(p) = dlinfma.infer(a.id) {
                by_address.insert(a.id, p);
                // Vote with ~1 m quantization so identical candidates merge.
                let key = ((p.x * 1.0) as i64, (p.y * 1.0) as i64);
                let slot = building_votes
                    .entry(a.building)
                    .or_default()
                    .entry(key)
                    .or_insert((0, p));
                slot.0 += 1;
            }
        }
        let by_building = building_votes
            .into_iter()
            .filter_map(|(b, votes)| {
                votes
                    .into_iter()
                    .max_by_key(|(_, (n, _))| *n)
                    .map(|(_, (_, p))| (b, p))
            })
            .collect();
        let geocodes = dataset
            .addresses
            .iter()
            .map(|a| (a.id, (a.building, a.geocode)))
            .collect();
        *self.tables.write() = Tables {
            by_address,
            by_building,
            geocodes,
        };
    }

    /// Answers a query through the fallback chain; `None` only for addresses
    /// entirely unknown to the system.
    pub fn query(&self, addr: AddressId) -> Option<(Point, QuerySource)> {
        let t = self.tables.read();
        if let Some(&p) = t.by_address.get(&addr) {
            return Some((p, QuerySource::Address));
        }
        let &(building, geocode) = t.geocodes.get(&addr)?;
        if let Some(&p) = t.by_building.get(&building) {
            return Some((p, QuerySource::Building));
        }
        Some((geocode, QuerySource::Geocode))
    }

    /// Number of address-level entries.
    pub fn len(&self) -> usize {
        self.tables.read().by_address.len()
    }

    /// True when the store holds no address-level inferences.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_core::DlInfMaConfig;
    use dlinfma_synth::{generate, spatial_split, Preset, Scale};

    fn trained_world() -> (Dataset, DlInfMa) {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 21);
        let split = spatial_split(&ds, 0.6, 0.2);
        let mut cfg = DlInfMaConfig::fast();
        cfg.model.max_epochs = 5;
        let mut dl = DlInfMa::prepare(&ds, cfg);
        dl.label_from_dataset(&ds);
        dl.train(&split.train, &split.val);
        (ds, dl)
    }

    #[test]
    fn fallback_chain_order() {
        let (ds, dl) = trained_world();
        let store = DeliveryLocationStore::new();
        store.refresh(&ds, &dl);
        assert!(!store.is_empty());

        // A delivered address answers at address level.
        let delivered = ds.waybills[0].address;
        let (_, src) = store.query(delivered).unwrap();
        assert_eq!(src, QuerySource::Address);

        // An address never delivered but whose building has deliveries
        // answers at building level; one with neither answers with geocode.
        let mut building_hit = false;
        let mut geocode_hit = false;
        for a in &ds.addresses {
            if let Some((_, src)) = store.query(a.id) {
                match src {
                    QuerySource::Building => building_hit = true,
                    QuerySource::Geocode => geocode_hit = true,
                    QuerySource::Address => {}
                }
            }
        }
        // At least one of the lower fallback levels must be reachable in a
        // tiny world (undelivered addresses exist).
        assert!(building_hit || geocode_hit);
    }

    #[test]
    fn unknown_address_is_none() {
        let store = DeliveryLocationStore::new();
        assert!(store.query(AddressId(123)).is_none());
    }

    #[test]
    fn refresh_replaces_tables() {
        let (ds, dl) = trained_world();
        let store = DeliveryLocationStore::new();
        store.refresh(&ds, &dl);
        let n1 = store.len();
        store.refresh(&ds, &dl);
        assert_eq!(store.len(), n1, "refresh must be idempotent");
    }

    #[test]
    fn concurrent_queries_while_refreshing() {
        let (ds, dl) = trained_world();
        let store = std::sync::Arc::new(DeliveryLocationStore::new());
        store.refresh(&ds, &dl);
        let addrs: Vec<AddressId> = ds.waybills.iter().map(|w| w.address).collect();
        let pool = dlinfma_pool::Pool::new(5);
        pool.scope(|scope| {
            for _ in 0..4 {
                let store = &store;
                let addrs = &addrs;
                scope.spawn(move || {
                    for &a in addrs.iter().take(200) {
                        let _ = store.query(a);
                    }
                });
            }
            scope.spawn(|| store.refresh(&ds, &dl));
        });
        assert!(!store.is_empty());
    }
}
