#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! Deployment layer (Section VI): the delivery-location store and the two
//! applications built on it.
//!
//! * [`kv`] — the concurrent address→location store with the deployed
//!   fallback chain (address → building → geocode);
//! * [`snapshot`] — immutable epoch-tagged snapshots of the same tables,
//!   published via `Arc` swap for the always-on serving layer;
//! * [`route`] — Application 1: TSP route planning over inferred locations;
//! * [`availability`] — Application 2: customer availability inference from
//!   corrected delivery times.

pub mod availability;
pub mod kv;
pub mod route;
pub mod snapshot;

pub use availability::{
    availability_profiles, corrected_delivery_time, weekly_availability, AvailabilityProfile,
    WeeklyAvailability,
};
pub use kv::{DeliveryLocationStore, QuerySource};
pub use route::{plan_route, Route};
pub use snapshot::{LocationSnapshot, SnapshotCell};
