//! Query types for the spatio-temporal store.

use dlinfma_geo::BBox;

/// A closed time interval in dataset-epoch seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: f64,
    /// Inclusive end.
    pub end: f64,
}

impl TimeRange {
    /// Creates a range; flips the endpoints if given in reverse.
    pub fn new(a: f64, b: f64) -> Self {
        if a <= b {
            Self { start: a, end: b }
        } else {
            Self { start: b, end: a }
        }
    }

    /// The unbounded range.
    pub fn all() -> Self {
        Self {
            start: f64::NEG_INFINITY,
            end: f64::INFINITY,
        }
    }

    /// True when `t` lies inside the range (boundaries inclusive).
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t <= self.end
    }

    /// Length of the range in seconds (zero for degenerate ranges).
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// A spatio-temporal range query: fixes inside `bbox` during `time`.
#[derive(Debug, Clone, Copy)]
pub struct SpatioTemporalQuery {
    /// Spatial window (boundary inclusive).
    pub bbox: BBox,
    /// Temporal window (boundary inclusive).
    pub time: TimeRange,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_normalizes_order() {
        let r = TimeRange::new(10.0, 3.0);
        assert_eq!(r.start, 3.0);
        assert_eq!(r.end, 10.0);
        assert_eq!(r.duration(), 7.0);
    }

    #[test]
    fn contains_is_inclusive() {
        let r = TimeRange::new(0.0, 10.0);
        assert!(r.contains(0.0));
        assert!(r.contains(10.0));
        assert!(!r.contains(10.000001));
        assert!(!r.contains(-0.000001));
    }

    #[test]
    fn all_contains_everything() {
        let r = TimeRange::all();
        assert!(r.contains(-1e18));
        assert!(r.contains(1e18));
    }
}
