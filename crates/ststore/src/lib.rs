#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! JUST-lite: an embedded spatio-temporal data engine.
//!
//! The deployed system (Section VI-A, Figure 14) pre-processes and stores
//! couriers' raw trajectories and waybills in JD's distributed
//! spatio-temporal platform *JUST*, from which DLInfMA pulls its inputs.
//! This crate is the single-node substitute: an embedded store with
//!
//! * spatio-temporal **range queries** over trajectory fixes
//!   (bounding box × time interval), backed by a grid × time-bucket index;
//! * **per-courier** trajectory retrieval in time order;
//! * **waybill queries** by address and by time interval;
//! * concurrent readers under `parking_lot` locks (queries while ingesting).
//!
//! The pipeline can be fed straight from a store snapshot
//! ([`TrajectoryStore::ingest_dataset`] → [`TrajectoryStore::export_dataset`]),
//! which the tests use to prove storage round-trips preserve the data the
//! inference consumes.

pub mod query;
pub mod store;

pub use query::{SpatioTemporalQuery, TimeRange};
pub use store::{StoredFix, TrajectoryStore};
