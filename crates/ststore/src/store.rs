//! The embedded trajectory/waybill store.

use crate::query::{SpatioTemporalQuery, TimeRange};
use dlinfma_detcol::OrdMap;
use dlinfma_geo::Point;
use dlinfma_synth::{AddressId, CourierId, Dataset, TripBatch, TripId, Waybill};
use dlinfma_traj::{TrajPoint, Trajectory};
use parking_lot::RwLock;

/// One stored GPS fix with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredFix {
    /// The trip the fix belongs to.
    pub trip: TripId,
    /// The courier who produced it.
    pub courier: CourierId,
    /// Location in the local metric frame.
    pub pos: Point,
    /// Time in dataset-epoch seconds.
    pub t: f64,
}

/// Spatial cell edge for the fix index, meters. Urban range queries in this
/// codebase span tens to hundreds of meters, so ~100 m cells keep buckets
/// small without exploding the cell count.
const CELL_M: f64 = 100.0;
/// Temporal bucket for the fix index, seconds (one hour).
const BUCKET_S: f64 = 3_600.0;

#[derive(Default)]
struct Inner {
    /// Grid×time index: (cell x, cell y, time bucket) -> fixes.
    st_index: OrdMap<(i64, i64, i64), Vec<StoredFix>>,
    /// Per-courier fixes in insertion (chronological) order.
    by_courier: OrdMap<CourierId, Vec<StoredFix>>,
    /// Per-trip metadata mirrored from the dataset.
    trips: OrdMap<TripId, (CourierId, f64, f64)>,
    /// All waybills in dataset order.
    waybills: Vec<Waybill>,
    /// Waybill indices per address.
    waybills_by_address: OrdMap<AddressId, Vec<usize>>,
    n_fixes: usize,
}

/// An embedded, concurrently-readable spatio-temporal store.
#[derive(Default)]
pub struct TrajectoryStore {
    inner: RwLock<Inner>,
}

fn st_key(pos: Point, t: f64) -> (i64, i64, i64) {
    (
        (pos.x / CELL_M).floor() as i64,
        (pos.y / CELL_M).floor() as i64,
        (t / BUCKET_S).floor() as i64,
    )
}

impl TrajectoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one trip's trajectory.
    pub fn ingest_trip(&self, trip: TripId, courier: CourierId, trajectory: &Trajectory) {
        let mut inner = self.inner.write();
        let (t0, t1) = (
            trajectory.start_time().unwrap_or(0.0),
            trajectory.end_time().unwrap_or(0.0),
        );
        inner.trips.insert(trip, (courier, t0, t1));
        for p in trajectory.points() {
            let fix = StoredFix {
                trip,
                courier,
                pos: p.pos,
                t: p.t,
            };
            inner
                .st_index
                .entry(st_key(p.pos, p.t))
                .or_default()
                .push(fix);
            inner.by_courier.entry(courier).or_default().push(fix);
            inner.n_fixes += 1;
        }
    }

    /// Ingests one waybill.
    pub fn ingest_waybill(&self, waybill: Waybill) {
        let mut inner = self.inner.write();
        let idx = inner.waybills.len();
        inner
            .waybills_by_address
            .entry(waybill.address)
            .or_default()
            .push(idx);
        inner.waybills.push(waybill);
    }

    /// Ingests a whole synthetic dataset (trajectories + waybills).
    pub fn ingest_dataset(&self, dataset: &Dataset) {
        for trip in &dataset.trips {
            self.ingest_trip(trip.id, trip.courier, &trip.trajectory);
        }
        for w in &dataset.waybills {
            self.ingest_waybill(w.clone());
        }
    }

    /// Ingests one replayed [`TripBatch`] (trajectories + waybills), making
    /// a streamed day of data queryable alongside the inference engine that
    /// consumes the same batch.
    pub fn ingest_batch(&self, batch: &TripBatch) {
        for trip in &batch.trips {
            self.ingest_trip(trip.id, trip.courier, &trip.trajectory);
        }
        for w in &batch.waybills {
            self.ingest_waybill(w.clone());
        }
    }

    /// Number of stored fixes.
    pub fn n_fixes(&self) -> usize {
        self.inner.read().n_fixes
    }

    /// Number of stored waybills.
    pub fn n_waybills(&self) -> usize {
        self.inner.read().waybills.len()
    }

    /// Spatio-temporal range query: all fixes inside the query window,
    /// sorted by time (ties broken by trip id for determinism).
    pub fn range_query(&self, q: &SpatioTemporalQuery) -> Vec<StoredFix> {
        let inner = self.inner.read();
        let (x0, y0, _) = st_key(q.bbox.min, 0.0);
        let (x1, y1, _) = st_key(q.bbox.max, 0.0);
        // Clamp unbounded time ranges to the buckets that actually exist.
        let (mut b0, mut b1) = (
            (q.time.start / BUCKET_S).floor(),
            (q.time.end / BUCKET_S).floor(),
        );
        if !b0.is_finite() || !b1.is_finite() {
            let buckets = inner.st_index.keys().map(|&(_, _, b)| b);
            let (lo, hi) = buckets.fold((i64::MAX, i64::MIN), |(lo, hi), b| (lo.min(b), hi.max(b)));
            if lo > hi {
                return Vec::new();
            }
            if !b0.is_finite() {
                b0 = lo as f64;
            }
            if !b1.is_finite() {
                b1 = hi as f64;
            }
        }
        let mut out = Vec::new();
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                for bucket in (b0 as i64)..=(b1 as i64) {
                    if let Some(fixes) = inner.st_index.get(&(cx, cy, bucket)) {
                        for f in fixes {
                            if q.bbox.contains(&f.pos) && q.time.contains(f.t) {
                                out.push(*f);
                            }
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| a.t.total_cmp(&b.t).then(a.trip.cmp(&b.trip)));
        out
    }

    /// A courier's trajectory within a time range, reassembled in time order.
    pub fn courier_trajectory(&self, courier: CourierId, time: TimeRange) -> Trajectory {
        let inner = self.inner.read();
        let pts: Vec<TrajPoint> = inner
            .by_courier
            .get(&courier)
            .map(|fixes| {
                fixes
                    .iter()
                    .filter(|f| time.contains(f.t))
                    .map(|f| TrajPoint::new(f.pos, f.t))
                    .collect()
            })
            .unwrap_or_default();
        Trajectory::from_points(pts)
    }

    /// Waybills shipping to an address, in ingestion order.
    pub fn waybills_for_address(&self, addr: AddressId) -> Vec<Waybill> {
        let inner = self.inner.read();
        inner
            .waybills_by_address
            .get(&addr)
            .map(|idxs| idxs.iter().map(|&i| inner.waybills[i].clone()).collect())
            .unwrap_or_default()
    }

    /// Waybills whose recorded delivery time falls in `time`.
    pub fn waybills_in_range(&self, time: TimeRange) -> Vec<Waybill> {
        let inner = self.inner.read();
        inner
            .waybills
            .iter()
            .filter(|w| time.contains(w.t_recorded_delivery))
            .cloned()
            .collect()
    }

    /// Exports a dataset snapshot the inference pipeline can consume:
    /// trajectories reassembled per trip plus all waybills, against the
    /// address/station tables of `reference` (addresses and stations are
    /// dimension data the store does not own).
    pub fn export_dataset(&self, reference: &Dataset) -> Dataset {
        let inner = self.inner.read();
        // Reassemble each trip's fixes from the courier streams.
        let mut per_trip: OrdMap<TripId, Vec<TrajPoint>> = OrdMap::new();
        for fixes in inner.by_courier.values() {
            for f in fixes {
                per_trip
                    .entry(f.trip)
                    .or_default()
                    .push(TrajPoint::new(f.pos, f.t));
            }
        }
        let mut trips = reference.trips.clone();
        for trip in &mut trips {
            if let Some(pts) = per_trip.remove(&trip.id) {
                trip.trajectory = Trajectory::from_points(pts);
            }
        }
        Dataset {
            addresses: reference.addresses.clone(),
            trips,
            waybills: inner.waybills.clone(),
            stations: reference.stations.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_geo::BBox;
    use dlinfma_synth::{generate, Preset, Scale};

    fn store_with_world() -> (Dataset, TrajectoryStore) {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 77);
        let store = TrajectoryStore::new();
        store.ingest_dataset(&ds);
        (ds, store)
    }

    #[test]
    fn ingest_counts_match_dataset() {
        let (ds, store) = store_with_world();
        assert_eq!(store.n_fixes(), ds.total_gps_points());
        assert_eq!(store.n_waybills(), ds.waybills.len());
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let (ds, store) = store_with_world();
        let q = SpatioTemporalQuery {
            bbox: BBox::new(Point::new(50.0, 50.0), Point::new(260.0, 260.0)),
            time: TimeRange::new(0.0, 2.0 * 86_400.0),
        };
        let got = store.range_query(&q);
        let mut want = 0;
        for trip in &ds.trips {
            for p in trip.trajectory.points() {
                if q.bbox.contains(&p.pos) && q.time.contains(p.t) {
                    want += 1;
                }
            }
        }
        assert_eq!(got.len(), want);
        assert!(got.windows(2).all(|w| w[0].t <= w[1].t), "sorted by time");
        for f in &got {
            assert!(q.bbox.contains(&f.pos));
            assert!(q.time.contains(f.t));
        }
    }

    #[test]
    fn unbounded_time_range_query() {
        let (ds, store) = store_with_world();
        let all = dlinfma_geo::BBox::new(Point::new(-1e5, -1e5), Point::new(1e5, 1e5));
        let got = store.range_query(&SpatioTemporalQuery {
            bbox: all,
            time: TimeRange::all(),
        });
        assert_eq!(got.len(), ds.total_gps_points());
    }

    #[test]
    fn empty_store_queries() {
        let store = TrajectoryStore::new();
        let q = SpatioTemporalQuery {
            bbox: BBox::new(Point::ZERO, Point::new(10.0, 10.0)),
            time: TimeRange::all(),
        };
        assert!(store.range_query(&q).is_empty());
        assert!(store
            .courier_trajectory(CourierId(0), TimeRange::all())
            .is_empty());
        assert!(store.waybills_for_address(AddressId(0)).is_empty());
    }

    #[test]
    fn courier_trajectory_reassembles_in_order() {
        let (ds, store) = store_with_world();
        let courier = ds.trips[0].courier;
        let traj = store.courier_trajectory(courier, TimeRange::all());
        let want: usize = ds
            .trips
            .iter()
            .filter(|t| t.courier == courier)
            .map(|t| t.trajectory.len())
            .sum();
        assert_eq!(traj.len(), want);
        assert!(traj.points().windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn waybill_queries() {
        let (ds, store) = store_with_world();
        let addr = ds.waybills[0].address;
        let got = store.waybills_for_address(addr);
        let want = ds.waybills.iter().filter(|w| w.address == addr).count();
        assert_eq!(got.len(), want);

        let day1 = TimeRange::new(0.0, 86_400.0);
        let in_range = store.waybills_in_range(day1);
        let want_range = ds
            .waybills
            .iter()
            .filter(|w| day1.contains(w.t_recorded_delivery))
            .count();
        assert_eq!(in_range.len(), want_range);
    }

    #[test]
    fn export_roundtrips_the_pipeline_inputs() {
        let (ds, store) = store_with_world();
        let exported = store.export_dataset(&ds);
        exported.validate();
        assert_eq!(exported.waybills.len(), ds.waybills.len());
        assert_eq!(exported.trips.len(), ds.trips.len());
        for (a, b) in exported.trips.iter().zip(&ds.trips) {
            assert_eq!(a.trajectory.len(), b.trajectory.len());
            assert_eq!(a.trajectory.points().first(), b.trajectory.points().first());
        }
    }

    #[test]
    fn concurrent_readers_during_ingest() {
        let (ds, _) = store_with_world();
        let store = std::sync::Arc::new(TrajectoryStore::new());
        // The workspace pool's scope joins every task before returning, so
        // the writer is guaranteed done by the assertion below.
        let pool = dlinfma_pool::Pool::new(4);
        pool.scope(|scope| {
            {
                let store = store.clone();
                let ds = &ds;
                scope.spawn(move || {
                    store.ingest_dataset(ds);
                });
            }
            for _ in 0..3 {
                let store = store.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let _ = store.n_fixes();
                        let _ = store.courier_trajectory(CourierId(0), TimeRange::all());
                    }
                });
            }
        });
        assert_eq!(store.n_fixes(), ds.total_gps_points());
    }
}
