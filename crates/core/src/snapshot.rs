//! Durable engine snapshots and warm restart.
//!
//! A snapshot is a single self-describing binary file in the `dlinfma-snap`
//! container format (magic, format version, per-section CRC — see the
//! `dlinfma-snap` crate and DESIGN.md § Snapshot format). It captures the
//! four stage artifacts ([`StayPointSet`], [`PoolState`],
//! [`RetrievalIndex`], [`SampleTable`]), the trip → station table, the
//! cumulative point counters, and — when present — the trained LocMatcher
//! weights. Everything *derived* (candidate pool, finalized samples,
//! pipeline report) is rebuilt on decode through the same
//! materialization path a cold ingest uses, and everything *observational*
//! (stage timings, health monitor) is deliberately excluded, so snapshot
//! bytes are a pure function of the ingested data.
//!
//! The defining invariant: resuming from a day-`k` checkpoint and
//! ingesting days `k+1..n` is **bit-identical** to a cold run over days
//! `1..n`, at any worker count and any shard count. The repository's
//! `resume_parity` test enforces it by comparing snapshot bytes, which is
//! the strongest equality the engine can state.
//!
//! On-disk checkpoint layout, one directory per checkpointed day:
//!
//! ```text
//! <snapshot-dir>/day-00003/manifest.snap    fleet routing state + model
//! <snapshot-dir>/day-00003/shard-0000.snap  one engine file per shard
//! <snapshot-dir>/day-00003/shard-0001.snap
//! ```
//!
//! A single (unsharded) engine is the `n_shards = 1` special case of the
//! same layout. Checkpoints are written to a hidden temporary directory
//! and atomically renamed into place, so readers never observe a
//! half-written day.

use crate::engine::{Engine, EngineSnapState};
use crate::locmatcher::LocMatcher;
use crate::pipeline::{DlInfMaConfig, PoolMethod};
use crate::sharded::ShardedEngine;
use crate::stages::{PoolState, RetrievalIndex, SampleTable, StayPointSet};
use dlinfma_pool::Pool;
use dlinfma_snap::{write_container, Dec, Enc, Sections, SnapError};
use dlinfma_synth::{Address, StationId};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Configuration fingerprint: the pipeline parameters snapshot bytes
/// depend on. Resuming under a different configuration would silently
/// break the parity invariant, so decode refuses on any mismatch.
const TAG_CONFIG: u32 = 1;
/// [`StayPointSet`] stage state.
const TAG_STAYS: u32 = 2;
/// [`PoolState`] stage state.
const TAG_POOL: u32 = 3;
/// [`RetrievalIndex`] stage state.
const TAG_RETRIEVAL: u32 = 4;
/// [`SampleTable`] stage state.
const TAG_TABLE: u32 = 5;
/// Engine-level state: trip → station table and cumulative counters.
const TAG_ENGINE: u32 = 6;
/// Trained LocMatcher weight dump (optional section).
const TAG_MODEL: u32 = 7;
/// Fleet manifest: shard count, day counters.
const TAG_FLEET: u32 = 16;
/// Persistent trip → shard routing table.
const TAG_TRIP_SHARD: u32 = 17;

/// Manifest shard counts above this are rejected as hostile (the reader
/// would otherwise probe that many files).
const MAX_SHARDS: u32 = 1 << 16;

/// Everything that can go wrong writing, reading, or validating a
/// snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The container or a section payload is malformed (wrong magic, bad
    /// checksum, truncation, …).
    Format(SnapError),
    /// The snapshot was produced under a different pipeline configuration;
    /// `what` names the first mismatching parameter.
    ConfigMismatch {
        /// The parameter that differs.
        what: &'static str,
    },
    /// Sections decoded individually but are mutually inconsistent.
    Invalid(String),
    /// A stored model's weight dump does not fit the supplied model
    /// configuration.
    ModelMismatch(String),
    /// Filesystem failure, with the path that failed.
    Io(String),
    /// No checkpoint exists in the requested directory (or for the
    /// requested day).
    NoCheckpoint(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Format(e) => write!(f, "snapshot format error: {e}"),
            SnapshotError::ConfigMismatch { what } => write!(
                f,
                "snapshot was produced under a different configuration ({what} differs)"
            ),
            SnapshotError::Invalid(what) => write!(f, "inconsistent snapshot: {what}"),
            SnapshotError::ModelMismatch(what) => {
                write!(f, "stored model does not fit the configuration: {what}")
            }
            SnapshotError::Io(what) => write!(f, "snapshot i/o error: {what}"),
            SnapshotError::NoCheckpoint(where_) => write!(f, "no checkpoint found: {where_}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapError> for SnapshotError {
    fn from(e: SnapError) -> Self {
        SnapshotError::Format(e)
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> SnapshotError {
    SnapshotError::Io(format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Section encoding
// ---------------------------------------------------------------------------

/// Encodes the configuration fingerprint. Worker count is deliberately
/// excluded: parity holds at any worker count, so a snapshot written with
/// 8 workers must resume under 1. Floats are compared bit-for-bit on
/// decode — a configuration that differs in the 17th decimal place is a
/// different configuration.
fn encode_config(cfg: &DlInfMaConfig, e: &mut Enc) {
    e.f64(cfg.extraction.noise.max_speed_mps);
    e.f64(cfg.extraction.noise.min_dt_s);
    e.f64(cfg.extraction.stay.d_max_m);
    e.f64(cfg.extraction.stay.t_min_s);
    e.f64(cfg.clustering_distance_m);
    e.u8(match cfg.pool_method {
        PoolMethod::Hierarchical => 0,
        PoolMethod::Grid => 1,
    });
    e.bool(cfg.features.use_trip_coverage);
    e.bool(cfg.features.use_location_commonality);
    e.bool(cfg.features.use_distance);
    e.bool(cfg.features.use_profile);
    e.bool(cfg.features.lc_address_level);
}

/// Validates a stored fingerprint against the live configuration,
/// naming the first mismatching parameter.
fn check_config(cfg: &DlInfMaConfig, payload: &[u8]) -> Result<(), SnapshotError> {
    let mut d = Dec::new(payload);
    let mut float = |want: f64, what: &'static str| -> Result<(), SnapshotError> {
        if d.f64()?.to_bits() == want.to_bits() {
            Ok(())
        } else {
            Err(SnapshotError::ConfigMismatch { what })
        }
    };
    float(cfg.extraction.noise.max_speed_mps, "noise.max_speed_mps")?;
    float(cfg.extraction.noise.min_dt_s, "noise.min_dt_s")?;
    float(cfg.extraction.stay.d_max_m, "stay.d_max_m")?;
    float(cfg.extraction.stay.t_min_s, "stay.t_min_s")?;
    float(cfg.clustering_distance_m, "clustering_distance_m")?;
    let method = match cfg.pool_method {
        PoolMethod::Hierarchical => 0u8,
        PoolMethod::Grid => 1,
    };
    if d.u8()? != method {
        return Err(SnapshotError::ConfigMismatch {
            what: "pool_method",
        });
    }
    let flags = [
        (cfg.features.use_trip_coverage, "features.use_trip_coverage"),
        (
            cfg.features.use_location_commonality,
            "features.use_location_commonality",
        ),
        (cfg.features.use_distance, "features.use_distance"),
        (cfg.features.use_profile, "features.use_profile"),
        (cfg.features.lc_address_level, "features.lc_address_level"),
    ];
    for (want, what) in flags {
        if d.bool()? != want {
            return Err(SnapshotError::ConfigMismatch { what });
        }
    }
    d.finish()?;
    Ok(())
}

/// Encodes the engine-level section: the trip → station table sorted by
/// trip id, then the cumulative raw/filtered point counters.
fn encode_engine_section(st: &EngineSnapState<'_>, e: &mut Enc) {
    let mut pairs: Vec<(u32, u32)> = st.trip_station.iter().map(|(&t, s)| (t, s.0)).collect();
    pairs.sort_unstable();
    e.usize(pairs.len());
    for (t, s) in pairs {
        e.u32(t);
        e.u32(s);
    }
    e.u64(st.cum_raw_points);
    e.u64(st.cum_filtered_points);
}

/// Decodes the engine-level section. Trips must be strictly ascending —
/// the canonical order the encoder writes — which doubles as a duplicate
/// check.
fn decode_engine_section(payload: &[u8]) -> Result<(HashMap<u32, StationId>, u64, u64), SnapError> {
    let mut d = Dec::new(payload);
    let n = d.seq_len(8)?;
    let mut trip_station: HashMap<u32, StationId> = HashMap::with_capacity(n);
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        let t = d.u32()?;
        if prev.is_some_and(|p| p >= t) {
            return Err(SnapError::Malformed {
                what: "trip -> station table is not strictly ascending",
            });
        }
        prev = Some(t);
        trip_station.insert(t, StationId(d.u32()?));
    }
    let cum_raw = d.u64()?;
    let cum_filtered = d.u64()?;
    d.finish()?;
    Ok((trip_station, cum_raw, cum_filtered))
}

/// Encodes a trained model as its `(name, shape, data)` weight dump.
fn encode_model(model: &LocMatcher, e: &mut Enc) {
    let weights = model.export_weights();
    e.usize(weights.len());
    for (name, shape, data) in &weights {
        e.str(name);
        e.usize(shape.len());
        for &dim in shape {
            e.usize(dim);
        }
        e.usize(data.len());
        for &w in data {
            e.f32(w);
        }
    }
}

/// Decodes a weight dump and rebuilds the model under `cfg`.
fn decode_model(cfg: &DlInfMaConfig, payload: &[u8]) -> Result<LocMatcher, SnapshotError> {
    let mut d = Dec::new(payload);
    let n = d.seq_len(24)?;
    let mut weights: Vec<(String, Vec<usize>, Vec<f32>)> = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let n_dims = d.seq_len(8)?;
        let mut shape: Vec<usize> = Vec::with_capacity(n_dims);
        for _ in 0..n_dims {
            shape.push(d.usize()?);
        }
        let n_data = d.seq_len(4)?;
        let mut data: Vec<f32> = Vec::with_capacity(n_data);
        for _ in 0..n_data {
            data.push(d.f32()?);
        }
        weights.push((name, shape, data));
    }
    d.finish()?;
    let mut model_cfg = cfg.model;
    model_cfg.features = cfg.features;
    LocMatcher::from_weights(model_cfg, &weights).map_err(SnapshotError::ModelMismatch)
}

// ---------------------------------------------------------------------------
// Whole-engine encode / decode
// ---------------------------------------------------------------------------

/// Serializes one engine (a fleet shard, or the whole pipeline in single
/// mode) to snapshot bytes. The bytes are a pure function of the ingested
/// data and the configuration — equal inputs yield equal bytes at any
/// worker count, which is what lets CI assert determinism with `cmp` and
/// the parity test assert resume correctness by byte equality.
pub fn engine_to_bytes(engine: &Engine) -> Vec<u8> {
    let st = engine.snap_state();
    let mut config = Enc::new();
    encode_config(engine.config(), &mut config);
    let mut stays = Enc::new();
    st.stays.snap_encode(&mut stays);
    let mut pool = Enc::new();
    st.pool_state.snap_encode(&mut pool);
    let mut retrieval = Enc::new();
    st.retrieval.snap_encode(&mut retrieval);
    let mut table = Enc::new();
    st.table.snap_encode(&mut table);
    let mut eng = Enc::new();
    encode_engine_section(&st, &mut eng);
    let mut sections = vec![
        (TAG_CONFIG, config.into_bytes()),
        (TAG_STAYS, stays.into_bytes()),
        (TAG_POOL, pool.into_bytes()),
        (TAG_RETRIEVAL, retrieval.into_bytes()),
        (TAG_TABLE, table.into_bytes()),
        (TAG_ENGINE, eng.into_bytes()),
    ];
    if let Some(model) = st.model {
        let mut m = Enc::new();
        encode_model(model, &mut m);
        sections.push((TAG_MODEL, m.into_bytes()));
    }
    write_container(&sections)
}

/// Restores one engine from snapshot bytes. `addresses` and `cfg` are the
/// static inputs the snapshot does not carry (the dataset's address book
/// and the live configuration); the stored fingerprint must match `cfg`.
/// Decode never panics on hostile bytes — every failure is a typed
/// [`SnapshotError`].
pub fn engine_from_bytes(
    bytes: &[u8],
    addresses: Vec<Address>,
    cfg: DlInfMaConfig,
    exec: Arc<Pool>,
) -> Result<Engine, SnapshotError> {
    let sections = Sections::parse(bytes)?;
    check_config(&cfg, sections.require(TAG_CONFIG)?)?;

    let mut d = Dec::new(sections.require(TAG_STAYS)?);
    let stays = StayPointSet::snap_decode(&mut d)?;
    d.finish()?;

    let mut d = Dec::new(sections.require(TAG_POOL)?);
    let pool_state = PoolState::snap_decode(&mut d, stays.len())?;
    d.finish()?;

    let mut d = Dec::new(sections.require(TAG_RETRIEVAL)?);
    let retrieval = RetrievalIndex::snap_decode(&mut d)?;
    d.finish()?;

    let mut d = Dec::new(sections.require(TAG_TABLE)?);
    let table = SampleTable::snap_decode(&mut d)?;
    d.finish()?;

    let (trip_station, cum_raw, cum_filtered) =
        decode_engine_section(sections.require(TAG_ENGINE)?)?;
    for rec in stays.recs() {
        if !trip_station.contains_key(&rec.trip.0) {
            return Err(SnapshotError::Invalid(format!(
                "stay references trip {} missing from the trip -> station table",
                rec.trip.0
            )));
        }
    }

    let model = match sections.get(TAG_MODEL) {
        Some(payload) => Some(decode_model(&cfg, payload)?),
        None => None,
    };

    Ok(Engine::from_restored(
        addresses,
        cfg,
        exec,
        stays,
        pool_state,
        retrieval,
        table,
        trip_station,
        cum_raw,
        cum_filtered,
        model,
    ))
}

// ---------------------------------------------------------------------------
// Fleet manifest
// ---------------------------------------------------------------------------

/// Serializes the fleet-level routing state (shard count, day counters,
/// trip → shard table, fleet model). A single engine is written as an
/// `n_shards = 1` manifest with an empty routing table, so readers handle
/// both modes through one format.
fn manifest_to_bytes(
    cfg: &DlInfMaConfig,
    n_shards: u32,
    days_ingested: u32,
    shard_days: &[u32],
    trip_shard: &HashMap<u32, usize>,
    model: Option<&LocMatcher>,
) -> Vec<u8> {
    let mut config = Enc::new();
    encode_config(cfg, &mut config);
    let mut fleet = Enc::new();
    fleet.u32(n_shards);
    fleet.u32(days_ingested);
    fleet.usize(shard_days.len());
    for &days in shard_days {
        fleet.u32(days);
    }
    let mut routes = Enc::new();
    let mut pairs: Vec<(u32, u32)> = trip_shard.iter().map(|(&t, &s)| (t, s as u32)).collect();
    pairs.sort_unstable();
    routes.usize(pairs.len());
    for (t, s) in pairs {
        routes.u32(t);
        routes.u32(s);
    }
    let mut sections = vec![
        (TAG_CONFIG, config.into_bytes()),
        (TAG_FLEET, fleet.into_bytes()),
        (TAG_TRIP_SHARD, routes.into_bytes()),
    ];
    if let Some(model) = model {
        let mut m = Enc::new();
        encode_model(model, &mut m);
        sections.push((TAG_MODEL, m.into_bytes()));
    }
    write_container(&sections)
}

/// Decoded manifest, pre-validation against the shard files.
struct Manifest {
    n_shards: u32,
    days_ingested: u32,
    shard_days: Vec<u32>,
    trip_shard: HashMap<u32, usize>,
    model: Option<LocMatcher>,
}

fn manifest_from_bytes(bytes: &[u8], cfg: &DlInfMaConfig) -> Result<Manifest, SnapshotError> {
    let sections = Sections::parse(bytes)?;
    check_config(cfg, sections.require(TAG_CONFIG)?)?;

    let mut d = Dec::new(sections.require(TAG_FLEET)?);
    let n_shards = d.u32()?;
    if n_shards == 0 || n_shards > MAX_SHARDS {
        return Err(SnapshotError::Invalid(format!(
            "manifest declares {n_shards} shards (supported: 1..={MAX_SHARDS})"
        )));
    }
    let days_ingested = d.u32()?;
    let n_days = d.seq_len(4)?;
    if n_days != n_shards as usize {
        return Err(SnapshotError::Invalid(format!(
            "manifest has {n_days} per-shard day counters for {n_shards} shards"
        )));
    }
    let mut shard_days: Vec<u32> = Vec::with_capacity(n_days);
    for _ in 0..n_days {
        shard_days.push(d.u32()?);
    }
    d.finish()?;

    let mut d = Dec::new(sections.require(TAG_TRIP_SHARD)?);
    let n_routes = d.seq_len(8)?;
    let mut trip_shard: HashMap<u32, usize> = HashMap::with_capacity(n_routes);
    let mut prev: Option<u32> = None;
    for _ in 0..n_routes {
        let t = d.u32()?;
        if prev.is_some_and(|p| p >= t) {
            return Err(SnapshotError::Format(SnapError::Malformed {
                what: "trip -> shard table is not strictly ascending",
            }));
        }
        prev = Some(t);
        let s = d.u32()?;
        if s >= n_shards {
            return Err(SnapshotError::Invalid(format!(
                "trip {t} routes to shard {s} of {n_shards}"
            )));
        }
        trip_shard.insert(t, s as usize);
    }
    d.finish()?;

    let model = match sections.get(TAG_MODEL) {
        Some(payload) => Some(decode_model(cfg, payload)?),
        None => None,
    };

    Ok(Manifest {
        n_shards,
        days_ingested,
        shard_days,
        trip_shard,
        model,
    })
}

// ---------------------------------------------------------------------------
// Filesystem checkpoints
// ---------------------------------------------------------------------------

/// The checkpoint directory name for one day: `day-00003`.
pub fn checkpoint_dir_name(day: u32) -> String {
    format!("day-{day:05}")
}

/// The shard file name inside a checkpoint directory: `shard-0000.snap`.
pub fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:04}.snap")
}

fn write_file(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    std::fs::write(path, bytes).map_err(|e| io_err(path, &e))
}

/// Writes a checkpoint directory atomically: all files land in a hidden
/// temporary sibling first, which is then renamed to `day-NNNNN`. An
/// existing checkpoint for the same day is replaced.
fn commit_checkpoint(
    dir: &Path,
    day: u32,
    files: &[(String, Vec<u8>)],
) -> Result<PathBuf, SnapshotError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
    let final_dir = dir.join(checkpoint_dir_name(day));
    let tmp_dir = dir.join(format!(".tmp-{}", checkpoint_dir_name(day)));
    if tmp_dir.exists() {
        std::fs::remove_dir_all(&tmp_dir).map_err(|e| io_err(&tmp_dir, &e))?;
    }
    std::fs::create_dir(&tmp_dir).map_err(|e| io_err(&tmp_dir, &e))?;
    for (name, bytes) in files {
        write_file(&tmp_dir.join(name), bytes)?;
    }
    if final_dir.exists() {
        std::fs::remove_dir_all(&final_dir).map_err(|e| io_err(&final_dir, &e))?;
    }
    std::fs::rename(&tmp_dir, &final_dir).map_err(|e| io_err(&final_dir, &e))?;
    Ok(final_dir)
}

/// Checkpoints a single engine after ingesting `day` days. Returns the
/// checkpoint directory (`<dir>/day-NNNNN`).
///
/// # Errors
/// Propagates filesystem failures; the target directory is created if
/// missing.
pub fn write_engine_checkpoint(
    dir: &Path,
    day: u32,
    engine: &Engine,
) -> Result<PathBuf, SnapshotError> {
    let manifest = manifest_to_bytes(
        engine.config(),
        1,
        day,
        &[day],
        &HashMap::new(),
        // The single-engine model travels in the shard file.
        None,
    );
    let files = vec![
        ("manifest.snap".to_string(), manifest),
        (shard_file_name(0), engine_to_bytes(engine)),
    ];
    commit_checkpoint(dir, day, &files)
}

/// Checkpoints a sharded fleet after ingesting `day` days: one manifest
/// plus one snapshot file per shard.
///
/// # Errors
/// Propagates filesystem failures; the target directory is created if
/// missing.
pub fn write_fleet_checkpoint(
    dir: &Path,
    day: u32,
    fleet: &ShardedEngine,
) -> Result<PathBuf, SnapshotError> {
    let (shard_days, trip_shard, model) = fleet.snap_state();
    let manifest = manifest_to_bytes(
        fleet.config(),
        fleet.n_shards() as u32,
        day,
        shard_days,
        trip_shard,
        model,
    );
    let mut files = vec![("manifest.snap".to_string(), manifest)];
    for s in 0..fleet.n_shards() {
        files.push((shard_file_name(s), engine_to_bytes(fleet.shard(s))));
    }
    commit_checkpoint(dir, day, &files)
}

/// A restored pipeline: either a single engine or a sharded fleet,
/// matching whatever wrote the checkpoint.
pub enum RestoredEngine {
    /// An unsharded engine (checkpoint had one shard and no routing table).
    Single(Box<Engine>),
    /// A station-sharded fleet.
    Fleet(Box<ShardedEngine>),
}

/// A checkpoint restored from disk.
pub struct Checkpoint {
    /// How many days the checkpointed pipeline had ingested.
    pub days_ingested: u32,
    /// The restored pipeline, ready to keep ingesting or serve.
    pub engine: RestoredEngine,
}

/// Days with a checkpoint under `dir`, ascending. Ignores files and
/// directories that do not match the `day-NNNNN` pattern (including the
/// hidden temporaries of an interrupted write).
///
/// # Errors
/// Propagates filesystem failures; a missing `dir` yields an empty list.
pub fn checkpoint_days(dir: &Path) -> Result<Vec<u32>, SnapshotError> {
    let mut days: Vec<u32> = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(days),
        Err(e) => return Err(io_err(dir, &e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(digits) = name.strip_prefix("day-") else {
            continue;
        };
        if digits.len() == 5 && digits.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(day) = digits.parse::<u32>() {
                days.push(day);
            }
        }
    }
    days.sort_unstable();
    Ok(days)
}

/// The most recent checkpointed day under `dir`, if any.
///
/// # Errors
/// Propagates filesystem failures.
pub fn latest_checkpoint(dir: &Path) -> Result<Option<u32>, SnapshotError> {
    Ok(checkpoint_days(dir)?.into_iter().next_back())
}

/// Reads the day-`day` checkpoint under `dir` and restores the pipeline.
/// `addresses` and `cfg` must be the same static inputs the writer ran
/// with; the stored configuration fingerprint is validated and the worker
/// pool is rebuilt from `cfg.workers`.
///
/// # Errors
/// [`SnapshotError::NoCheckpoint`] when the day directory is missing; any
/// format, fingerprint, or consistency failure otherwise.
pub fn read_checkpoint(
    dir: &Path,
    day: u32,
    addresses: &[Address],
    cfg: DlInfMaConfig,
) -> Result<Checkpoint, SnapshotError> {
    let day_dir = dir.join(checkpoint_dir_name(day));
    if !day_dir.is_dir() {
        return Err(SnapshotError::NoCheckpoint(format!(
            "{} does not exist",
            day_dir.display()
        )));
    }
    let manifest_path = day_dir.join("manifest.snap");
    let manifest_bytes = std::fs::read(&manifest_path).map_err(|e| io_err(&manifest_path, &e))?;
    let manifest = manifest_from_bytes(&manifest_bytes, &cfg)?;

    let exec = Arc::new(Pool::new(cfg.workers));
    let mut shards: Vec<Engine> = Vec::with_capacity(manifest.n_shards as usize);
    for s in 0..manifest.n_shards as usize {
        let shard_path = day_dir.join(shard_file_name(s));
        let bytes = std::fs::read(&shard_path).map_err(|e| io_err(&shard_path, &e))?;
        shards.push(engine_from_bytes(
            &bytes,
            addresses.to_vec(),
            cfg,
            Arc::clone(&exec),
        )?);
    }

    let engine = if manifest.n_shards == 1 && manifest.trip_shard.is_empty() {
        let Some(engine) = shards.pop() else {
            return Err(SnapshotError::Invalid("no shard files decoded".to_string()));
        };
        RestoredEngine::Single(Box::new(engine))
    } else {
        RestoredEngine::Fleet(Box::new(ShardedEngine::from_restored(
            shards,
            exec,
            manifest.model,
            manifest.days_ingested,
            manifest.shard_days,
            manifest.trip_shard,
        )))
    };
    Ok(Checkpoint {
        days_ingested: manifest.days_ingested,
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{generate_with, world_config, Dataset, Preset, Scale, TripBatch};

    fn tiny() -> Dataset {
        let mut world = world_config(Preset::DowBJ, Scale::Tiny);
        world.sim.n_stations = 3;
        let (_, ds) = generate_with(&world, 21);
        ds
    }

    fn fast_cfg() -> DlInfMaConfig {
        let mut cfg = DlInfMaConfig::fast();
        cfg.workers = 2;
        cfg
    }

    #[test]
    fn engine_round_trips_through_bytes_bit_identically() {
        let ds = tiny();
        let cfg = fast_cfg();
        let mut engine = Engine::new(ds.addresses.clone(), cfg);
        for batch in dlinfma_synth::replay(&ds) {
            engine.ingest(&batch);
        }
        let bytes = engine_to_bytes(&engine);
        let exec = Arc::new(Pool::new(cfg.workers));
        let restored =
            engine_from_bytes(&bytes, ds.addresses.clone(), cfg, exec).expect("round trip decodes");
        assert_eq!(bytes, engine_to_bytes(&restored));
        assert_eq!(engine.n_stays(), restored.n_stays());
        assert_eq!(engine.pool().len(), restored.pool().len());
        assert_eq!(engine.n_trips(), restored.n_trips());
    }

    #[test]
    fn config_fingerprint_rejects_a_different_configuration() {
        let ds = tiny();
        let cfg = fast_cfg();
        let mut engine = Engine::new(ds.addresses.clone(), cfg);
        for batch in dlinfma_synth::replay(&ds) {
            engine.ingest(&batch);
        }
        let bytes = engine_to_bytes(&engine);
        let mut other = cfg;
        other.clustering_distance_m += 1.0;
        let exec = Arc::new(Pool::new(2));
        let Err(err) = engine_from_bytes(&bytes, ds.addresses.clone(), other, exec) else {
            panic!("fingerprint must reject");
        };
        assert!(matches!(
            err,
            SnapshotError::ConfigMismatch {
                what: "clustering_distance_m"
            }
        ));
    }

    #[test]
    fn checkpoint_files_round_trip_for_single_and_fleet() {
        let ds = tiny();
        let cfg = fast_cfg();
        let dir = std::env::temp_dir().join(format!("dlinfma-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut engine = Engine::new(ds.addresses.clone(), cfg);
        let mut fleet = ShardedEngine::new(ds.addresses.clone(), cfg, 3);
        let days: Vec<TripBatch> = dlinfma_synth::replay(&ds).collect();
        for day in &days {
            engine.ingest(day);
            fleet.ingest(day);
        }
        write_engine_checkpoint(&dir.join("single"), days.len() as u32, &engine)
            .expect("single checkpoint writes");
        write_fleet_checkpoint(&dir.join("fleet"), days.len() as u32, &fleet)
            .expect("fleet checkpoint writes");
        assert_eq!(
            latest_checkpoint(&dir.join("single")).expect("listable"),
            Some(days.len() as u32)
        );
        assert_eq!(
            latest_checkpoint(&dir.join("missing")).expect("empty ok"),
            None
        );

        let single = read_checkpoint(&dir.join("single"), days.len() as u32, &ds.addresses, cfg)
            .expect("single restores");
        assert_eq!(single.days_ingested, days.len() as u32);
        let RestoredEngine::Single(restored) = single.engine else {
            panic!("expected a single engine");
        };
        assert_eq!(engine_to_bytes(&engine), engine_to_bytes(&restored));

        let restored_fleet =
            read_checkpoint(&dir.join("fleet"), days.len() as u32, &ds.addresses, cfg)
                .expect("fleet restores");
        let RestoredEngine::Fleet(restored) = restored_fleet.engine else {
            panic!("expected a fleet");
        };
        assert_eq!(restored.n_shards(), 3);
        for s in 0..3 {
            assert_eq!(
                engine_to_bytes(fleet.shard(s)),
                engine_to_bytes(restored.shard(s))
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
