//! The accumulated stay-point set and its radius-`D` connectivity.
//!
//! Stays are appended in ingest order, so a stay's index doubles as a
//! stable, globally-unique identifier. A union-find over the "closer than
//! `D` *and* same station" relation partitions the set into *clustering
//! components*: connected components are a property of the point set alone,
//! so batch and streaming ingestion agree on them regardless of arrival
//! order — the foundation of the engine's parity guarantee.
//!
//! Station-scoping the relation is what makes the engine *shardable*: a
//! component never spans stations, so an engine fed only one station's
//! trips computes exactly the components a whole-city engine computes for
//! that station (the paper deploys DLInfMA per delivery station, Section
//! VI). Two stays of different stations never union even when spatially
//! close — mirroring the deployed system, where each station's pipeline
//! only ever sees its own couriers' trajectories.

use dlinfma_geo::{GridIndex, Point};
use dlinfma_snap::{Dec, Enc, SnapError};
use dlinfma_synth::{CourierId, StationId, TripId};

/// Highest trip index a snapshot may reference. Trip ids size the dense
/// per-trip tables (`by_trip`, the materialized visit table), so a hostile
/// snapshot with a huge id would otherwise provoke a giant allocation
/// before any validation could reject it. Sixteen million trips is far
/// beyond any supported scale.
pub(crate) const MAX_TRIP_INDEX: usize = 1 << 24;

/// One ingested stay point with the metadata every later stage needs.
#[derive(Debug, Clone)]
pub struct StayRec {
    /// The trip the stay belongs to.
    pub trip: TripId,
    /// Spatial centroid of the stay.
    pub pos: Point,
    /// Representative (mid-interval) time of the stay.
    pub mid_time: f64,
    /// Dwell duration, seconds.
    pub duration_s: f64,
    /// Hour-of-day bin of `mid_time`.
    pub hour_bin: usize,
    /// Courier who made the stay.
    pub courier: CourierId,
    /// Station of the trip's courier; the shard key. Connectivity (and so
    /// clustering) never crosses stations.
    pub station: StationId,
}

/// Append-only stay-point store with incremental connectivity.
#[derive(Debug)]
pub struct StayPointSet {
    radius: f64,
    stays: Vec<StayRec>,
    grid: GridIndex<usize>,
    /// Union-find parent per stay (union by size, path halving).
    parent: Vec<usize>,
    size: Vec<u32>,
    /// Stay indices per trip id, chronological within each trip.
    by_trip: Vec<Vec<usize>>,
}

impl StayPointSet {
    /// An empty set whose components connect stays strictly closer than
    /// `radius` (the clustering distance `D`).
    ///
    /// # Panics
    /// Panics if `radius` is not strictly positive and finite (the same
    /// contract as the clustering it feeds).
    pub fn new(radius: f64) -> Self {
        Self {
            radius,
            stays: Vec::new(),
            grid: GridIndex::new(radius),
            parent: Vec::new(),
            size: Vec::new(),
            by_trip: Vec::new(),
        }
    }

    /// Number of stays ingested so far.
    pub fn len(&self) -> usize {
        self.stays.len()
    }

    /// True when no stays were ingested.
    pub fn is_empty(&self) -> bool {
        self.stays.is_empty()
    }

    /// The stay at global index `i`.
    pub fn rec(&self, i: usize) -> &StayRec {
        &self.stays[i]
    }

    /// All stays in ingest order.
    pub fn recs(&self) -> &[StayRec] {
        &self.stays
    }

    /// Stay indices of one trip (empty for unknown trips), chronological.
    pub fn stays_of_trip(&self, trip: TripId) -> &[usize] {
        self.by_trip.get(trip.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// Appends a stay, connecting it to every existing *same-station* stay
    /// strictly closer than the component radius. Returns the stay's global
    /// index.
    pub fn push(&mut self, rec: StayRec) -> usize {
        let i = self.stays.len();
        let pos = rec.pos;
        let station = rec.station;
        let trip_idx = rec.trip.0 as usize;
        if self.by_trip.len() <= trip_idx {
            self.by_trip.resize_with(trip_idx + 1, Vec::new);
        }
        self.by_trip[trip_idx].push(i);
        self.stays.push(rec);
        self.parent.push(i);
        self.size.push(1);

        let r2 = self.radius * self.radius;
        let mut neighbours: Vec<usize> = Vec::new();
        self.grid.for_each_within(&pos, self.radius, |p, &j| {
            // The grid query is boundary-inclusive; the component relation
            // is strict, mirroring the clustering threshold — and scoped to
            // the stay's station so components shard cleanly.
            if self.stays[j].station == station && p.distance_sq(&pos) < r2 {
                neighbours.push(j);
            }
        });
        for j in neighbours {
            self.union(i, j);
        }
        self.grid.insert(pos, i);
        i
    }

    /// Representative stay of `i`'s component.
    pub fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
    }

    /// The component root of every stay, in one pass.
    pub fn roots(&mut self) -> Vec<usize> {
        (0..self.stays.len()).map(|i| self.find(i)).collect()
    }

    /// Read-only root lookup: follows the parent chain without compressing
    /// it. Path halving never changes which stay is a component's root, so
    /// this agrees with [`StayPointSet::find`] on every input — it exists
    /// so encoding a snapshot does not mutate (and therefore cannot
    /// depend on) the incidental parent-pointer layout.
    fn root_of(&self, mut i: usize) -> usize {
        while let Some(&p) = self.parent.get(i) {
            if p == i {
                return i;
            }
            i = p;
        }
        i
    }

    /// Encodes the set for a snapshot: radius, stays in ingest order, and
    /// the *canonical* root of every stay. Canonical roots (rather than the
    /// raw parent array) make the bytes a pure function of the union
    /// history — path compression timing differs between a cold run and a
    /// resumed one, but the roots it converges to never do.
    pub(crate) fn snap_encode(&self, e: &mut Enc) {
        e.f64(self.radius);
        e.usize(self.stays.len());
        for rec in &self.stays {
            e.u32(rec.trip.0);
            e.f64(rec.pos.x);
            e.f64(rec.pos.y);
            e.f64(rec.mid_time);
            e.f64(rec.duration_s);
            e.u8(rec.hour_bin as u8);
            e.u32(rec.courier.0);
            e.u32(rec.station.0);
        }
        for i in 0..self.stays.len() {
            e.usize(self.root_of(i));
        }
    }

    /// Decodes a snapshot produced by [`StayPointSet::snap_encode`],
    /// validating every field and rebuilding the derived state (grid,
    /// per-trip index, component sizes). Never panics on hostile bytes.
    pub(crate) fn snap_decode(d: &mut Dec) -> Result<Self, SnapError> {
        let radius = d.f64()?;
        if !(radius.is_finite() && radius > 0.0) {
            return Err(SnapError::Malformed {
                what: "stay radius must be positive and finite",
            });
        }
        // One stay is 45 bytes; its root adds 8 more.
        let n = d.seq_len(45)?;
        let mut stays: Vec<StayRec> = Vec::with_capacity(n);
        for _ in 0..n {
            let trip = TripId(d.u32()?);
            if trip.0 as usize >= MAX_TRIP_INDEX {
                return Err(SnapError::Malformed {
                    what: "stay trip id exceeds the format's trip-index cap",
                });
            }
            let pos = Point::new(d.f64()?, d.f64()?);
            let mid_time = d.f64()?;
            let duration_s = d.f64()?;
            let hour_bin = usize::from(d.u8()?);
            if hour_bin >= crate::candidates::TIME_BINS {
                return Err(SnapError::Malformed {
                    what: "stay hour bin out of range",
                });
            }
            let courier = CourierId(d.u32()?);
            let station = StationId(d.u32()?);
            stays.push(StayRec {
                trip,
                pos,
                mid_time,
                duration_s,
                hour_bin,
                courier,
                station,
            });
        }
        let mut parent: Vec<usize> = Vec::with_capacity(n);
        for _ in 0..n {
            let r = d.usize()?;
            if r >= n {
                return Err(SnapError::Malformed {
                    what: "stay root out of range",
                });
            }
            parent.push(r);
        }
        // Canonical roots are idempotent: a root's own entry points to
        // itself. Anything else is not a forest of depth <= 1.
        for &r in &parent {
            if parent.get(r) != Some(&r) {
                return Err(SnapError::Malformed {
                    what: "stay roots are not canonical",
                });
            }
        }
        // Component sizes: union-by-size only ever reads the size of a
        // *root*, so counting members per root reproduces every future
        // union decision a cold engine would make.
        let mut size = vec![0u32; n];
        for &r in &parent {
            if let Some(s) = size.get_mut(r) {
                *s += 1;
            }
        }
        let mut grid = GridIndex::new(radius);
        let mut by_trip: Vec<Vec<usize>> = Vec::new();
        for (i, rec) in stays.iter().enumerate() {
            grid.insert(rec.pos, i);
            let t = rec.trip.0 as usize;
            if by_trip.len() <= t {
                by_trip.resize_with(t + 1, Vec::new);
            }
            if let Some(list) = by_trip.get_mut(t) {
                list.push(i);
            }
        }
        Ok(Self {
            radius,
            stays,
            grid,
            parent,
            size,
            by_trip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(x: f64, y: f64) -> StayRec {
        StayRec {
            trip: TripId(0),
            pos: Point::new(x, y),
            mid_time: 0.0,
            duration_s: 60.0,
            hour_bin: 0,
            courier: CourierId(0),
            station: StationId(0),
        }
    }

    #[test]
    fn components_are_transitive_and_strict() {
        let mut s = StayPointSet::new(40.0);
        let a = s.push(rec(0.0, 0.0));
        let b = s.push(rec(100.0, 0.0));
        assert_ne!(s.find(a), s.find(b), "far stays are separate components");
        // Exactly 40 m apart is NOT connected (strict threshold)...
        let c = s.push(rec(40.0, 0.0));
        assert_ne!(s.find(a), s.find(c));
        // ...but a bridge below 40 m links a chain a - d - b transitively.
        let d = s.push(rec(65.0, 0.0));
        assert_eq!(s.find(c), s.find(d));
        assert_eq!(s.find(d), s.find(b));
        assert_ne!(s.find(a), s.find(b));
        let e = s.push(rec(20.0, 0.0));
        assert_eq!(s.find(a), s.find(e));
        assert_eq!(s.find(a), s.find(b), "e bridges everything");
    }

    #[test]
    fn insertion_order_does_not_change_components() {
        let pts = [
            (0.0, 0.0),
            (35.0, 10.0),
            (300.0, 0.0),
            (18.0, -20.0),
            (320.0, 25.0),
        ];
        let canonical = |order: &[usize]| -> Vec<Vec<(i64, i64)>> {
            let mut s = StayPointSet::new(40.0);
            let mut idx_of = vec![0usize; pts.len()];
            for &o in order {
                idx_of[o] = s.push(rec(pts[o].0, pts[o].1));
            }
            // Group original point ids by component, canonically sorted.
            let mut groups: std::collections::BTreeMap<usize, Vec<(i64, i64)>> = Default::default();
            for (o, p) in pts.iter().enumerate() {
                let root = s.find(idx_of[o]);
                groups
                    .entry(root)
                    .or_default()
                    .push((p.0 as i64, p.1 as i64));
            }
            let mut out: Vec<Vec<(i64, i64)>> = groups
                .into_values()
                .map(|mut v| {
                    v.sort_unstable();
                    v
                })
                .collect();
            out.sort();
            out
        };
        let a = canonical(&[0, 1, 2, 3, 4]);
        let b = canonical(&[4, 2, 3, 0, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn components_never_cross_stations() {
        let mut s = StayPointSet::new(40.0);
        let a = s.push(rec(0.0, 0.0));
        let mut other = rec(10.0, 0.0);
        other.station = StationId(1);
        let b = s.push(other);
        // Spatially well within D, but different stations: separate.
        assert_ne!(s.find(a), s.find(b));
        // A same-station stay between them joins only its own station.
        let c = s.push(rec(5.0, 0.0));
        assert_eq!(s.find(a), s.find(c));
        assert_ne!(s.find(b), s.find(c));
    }

    #[test]
    fn stays_of_trip_tracks_sparse_trip_ids() {
        let mut s = StayPointSet::new(40.0);
        let mut r = rec(0.0, 0.0);
        r.trip = TripId(3);
        s.push(r);
        assert!(s.stays_of_trip(TripId(0)).is_empty());
        assert!(s.stays_of_trip(TripId(7)).is_empty());
        assert_eq!(s.stays_of_trip(TripId(3)), &[0]);
    }
}
