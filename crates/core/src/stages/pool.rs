//! Incremental candidate-pool state with stable cluster keys.
//!
//! The batch pipeline's centroid-linkage clustering is order-*dependent*:
//! merging day-batches through the bi-weekly
//! [`IncrementalPoolBuilder`](crate::IncrementalPoolBuilder) path drifts
//! from the one-shot pool (measurably: different cluster counts, centroids
//! tens of meters apart). The engine instead makes the pool a deterministic
//! function of the *accumulated stay-point set*:
//!
//! 1. stays are partitioned into radius-`D` connected components (an
//!    order-independent graph property, maintained by [`StayPointSet`]);
//! 2. each component is clustered independently with the same
//!    centroid-linkage `merge_weighted` over its member stays *in global
//!    stay-index order* — same members, same order, bitwise-same clusters
//!    whether the stays arrived in one batch or over many days;
//! 3. every cluster gets a *stable key*: the minimum member stay index.
//!    Keys survive ingests while a cluster's member set is unchanged, and
//!    dense [`CandidateId`](crate::CandidateId)s are materialized per
//!    ingest by sorting keys ascending.
//!
//! Only components containing new stays are re-clustered; clean components
//! keep their records verbatim. The keys whose member sets changed are the
//! [`PoolDelta`] downstream stages use to invalidate addresses.
//!
//! [`StayPointSet`]: super::StayPointSet

use super::staypoint_set::StayPointSet;
use crate::candidates::{Agg, LocationProfile};
use crate::pipeline::PoolMethod;
use dlinfma_cluster::{merge_weighted_pooled_stats, MergeStats, WeightedPoint};
use dlinfma_detcol::{OrdMap, OrdSet};
use dlinfma_geo::Point;
use dlinfma_pool::Pool;
use dlinfma_snap::{Dec, Enc, SnapError};

/// What one pool update changed: the raw material for dirty-address
/// tracking and the ingest report's pool delta.
#[derive(Debug, Clone, Default)]
pub struct PoolDelta {
    /// Keys whose member set changed: removed keys, added keys, and keys
    /// that survived with a different member set.
    pub changed_keys: Vec<usize>,
    /// Clusters created by the update.
    pub added: u64,
    /// Clusters removed (absorbed or re-cut) by the update.
    pub removed: u64,
    /// Summed merge instrumentation across the re-clustered components
    /// (zero for grid mode, which has no merge phase). Feeds the
    /// clustering stage's CPU attribution in the pipeline report.
    pub cluster_stats: MergeStats,
}

/// One cluster record: stable key, centroid, members, profile aggregate.
#[derive(Debug, Clone)]
struct ClusterRec {
    key: usize,
    centroid: Point,
    /// Member stay indices, sorted ascending (for change detection).
    members: Vec<usize>,
    agg: Agg,
}

/// Incremental pool state for both clustering back-ends.
#[derive(Debug)]
pub struct PoolState {
    method: PoolMethod,
    /// Clustering distance `D`; doubles as the grid cell size.
    distance: f64,
    /// Hierarchical mode: cluster records per component, keyed by the
    /// component key (minimum stay index in the component).
    components: OrdMap<usize, Vec<ClusterRec>>,
    /// Grid mode: one record per occupied `(station, cell)` — cells are
    /// station-scoped so grid pools shard exactly like hierarchical ones.
    cells: OrdMap<(u32, i64, i64), ClusterRec>,
    /// Current cluster key of every stay, parallel to the stay set.
    assign: Vec<usize>,
}

impl PoolState {
    /// An empty pool for the given method and clustering distance.
    pub fn new(method: PoolMethod, distance: f64) -> Self {
        Self {
            method,
            distance,
            components: OrdMap::new(),
            cells: OrdMap::new(),
            assign: Vec::new(),
        }
    }

    /// Number of clusters currently in the pool.
    pub fn len(&self) -> usize {
        match self.method {
            PoolMethod::Hierarchical => self.components.values().map(Vec::len).sum(),
            PoolMethod::Grid => self.cells.len(),
        }
    }

    /// True when the pool has no clusters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current cluster key of stay `i`.
    pub fn key_of(&self, i: usize) -> usize {
        self.assign[i]
    }

    /// Incorporates the stays appended since the last update (global
    /// indices `new_start..`), re-clustering only the touched components on
    /// the shared pool.
    pub fn update(&mut self, stays: &mut StayPointSet, new_start: usize, pool: &Pool) -> PoolDelta {
        if stays.len() <= new_start {
            return PoolDelta::default();
        }
        match self.method {
            PoolMethod::Hierarchical => self.update_hierarchical(stays, new_start, pool),
            PoolMethod::Grid => self.update_grid(stays, new_start),
        }
    }

    fn update_hierarchical(
        &mut self,
        stays: &mut StayPointSet,
        new_start: usize,
        pool: &Pool,
    ) -> PoolDelta {
        let roots = stays.roots();
        let dirty_roots: OrdSet<usize> = roots[new_start..].iter().copied().collect();

        // Gather the members of every dirty component, ascending by
        // construction of the scan.
        let mut members_by_root: OrdMap<usize, Vec<usize>> = OrdMap::new();
        for (i, &r) in roots.iter().enumerate() {
            if dirty_roots.contains(&r) {
                members_by_root.entry(r).or_default().push(i);
            }
        }

        // Retire the records of dirty components: a component whose member
        // set changed contains at least one new stay, so its key (any of
        // its old members) resolves to a dirty root.
        let mut old: OrdMap<usize, Vec<usize>> = OrdMap::new();
        let dirty_comp_keys: Vec<usize> = self
            .components
            .keys()
            .copied()
            .filter(|&k| dirty_roots.contains(&roots[k]))
            .collect();
        for k in dirty_comp_keys {
            if let Some(recs) = self.components.remove(&k) {
                for rec in recs {
                    old.insert(rec.key, rec.members);
                }
            }
        }

        // Rebuild each dirty component from its raw member stays, in global
        // stay-index order — a pure function of the member set. Components
        // are independent, so the rebuilds fan out across the pool (and a
        // single huge component parallelizes its own nearest-pair scan via
        // the nested `merge_weighted_pooled` scope); the serial commit below
        // walks the results in component order, keeping the state identical
        // to a sequential rebuild.
        self.assign.resize(stays.len(), usize::MAX);
        let mut fresh: OrdMap<usize, Vec<usize>> = OrdMap::new();
        let mut comps: Vec<(usize, Vec<usize>)> = members_by_root
            .into_iter()
            .map(|(_, m)| (m[0], m))
            .collect();
        comps.sort_unstable_by_key(|(k, _)| *k);
        let distance = self.distance;
        let stays_ref: &StayPointSet = stays;
        let rebuilt: Vec<(usize, Vec<ClusterRec>, MergeStats)> =
            pool.par_map(&comps, |(comp_key, members)| {
                let items: Vec<WeightedPoint> = members
                    .iter()
                    .map(|&i| WeightedPoint::unit(stays_ref.rec(i).pos))
                    .collect();
                let (clusters, stats) = merge_weighted_pooled_stats(&items, distance, pool);
                let mut recs: Vec<ClusterRec> = Vec::with_capacity(clusters.len());
                for cluster in &clusters {
                    let mut agg: Option<Agg> = None;
                    for &m in &cluster.members {
                        let rec = stays_ref.rec(members[m]);
                        let part =
                            Agg::from_stay(rec.pos, rec.duration_s, rec.courier, rec.hour_bin);
                        match &mut agg {
                            Some(a) => a.merge_into(&part),
                            None => agg = Some(part),
                        }
                    }
                    let Some(mut agg) = agg else { continue };
                    agg.pos = cluster.centroid;
                    let mut global: Vec<usize> =
                        cluster.members.iter().map(|&m| members[m]).collect();
                    global.sort_unstable();
                    recs.push(ClusterRec {
                        key: global[0],
                        centroid: cluster.centroid,
                        members: global,
                        agg,
                    });
                }
                (*comp_key, recs, stats)
            });
        let mut cluster_stats = MergeStats::default();
        for (comp_key, recs, stats) in rebuilt {
            cluster_stats.accumulate(&stats);
            for rec in &recs {
                for &g in &rec.members {
                    self.assign[g] = rec.key;
                }
                fresh.insert(rec.key, rec.members.clone());
            }
            self.components.insert(comp_key, recs);
        }

        let mut delta = Self::delta_from(old, fresh);
        delta.cluster_stats = cluster_stats;
        delta
    }

    fn update_grid(&mut self, stays: &mut StayPointSet, new_start: usize) -> PoolDelta {
        self.assign.resize(stays.len(), usize::MAX);
        let mut changed: Vec<usize> = Vec::new();
        let mut added = 0u64;
        for i in new_start..stays.len() {
            let rec = stays.rec(i);
            let cell = (
                rec.station.0,
                (rec.pos.x / self.distance).floor() as i64,
                (rec.pos.y / self.distance).floor() as i64,
            );
            let part = Agg::from_stay(rec.pos, rec.duration_s, rec.courier, rec.hour_bin);
            let entry = self.cells.entry(cell).or_insert_with(|| {
                added += 1;
                ClusterRec {
                    key: i,
                    centroid: Point::ZERO,
                    members: Vec::new(),
                    agg: Agg {
                        pos: Point::ZERO,
                        weight: 0,
                        total_duration_s: 0.0,
                        couriers: OrdSet::new(),
                        hist: [0; crate::candidates::TIME_BINS],
                    },
                }
            });
            if entry.agg.weight == 0 {
                entry.agg = part;
            } else {
                entry.agg.merge_into(&part);
            }
            // Running centroid sums accumulate in global stay order, so the
            // streamed sums replay the exact additions of a one-shot build.
            entry.centroid = Point::new(entry.centroid.x + rec.pos.x, entry.centroid.y + rec.pos.y);
            entry.members.push(i);
            self.assign[i] = entry.key;
            if changed.last() != Some(&entry.key) {
                changed.push(entry.key);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        PoolDelta {
            changed_keys: changed,
            added,
            removed: 0,
            cluster_stats: MergeStats::default(),
        }
    }

    fn delta_from(old: OrdMap<usize, Vec<usize>>, fresh: OrdMap<usize, Vec<usize>>) -> PoolDelta {
        let mut changed: Vec<usize> = Vec::new();
        let mut added = 0u64;
        let mut removed = 0u64;
        for (k, members) in &fresh {
            match old.get(k) {
                None => {
                    added += 1;
                    changed.push(*k);
                }
                Some(prev) if prev != members => changed.push(*k),
                Some(_) => {}
            }
        }
        for k in old.keys() {
            if !fresh.contains_key(k) {
                removed += 1;
                changed.push(*k);
            }
        }
        changed.sort_unstable();
        PoolDelta {
            changed_keys: changed,
            added,
            removed,
            cluster_stats: MergeStats::default(),
        }
    }

    /// Encodes the pool state for a snapshot. Components, cells and assign
    /// entries are written in their deterministic (`OrdMap` / index) order,
    /// so the bytes are a pure function of the staged state.
    pub(crate) fn snap_encode(&self, e: &mut Enc) {
        e.u8(match self.method {
            PoolMethod::Hierarchical => 0,
            PoolMethod::Grid => 1,
        });
        e.f64(self.distance);
        e.usize(self.components.len());
        for (k, recs) in &self.components {
            e.usize(*k);
            e.usize(recs.len());
            for rec in recs {
                Self::encode_rec(e, rec);
            }
        }
        e.usize(self.cells.len());
        for (&(station, cx, cy), rec) in &self.cells {
            e.u32(station);
            e.i64(cx);
            e.i64(cy);
            Self::encode_rec(e, rec);
        }
        e.usize(self.assign.len());
        for &a in &self.assign {
            e.usize(a);
        }
    }

    fn encode_rec(e: &mut Enc, rec: &ClusterRec) {
        e.usize(rec.key);
        e.f64(rec.centroid.x);
        e.f64(rec.centroid.y);
        e.usize(rec.members.len());
        for &m in &rec.members {
            e.usize(m);
        }
        e.f64(rec.agg.pos.x);
        e.f64(rec.agg.pos.y);
        e.usize(rec.agg.weight);
        e.f64(rec.agg.total_duration_s);
        e.usize(rec.agg.couriers.len());
        for &c in &rec.agg.couriers {
            e.u32(c);
        }
        for &h in &rec.agg.hist {
            e.u32(h);
        }
    }

    fn decode_rec(d: &mut Dec, n_stays: usize) -> Result<ClusterRec, SnapError> {
        let key = d.usize()?;
        if key >= n_stays {
            return Err(SnapError::Malformed {
                what: "cluster key out of range",
            });
        }
        let centroid = Point::new(d.f64()?, d.f64()?);
        let n_members = d.seq_len(8)?;
        let mut members: Vec<usize> = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            let m = d.usize()?;
            if m >= n_stays {
                return Err(SnapError::Malformed {
                    what: "cluster member out of range",
                });
            }
            members.push(m);
        }
        let pos = Point::new(d.f64()?, d.f64()?);
        let weight = d.usize()?;
        let total_duration_s = d.f64()?;
        let n_couriers = d.seq_len(4)?;
        let mut couriers = OrdSet::new();
        for _ in 0..n_couriers {
            couriers.insert(d.u32()?);
        }
        let mut hist = [0u32; crate::candidates::TIME_BINS];
        for h in &mut hist {
            *h = d.u32()?;
        }
        Ok(ClusterRec {
            key,
            centroid,
            members,
            agg: Agg {
                pos,
                weight,
                total_duration_s,
                couriers,
                hist,
            },
        })
    }

    /// Decodes a snapshot produced by [`PoolState::snap_encode`]. `n_stays`
    /// bounds every stay index in the state (cluster keys are indexed into
    /// the stay set's root array on the next ingest, so out-of-range keys
    /// must be rejected here). Never panics on hostile bytes.
    pub(crate) fn snap_decode(d: &mut Dec, n_stays: usize) -> Result<Self, SnapError> {
        let method = match d.u8()? {
            0 => PoolMethod::Hierarchical,
            1 => PoolMethod::Grid,
            _ => {
                return Err(SnapError::Malformed {
                    what: "unknown pool method byte",
                })
            }
        };
        let distance = d.f64()?;
        if !(distance.is_finite() && distance > 0.0) {
            return Err(SnapError::Malformed {
                what: "pool distance must be positive and finite",
            });
        }
        let n_components = d.seq_len(16)?;
        let mut components: OrdMap<usize, Vec<ClusterRec>> = OrdMap::new();
        for _ in 0..n_components {
            let comp_key = d.usize()?;
            if comp_key >= n_stays {
                return Err(SnapError::Malformed {
                    what: "component key out of range",
                });
            }
            let n_recs = d.seq_len(8)?;
            let mut recs: Vec<ClusterRec> = Vec::with_capacity(n_recs);
            for _ in 0..n_recs {
                recs.push(Self::decode_rec(d, n_stays)?);
            }
            components.insert(comp_key, recs);
        }
        let n_cells = d.seq_len(20)?;
        let mut cells: OrdMap<(u32, i64, i64), ClusterRec> = OrdMap::new();
        for _ in 0..n_cells {
            let station = d.u32()?;
            let cx = d.i64()?;
            let cy = d.i64()?;
            cells.insert((station, cx, cy), Self::decode_rec(d, n_stays)?);
        }
        let n_assign = d.seq_len(8)?;
        if n_assign != n_stays {
            return Err(SnapError::Malformed {
                what: "assignment table length does not match the stay set",
            });
        }
        let mut assign: Vec<usize> = Vec::with_capacity(n_assign);
        for _ in 0..n_assign {
            assign.push(d.usize()?);
        }
        Ok(Self {
            method,
            distance,
            components,
            cells,
            assign,
        })
    }

    /// All clusters as `(key, centroid, profile)`, unordered. Grid-mode
    /// centroids are finalized from the running sums here.
    pub fn snapshot(&self) -> Vec<(usize, Point, LocationProfile)> {
        match self.method {
            PoolMethod::Hierarchical => self
                .components
                .values()
                .flatten()
                .map(|r| (r.key, r.centroid, r.agg.profile()))
                .collect(),
            PoolMethod::Grid => self
                .cells
                .values()
                .map(|r| {
                    let n = r.members.len().max(1) as f64;
                    (
                        r.key,
                        Point::new(r.centroid.x / n, r.centroid.y / n),
                        r.agg.profile(),
                    )
                })
                .collect(),
        }
    }
}
