//! Typed per-stage artifacts of the incremental engine.
//!
//! [`Engine`](crate::Engine) decomposes the monolithic batch pipeline into
//! four artifacts, each owning one stage's accumulated state and knowing how
//! to update itself from a streamed batch:
//!
//! * [`StayPointSet`] — every stay point ever ingested, plus the
//!   union-find over radius-`D` connectivity that partitions stays into
//!   order-independent clustering components;
//! * [`PoolState`] — the incremental candidate pool: per-component cluster
//!   records keyed by *stable keys* (minimum member stay index), rebuilt
//!   only for components touched by new stays and materialized into the
//!   classic [`CandidatePool`](crate::CandidatePool) on demand;
//! * [`RetrievalIndex`] — per-address delivery evidence (temporal upper
//!   bounds per trip) and the building/address trip indexes feature
//!   normalization needs;
//! * [`SampleTable`] — per-address *raw* feature counts (integers that stay
//!   valid while an address is clean) plus the inverse key → addresses
//!   index used to propagate candidate changes to dirty addresses.
//!
//! The stable-key discipline plus raw-count storage is what makes the
//! engine's streaming path bit-for-bit equal to one big batch ingest; the
//! invalidation rules are spelled out in `DESIGN.md`.

pub mod pool;
pub mod retrieval_index;
pub mod sample_table;
pub mod staypoint_set;

pub use pool::{PoolDelta, PoolState};
pub use retrieval_index::RetrievalIndex;
pub use sample_table::{RawSample, SampleTable};
pub use staypoint_set::{StayPointSet, StayRec};
