//! Incremental per-address delivery evidence.
//!
//! The batch pipeline derives retrieval evidence and the feature
//! normalization indexes from the frozen dataset
//! ([`collect_evidence`](crate::collect_evidence) and
//! [`FeatureExtractor`](crate::FeatureExtractor)'s inverted indexes). The
//! engine maintains the same state incrementally from streamed waybills:
//! per-address temporal upper bounds (the latest recorded delivery time per
//! trip, folded exactly as the batch path folds them) plus the
//! building-level and address-level trip sets Equation 2's normalization
//! needs.
//!
//! Trip counts and building trip sets are *station-scoped*: the paper
//! deploys DLInfMA per delivery station, so normalizers count only the
//! trips of an address's own station. That makes every derived quantity a
//! function of one station's data alone — the property that lets
//! [`ShardedEngine`](crate::ShardedEngine) split the fleet by station
//! without changing a single feature value.

use crate::retrieval::AddressEvidence;
use dlinfma_detcol::OrdMap;
use dlinfma_synth::{AddressId, BuildingId, StationId, TripId};
use std::collections::{HashMap, HashSet};

/// Accumulated evidence across every ingested waybill.
#[derive(Debug, Default)]
pub struct RetrievalIndex {
    /// Per address: per trip, the latest recorded delivery time (the
    /// retrieval bound).
    bounds: HashMap<AddressId, HashMap<TripId, f64>>,
    /// Trips that delivered to each building, per departing station.
    building_trips: HashMap<(BuildingId, StationId), HashSet<TripId>>,
    /// Trips that delivered to each address.
    address_trips: HashMap<AddressId, HashSet<TripId>>,
    /// Accepted trips per station (the live `n_trips` of Equation 2,
    /// station-scoped).
    trips_per_station: OrdMap<StationId, usize>,
    /// Accepted trips so far, all stations.
    n_trips: usize,
}

impl RetrievalIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one accepted trip departing from `station`.
    pub fn note_trip(&mut self, station: StationId) {
        self.n_trips += 1;
        *self.trips_per_station.entry(station).or_insert(0) += 1;
    }

    /// Total accepted trips, all stations.
    pub fn n_trips(&self) -> usize {
        self.n_trips
    }

    /// Accepted trips departing from `station`.
    pub fn n_trips_in(&self, station: StationId) -> usize {
        self.trips_per_station.get(&station).copied().unwrap_or(0)
    }

    /// Folds one waybill into the evidence, exactly like the batch path:
    /// the bound starts at `-inf` and takes the maximum recorded time.
    /// `station` is the delivering trip's departure station.
    pub fn add_waybill(
        &mut self,
        address: AddressId,
        building: BuildingId,
        trip: TripId,
        t_recorded: f64,
        station: StationId,
    ) {
        let bound = self
            .bounds
            .entry(address)
            .or_default()
            .entry(trip)
            .or_insert(f64::NEG_INFINITY);
        *bound = bound.max(t_recorded);
        self.building_trips
            .entry((building, station))
            .or_default()
            .insert(trip);
        self.address_trips.entry(address).or_default().insert(trip);
    }

    /// The evidence of one address (trips sorted by id), or `None` when the
    /// address has no ingested waybills.
    pub fn evidence(&self, address: AddressId) -> Option<AddressEvidence> {
        let per_trip = self.bounds.get(&address)?;
        let mut trips: Vec<(TripId, f64)> = per_trip.iter().map(|(&t, &b)| (t, b)).collect();
        trips.sort_by_key(|(t, _)| *t);
        Some(AddressEvidence { address, trips })
    }

    /// Addresses with at least one waybill, sorted.
    pub fn addresses(&self) -> Vec<AddressId> {
        let mut out: Vec<AddressId> = self.bounds.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Number of addresses with evidence.
    pub fn n_addresses(&self) -> usize {
        self.bounds.len()
    }

    /// Trips departing `station` that delivered to `building`.
    pub fn building_station_trips(
        &self,
        building: BuildingId,
        station: StationId,
    ) -> Option<&HashSet<TripId>> {
        self.building_trips.get(&(building, station))
    }

    /// Trips that delivered to `address`.
    pub fn address_trips(&self, address: AddressId) -> Option<&HashSet<TripId>> {
        self.address_trips.get(&address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_take_the_latest_recorded_time() {
        let mut idx = RetrievalIndex::new();
        let (a, b, t, s) = (AddressId(1), BuildingId(0), TripId(2), StationId(0));
        idx.add_waybill(a, b, t, 50.0, s);
        idx.add_waybill(a, b, t, 20.0, s);
        idx.add_waybill(a, b, TripId(1), 99.0, s);
        let ev = idx.evidence(a).expect("evidence exists");
        assert_eq!(ev.trips, vec![(TripId(1), 99.0), (TripId(2), 50.0)]);
        assert!(idx.evidence(AddressId(9)).is_none());
        assert_eq!(idx.address_trips(a).map(HashSet::len), Some(2));
        assert_eq!(idx.building_station_trips(b, s).map(HashSet::len), Some(2));
    }

    #[test]
    fn non_finite_recorded_times_keep_the_finite_maximum() {
        let mut idx = RetrievalIndex::new();
        let (a, b, t, s) = (AddressId(0), BuildingId(0), TripId(0), StationId(0));
        idx.add_waybill(a, b, t, f64::NAN, s);
        idx.add_waybill(a, b, t, 10.0, s);
        idx.add_waybill(a, b, t, f64::NAN, s);
        let ev = idx.evidence(a).expect("evidence exists");
        assert_eq!(ev.trips, vec![(t, 10.0)]);
    }

    #[test]
    fn trip_counts_and_building_trips_are_station_scoped() {
        let mut idx = RetrievalIndex::new();
        idx.note_trip(StationId(0));
        idx.note_trip(StationId(0));
        idx.note_trip(StationId(1));
        assert_eq!(idx.n_trips(), 3);
        assert_eq!(idx.n_trips_in(StationId(0)), 2);
        assert_eq!(idx.n_trips_in(StationId(1)), 1);
        assert_eq!(idx.n_trips_in(StationId(7)), 0);

        let b = BuildingId(4);
        idx.add_waybill(AddressId(0), b, TripId(0), 1.0, StationId(0));
        idx.add_waybill(AddressId(1), b, TripId(2), 2.0, StationId(1));
        assert_eq!(
            idx.building_station_trips(b, StationId(0))
                .map(HashSet::len),
            Some(1)
        );
        assert_eq!(
            idx.building_station_trips(b, StationId(1))
                .map(HashSet::len),
            Some(1)
        );
        assert!(idx.building_station_trips(b, StationId(2)).is_none());
    }
}
