//! Incremental per-address delivery evidence.
//!
//! The batch pipeline derives retrieval evidence and the feature
//! normalization indexes from the frozen dataset
//! ([`collect_evidence`](crate::collect_evidence) and
//! [`FeatureExtractor`](crate::FeatureExtractor)'s inverted indexes). The
//! engine maintains the same state incrementally from streamed waybills:
//! per-address temporal upper bounds (the latest recorded delivery time per
//! trip, folded exactly as the batch path folds them) plus the
//! building-level and address-level trip sets Equation 2's normalization
//! needs.
//!
//! Trip counts and building trip sets are *station-scoped*: the paper
//! deploys DLInfMA per delivery station, so normalizers count only the
//! trips of an address's own station. That makes every derived quantity a
//! function of one station's data alone — the property that lets
//! [`ShardedEngine`](crate::ShardedEngine) split the fleet by station
//! without changing a single feature value.

use crate::retrieval::AddressEvidence;
use dlinfma_detcol::OrdMap;
use dlinfma_snap::{Dec, Enc, SnapError};
use dlinfma_synth::{AddressId, BuildingId, StationId, TripId};
use std::collections::{HashMap, HashSet};

/// Accumulated evidence across every ingested waybill.
#[derive(Debug, Default)]
pub struct RetrievalIndex {
    /// Per address: per trip, the latest recorded delivery time (the
    /// retrieval bound).
    bounds: HashMap<AddressId, HashMap<TripId, f64>>,
    /// Trips that delivered to each building, per departing station.
    building_trips: HashMap<(BuildingId, StationId), HashSet<TripId>>,
    /// Trips that delivered to each address.
    address_trips: HashMap<AddressId, HashSet<TripId>>,
    /// Accepted trips per station (the live `n_trips` of Equation 2,
    /// station-scoped).
    trips_per_station: OrdMap<StationId, usize>,
    /// Accepted trips so far, all stations.
    n_trips: usize,
}

impl RetrievalIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one accepted trip departing from `station`.
    pub fn note_trip(&mut self, station: StationId) {
        self.n_trips += 1;
        *self.trips_per_station.entry(station).or_insert(0) += 1;
    }

    /// Total accepted trips, all stations.
    pub fn n_trips(&self) -> usize {
        self.n_trips
    }

    /// Accepted trips departing from `station`.
    pub fn n_trips_in(&self, station: StationId) -> usize {
        self.trips_per_station.get(&station).copied().unwrap_or(0)
    }

    /// Folds one waybill into the evidence, exactly like the batch path:
    /// the bound starts at `-inf` and takes the maximum recorded time.
    /// `station` is the delivering trip's departure station.
    pub fn add_waybill(
        &mut self,
        address: AddressId,
        building: BuildingId,
        trip: TripId,
        t_recorded: f64,
        station: StationId,
    ) {
        let bound = self
            .bounds
            .entry(address)
            .or_default()
            .entry(trip)
            .or_insert(f64::NEG_INFINITY);
        *bound = bound.max(t_recorded);
        self.building_trips
            .entry((building, station))
            .or_default()
            .insert(trip);
        self.address_trips.entry(address).or_default().insert(trip);
    }

    /// The evidence of one address (trips sorted by id), or `None` when the
    /// address has no ingested waybills.
    pub fn evidence(&self, address: AddressId) -> Option<AddressEvidence> {
        let per_trip = self.bounds.get(&address)?;
        let mut trips: Vec<(TripId, f64)> = per_trip.iter().map(|(&t, &b)| (t, b)).collect();
        trips.sort_by_key(|(t, _)| *t);
        Some(AddressEvidence { address, trips })
    }

    /// Addresses with at least one waybill, sorted.
    pub fn addresses(&self) -> Vec<AddressId> {
        let mut out: Vec<AddressId> = self.bounds.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Number of addresses with evidence.
    pub fn n_addresses(&self) -> usize {
        self.bounds.len()
    }

    /// Trips departing `station` that delivered to `building`.
    pub fn building_station_trips(
        &self,
        building: BuildingId,
        station: StationId,
    ) -> Option<&HashSet<TripId>> {
        self.building_trips.get(&(building, station))
    }

    /// Trips that delivered to `address`.
    pub fn address_trips(&self, address: AddressId) -> Option<&HashSet<TripId>> {
        self.address_trips.get(&address)
    }

    /// Encodes the evidence for a snapshot. Every hash container is
    /// flattened and sorted first, so the bytes are a pure function of the
    /// folded waybills — hash-iteration order never reaches the file.
    pub(crate) fn snap_encode(&self, e: &mut Enc) {
        let mut bound_rows: Vec<(u32, Vec<(u32, f64)>)> = self
            .bounds
            .iter()
            .map(|(a, per)| {
                let mut trips: Vec<(u32, f64)> = per.iter().map(|(t, &b)| (t.0, b)).collect();
                trips.sort_unstable_by_key(|&(t, _)| t);
                (a.0, trips)
            })
            .collect();
        bound_rows.sort_unstable_by_key(|&(a, _)| a);
        e.usize(bound_rows.len());
        for (a, trips) in &bound_rows {
            e.u32(*a);
            e.usize(trips.len());
            for &(t, b) in trips {
                e.u32(t);
                e.f64(b);
            }
        }

        let mut building_rows: Vec<((u32, u32), Vec<u32>)> = self
            .building_trips
            .iter()
            .map(|(&(b, s), trips)| {
                let mut ids: Vec<u32> = trips.iter().map(|t| t.0).collect();
                ids.sort_unstable();
                ((b.0, s.0), ids)
            })
            .collect();
        building_rows.sort_unstable_by_key(|&(k, _)| k);
        e.usize(building_rows.len());
        for ((b, s), trip_ids) in &building_rows {
            e.u32(*b);
            e.u32(*s);
            e.usize(trip_ids.len());
            for &t in trip_ids {
                e.u32(t);
            }
        }

        let mut address_rows: Vec<(u32, Vec<u32>)> = self
            .address_trips
            .iter()
            .map(|(a, trips)| {
                let mut ids: Vec<u32> = trips.iter().map(|t| t.0).collect();
                ids.sort_unstable();
                (a.0, ids)
            })
            .collect();
        address_rows.sort_unstable_by_key(|&(a, _)| a);
        e.usize(address_rows.len());
        for (a, trip_ids) in &address_rows {
            e.u32(*a);
            e.usize(trip_ids.len());
            for &t in trip_ids {
                e.u32(t);
            }
        }

        e.usize(self.trips_per_station.len());
        for (s, &n) in &self.trips_per_station {
            e.u32(s.0);
            e.usize(n);
        }
        e.usize(self.n_trips);
    }

    /// Decodes a snapshot produced by [`RetrievalIndex::snap_encode`].
    /// Never panics on hostile bytes.
    pub(crate) fn snap_decode(d: &mut Dec) -> Result<Self, SnapError> {
        let mut bounds: HashMap<AddressId, HashMap<TripId, f64>> = HashMap::new();
        let n_bounds = d.seq_len(12)?;
        for _ in 0..n_bounds {
            let a = AddressId(d.u32()?);
            let n_trips = d.seq_len(12)?;
            let mut per: HashMap<TripId, f64> = HashMap::with_capacity(n_trips);
            for _ in 0..n_trips {
                let t = TripId(d.u32()?);
                per.insert(t, d.f64()?);
            }
            if bounds.insert(a, per).is_some() {
                return Err(SnapError::Malformed {
                    what: "duplicate address in evidence bounds",
                });
            }
        }

        let mut building_trips: HashMap<(BuildingId, StationId), HashSet<TripId>> = HashMap::new();
        let n_buildings = d.seq_len(16)?;
        for _ in 0..n_buildings {
            let b = BuildingId(d.u32()?);
            let s = StationId(d.u32()?);
            let n_ids = d.seq_len(4)?;
            let mut trip_set: HashSet<TripId> = HashSet::with_capacity(n_ids);
            for _ in 0..n_ids {
                trip_set.insert(TripId(d.u32()?));
            }
            if building_trips.insert((b, s), trip_set).is_some() {
                return Err(SnapError::Malformed {
                    what: "duplicate building in trip index",
                });
            }
        }

        let mut address_trips: HashMap<AddressId, HashSet<TripId>> = HashMap::new();
        let n_addresses = d.seq_len(12)?;
        for _ in 0..n_addresses {
            let a = AddressId(d.u32()?);
            let n_ids = d.seq_len(4)?;
            let mut trip_set: HashSet<TripId> = HashSet::with_capacity(n_ids);
            for _ in 0..n_ids {
                trip_set.insert(TripId(d.u32()?));
            }
            if address_trips.insert(a, trip_set).is_some() {
                return Err(SnapError::Malformed {
                    what: "duplicate address in trip index",
                });
            }
        }

        let mut trips_per_station: OrdMap<StationId, usize> = OrdMap::new();
        let n_stations = d.seq_len(12)?;
        for _ in 0..n_stations {
            let s = StationId(d.u32()?);
            trips_per_station.insert(s, d.usize()?);
        }
        let n_trips = d.usize()?;
        Ok(Self {
            bounds,
            building_trips,
            address_trips,
            trips_per_station,
            n_trips,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_take_the_latest_recorded_time() {
        let mut idx = RetrievalIndex::new();
        let (a, b, t, s) = (AddressId(1), BuildingId(0), TripId(2), StationId(0));
        idx.add_waybill(a, b, t, 50.0, s);
        idx.add_waybill(a, b, t, 20.0, s);
        idx.add_waybill(a, b, TripId(1), 99.0, s);
        let ev = idx.evidence(a).expect("evidence exists");
        assert_eq!(ev.trips, vec![(TripId(1), 99.0), (TripId(2), 50.0)]);
        assert!(idx.evidence(AddressId(9)).is_none());
        assert_eq!(idx.address_trips(a).map(HashSet::len), Some(2));
        assert_eq!(idx.building_station_trips(b, s).map(HashSet::len), Some(2));
    }

    #[test]
    fn non_finite_recorded_times_keep_the_finite_maximum() {
        let mut idx = RetrievalIndex::new();
        let (a, b, t, s) = (AddressId(0), BuildingId(0), TripId(0), StationId(0));
        idx.add_waybill(a, b, t, f64::NAN, s);
        idx.add_waybill(a, b, t, 10.0, s);
        idx.add_waybill(a, b, t, f64::NAN, s);
        let ev = idx.evidence(a).expect("evidence exists");
        assert_eq!(ev.trips, vec![(t, 10.0)]);
    }

    #[test]
    fn trip_counts_and_building_trips_are_station_scoped() {
        let mut idx = RetrievalIndex::new();
        idx.note_trip(StationId(0));
        idx.note_trip(StationId(0));
        idx.note_trip(StationId(1));
        assert_eq!(idx.n_trips(), 3);
        assert_eq!(idx.n_trips_in(StationId(0)), 2);
        assert_eq!(idx.n_trips_in(StationId(1)), 1);
        assert_eq!(idx.n_trips_in(StationId(7)), 0);

        let b = BuildingId(4);
        idx.add_waybill(AddressId(0), b, TripId(0), 1.0, StationId(0));
        idx.add_waybill(AddressId(1), b, TripId(2), 2.0, StationId(1));
        assert_eq!(
            idx.building_station_trips(b, StationId(0))
                .map(HashSet::len),
            Some(1)
        );
        assert_eq!(
            idx.building_station_trips(b, StationId(1))
                .map(HashSet::len),
            Some(1)
        );
        assert!(idx.building_station_trips(b, StationId(2)).is_none());
    }
}
