//! Incremental per-address delivery evidence.
//!
//! The batch pipeline derives retrieval evidence and the feature
//! normalization indexes from the frozen dataset
//! ([`collect_evidence`](crate::collect_evidence) and
//! [`FeatureExtractor`](crate::FeatureExtractor)'s inverted indexes). The
//! engine maintains the same state incrementally from streamed waybills:
//! per-address temporal upper bounds (the latest recorded delivery time per
//! trip, folded exactly as the batch path folds them) plus the
//! building-level and address-level trip sets Equation 2's normalization
//! needs.

use crate::retrieval::AddressEvidence;
use dlinfma_synth::{AddressId, BuildingId, TripId};
use std::collections::{HashMap, HashSet};

/// Accumulated evidence across every ingested waybill.
#[derive(Debug, Default)]
pub struct RetrievalIndex {
    /// Per address: per trip, the latest recorded delivery time (the
    /// retrieval bound).
    bounds: HashMap<AddressId, HashMap<TripId, f64>>,
    /// Trips that delivered to each building.
    building_trips: HashMap<BuildingId, HashSet<TripId>>,
    /// Trips that delivered to each address.
    address_trips: HashMap<AddressId, HashSet<TripId>>,
    /// Accepted trips so far (the live `n_trips` of Equation 2).
    n_trips: usize,
}

impl RetrievalIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one accepted trip.
    pub fn note_trip(&mut self) {
        self.n_trips += 1;
    }

    /// Total accepted trips.
    pub fn n_trips(&self) -> usize {
        self.n_trips
    }

    /// Folds one waybill into the evidence, exactly like the batch path:
    /// the bound starts at `-inf` and takes the maximum recorded time.
    pub fn add_waybill(
        &mut self,
        address: AddressId,
        building: BuildingId,
        trip: TripId,
        t_recorded: f64,
    ) {
        let bound = self
            .bounds
            .entry(address)
            .or_default()
            .entry(trip)
            .or_insert(f64::NEG_INFINITY);
        *bound = bound.max(t_recorded);
        self.building_trips
            .entry(building)
            .or_default()
            .insert(trip);
        self.address_trips.entry(address).or_default().insert(trip);
    }

    /// The evidence of one address (trips sorted by id), or `None` when the
    /// address has no ingested waybills.
    pub fn evidence(&self, address: AddressId) -> Option<AddressEvidence> {
        let per_trip = self.bounds.get(&address)?;
        let mut trips: Vec<(TripId, f64)> = per_trip.iter().map(|(&t, &b)| (t, b)).collect();
        trips.sort_by_key(|(t, _)| *t);
        Some(AddressEvidence { address, trips })
    }

    /// Addresses with at least one waybill, sorted.
    pub fn addresses(&self) -> Vec<AddressId> {
        let mut out: Vec<AddressId> = self.bounds.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Number of addresses with evidence.
    pub fn n_addresses(&self) -> usize {
        self.bounds.len()
    }

    /// Trips that delivered to `building`.
    pub fn building_trips(&self, building: BuildingId) -> Option<&HashSet<TripId>> {
        self.building_trips.get(&building)
    }

    /// Trips that delivered to `address`.
    pub fn address_trips(&self, address: AddressId) -> Option<&HashSet<TripId>> {
        self.address_trips.get(&address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_take_the_latest_recorded_time() {
        let mut idx = RetrievalIndex::new();
        let (a, b, t) = (AddressId(1), BuildingId(0), TripId(2));
        idx.add_waybill(a, b, t, 50.0);
        idx.add_waybill(a, b, t, 20.0);
        idx.add_waybill(a, b, TripId(1), 99.0);
        let ev = idx.evidence(a).expect("evidence exists");
        assert_eq!(ev.trips, vec![(TripId(1), 99.0), (TripId(2), 50.0)]);
        assert!(idx.evidence(AddressId(9)).is_none());
        assert_eq!(idx.address_trips(a).map(HashSet::len), Some(2));
        assert_eq!(idx.building_trips(b).map(HashSet::len), Some(2));
    }

    #[test]
    fn non_finite_recorded_times_keep_the_finite_maximum() {
        let mut idx = RetrievalIndex::new();
        let (a, b, t) = (AddressId(0), BuildingId(0), TripId(0));
        idx.add_waybill(a, b, t, f64::NAN);
        idx.add_waybill(a, b, t, 10.0);
        idx.add_waybill(a, b, t, f64::NAN);
        let ev = idx.evidence(a).expect("evidence exists");
        assert_eq!(ev.trips, vec![(t, 10.0)]);
    }
}
