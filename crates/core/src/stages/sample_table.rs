//! Per-address raw feature counts and the key → addresses inverse index.
//!
//! Feature *values* cannot be cached across ingests: location commonality
//! (Equation 2) is normalized by the live global trip count, which moves
//! with every batch. What *can* be cached are the integer counts the
//! features are computed from — they only change when an address's
//! candidate set, trips, or a referenced candidate's trip set changes,
//! i.e. exactly when the address is dirty. The engine therefore stores per
//! `(address, candidate)` the raw intersection counts and finalizes the
//! floating-point features at materialization time from live state,
//! reproducing the batch extractor's arithmetic bit for bit.

use dlinfma_detcol::{OrdMap, OrdSet};
use dlinfma_snap::{Dec, Enc, SnapError};
use dlinfma_synth::{AddressId, StationId};

/// Raw (integer) feature state of one address, parallel vectors over its
/// retrieved candidates.
#[derive(Debug, Clone)]
pub struct RawSample {
    /// Retrieved candidate keys, sorted ascending.
    pub candidate_keys: Vec<usize>,
    /// `|trips(address) ∩ trips(candidate)|` per candidate — the trip
    /// coverage numerator.
    pub tc_hits: Vec<u32>,
    /// `|trips(candidate) ∩ exclude|` per candidate, where `exclude` is the
    /// building's (or, in the LC_addr ablation, the address's) trip set —
    /// the location-commonality overlap.
    pub overlap_excl: Vec<u32>,
    /// The address's primary station (most distinct evidence trips,
    /// tie-break smallest id) — the station whose normalizers finalize the
    /// floating-point features.
    pub station: StationId,
    /// Distinct primary-station evidence trips of the address — the trip
    /// coverage denominator.
    pub n_addr_trips: u32,
}

/// All addresses' raw samples plus the inverse candidate-key index.
#[derive(Debug, Default)]
pub struct SampleTable {
    rows: OrdMap<AddressId, RawSample>,
    /// Which addresses reference each candidate key.
    by_key: OrdMap<usize, OrdSet<AddressId>>,
}

impl SampleTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of addresses with a (possibly empty) raw sample.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no address has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw sample of one address.
    pub fn get(&self, address: AddressId) -> Option<&RawSample> {
        self.rows.get(&address)
    }

    /// Iterates over all `(address, raw sample)` rows, ascending by address.
    pub fn iter(&self) -> impl Iterator<Item = (&AddressId, &RawSample)> {
        self.rows.iter()
    }

    /// Replaces an address's raw sample, keeping the inverse index in sync.
    pub fn replace(&mut self, address: AddressId, raw: RawSample) {
        if let Some(prev) = self.rows.get(&address) {
            for k in &prev.candidate_keys {
                if let Some(set) = self.by_key.get_mut(k) {
                    set.remove(&address);
                    if set.is_empty() {
                        self.by_key.remove(k);
                    }
                }
            }
        }
        for k in &raw.candidate_keys {
            self.by_key.entry(*k).or_default().insert(address);
        }
        self.rows.insert(address, raw);
    }

    /// Encodes the table for a snapshot: rows only, ascending by address.
    /// The inverse key index is a pure function of the rows and is rebuilt
    /// on decode.
    pub(crate) fn snap_encode(&self, e: &mut Enc) {
        e.usize(self.rows.len());
        for (a, raw) in &self.rows {
            e.u32(a.0);
            e.u32(raw.station.0);
            e.u32(raw.n_addr_trips);
            e.usize(raw.candidate_keys.len());
            for &k in &raw.candidate_keys {
                e.usize(k);
            }
            for &h in &raw.tc_hits {
                e.u32(h);
            }
            for &o in &raw.overlap_excl {
                e.u32(o);
            }
        }
    }

    /// Decodes a snapshot produced by [`SampleTable::snap_encode`],
    /// rebuilding the inverse index through [`SampleTable::replace`]. The
    /// three per-candidate vectors share one declared length, so the
    /// parallel-vector invariant materialization indexes on holds by
    /// construction. Never panics on hostile bytes.
    pub(crate) fn snap_decode(d: &mut Dec) -> Result<Self, SnapError> {
        let mut table = Self::new();
        let n_rows = d.seq_len(20)?;
        for _ in 0..n_rows {
            let a = AddressId(d.u32()?);
            let station = StationId(d.u32()?);
            let n_addr_trips = d.u32()?;
            let n_keys = d.seq_len(8)?;
            let mut candidate_keys: Vec<usize> = Vec::with_capacity(n_keys);
            for _ in 0..n_keys {
                candidate_keys.push(d.usize()?);
            }
            let mut tc_hits: Vec<u32> = Vec::with_capacity(n_keys);
            for _ in 0..n_keys {
                tc_hits.push(d.u32()?);
            }
            let mut overlap_excl: Vec<u32> = Vec::with_capacity(n_keys);
            for _ in 0..n_keys {
                overlap_excl.push(d.u32()?);
            }
            if table.rows.contains_key(&a) {
                return Err(SnapError::Malformed {
                    what: "duplicate address in sample table",
                });
            }
            table.replace(
                a,
                RawSample {
                    candidate_keys,
                    tc_hits,
                    overlap_excl,
                    station,
                    n_addr_trips,
                },
            );
        }
        Ok(table)
    }

    /// Every address referencing any of `keys` — the candidate-side dirty
    /// set of an ingest.
    pub fn addresses_referencing(&self, keys: &[usize]) -> OrdSet<AddressId> {
        let mut out = OrdSet::new();
        for k in keys {
            if let Some(set) = self.by_key.get(k) {
                out.extend(set.iter().copied());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_keeps_the_inverse_index_in_sync() {
        let mut t = SampleTable::new();
        let a = AddressId(0);
        t.replace(
            a,
            RawSample {
                candidate_keys: vec![3, 7],
                tc_hits: vec![1, 2],
                overlap_excl: vec![0, 1],
                station: StationId(0),
                n_addr_trips: 2,
            },
        );
        assert_eq!(t.addresses_referencing(&[7]).len(), 1);
        // Re-sampling the address away from key 7 must drop the reference.
        t.replace(
            a,
            RawSample {
                candidate_keys: vec![3],
                tc_hits: vec![1],
                overlap_excl: vec![0],
                station: StationId(0),
                n_addr_trips: 2,
            },
        );
        assert!(t.addresses_referencing(&[7]).is_empty());
        assert_eq!(t.addresses_referencing(&[3, 7]).len(), 1);
        assert_eq!(t.len(), 1);
    }
}
