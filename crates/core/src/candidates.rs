//! Candidate pool construction (pipeline step III-B).
//!
//! All couriers' stay points are clustered with centroid-linkage
//! hierarchical clustering under a distance threshold `D` (paper default
//! 40 m); each cluster centroid becomes a *location candidate* carrying a
//! profile: average stay duration, number of distinct couriers, and a 24-bin
//! hour-of-day visit distribution.
//!
//! The pool also remembers, per trip, which candidates the trip visited and
//! when — the raw material for candidate retrieval and the TC/LC features.
//!
//! Construction can be *incremental*: the deployed system generates
//! candidates bi-weekly and merges new batches into the existing pool with
//! the same clustering process ([`IncrementalPoolBuilder`]).

use crate::staypoints::TripStays;
use dlinfma_cluster::{merge_weighted, WeightedPoint};
use dlinfma_detcol::OrdSet;
use dlinfma_geo::{KdTree, Point};
use dlinfma_pool::Pool;
use dlinfma_synth::{CourierId, Dataset, TripId};

/// Identifier of a location candidate within a [`CandidatePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CandidateId(pub u32);

/// Number of hour-of-day bins in the visit-time distribution.
pub const TIME_BINS: usize = 24;

/// Aggregated description of a location candidate (Section III-B profiles).
#[derive(Debug, Clone, PartialEq)]
pub struct LocationProfile {
    /// Mean dwell duration of the member stay points, seconds.
    pub avg_duration_s: f64,
    /// Number of distinct couriers who have stayed here.
    pub n_couriers: usize,
    /// Hour-of-day distribution of visits, normalized to sum 1.
    pub time_distribution: [f64; TIME_BINS],
    /// Number of member stay points.
    pub n_stays: usize,
}

/// A location candidate: a cluster centroid plus its profile.
#[derive(Debug, Clone)]
pub struct LocationCandidate {
    /// Identifier (dense index into the pool).
    pub id: CandidateId,
    /// Cluster centroid in the local metric frame.
    pub pos: Point,
    /// Aggregated profile.
    pub profile: LocationProfile,
}

/// The full candidate pool with per-trip visit records.
#[derive(Debug, Clone)]
pub struct CandidatePool {
    candidates: Vec<LocationCandidate>,
    /// Per trip (indexed by `TripId`), chronologically-sorted
    /// `(candidate, stay mid-time)` visits.
    trip_visits: Vec<Vec<(CandidateId, f64)>>,
    kdtree: KdTree<CandidateId>,
}

impl CandidatePool {
    /// All candidates, ordered by id.
    pub fn candidates(&self) -> &[LocationCandidate] {
        &self.candidates
    }

    /// Candidate lookup by id.
    pub fn candidate(&self, id: CandidateId) -> &LocationCandidate {
        &self.candidates[id.0 as usize]
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when the pool has no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Chronological `(candidate, time)` visits of a trip.
    pub fn visits(&self, trip: TripId) -> &[(CandidateId, f64)] {
        &self.trip_visits[trip.0 as usize]
    }

    /// Number of trips tracked.
    pub fn n_trips(&self) -> usize {
        self.trip_visits.len()
    }

    /// The candidate nearest to `pos` (used to label training data with the
    /// ground-truth delivery location), or `None` for an empty pool.
    pub fn nearest(&self, pos: &Point) -> Option<(CandidateId, f64)> {
        self.kdtree.nearest(pos).map(|(_, &id, d)| (id, d))
    }

    /// Assembles a pool from already-materialized parts (the staged engine's
    /// path); builds the spatial index over the given candidates.
    pub(crate) fn from_parts(
        candidates: Vec<LocationCandidate>,
        trip_visits: Vec<Vec<(CandidateId, f64)>>,
    ) -> Self {
        let kdtree = KdTree::build(candidates.iter().map(|c| (c.pos, c.id)).collect());
        Self {
            candidates,
            trip_visits,
            kdtree,
        }
    }
}

/// Internal aggregate of one growing candidate cluster.
#[derive(Debug, Clone)]
pub(crate) struct Agg {
    pub(crate) pos: Point,
    pub(crate) weight: usize,
    pub(crate) total_duration_s: f64,
    pub(crate) couriers: OrdSet<u32>,
    pub(crate) hist: [u32; TIME_BINS],
}

impl Agg {
    pub(crate) fn from_stay(
        pos: Point,
        duration: f64,
        courier: CourierId,
        hour_bin: usize,
    ) -> Self {
        let mut hist = [0u32; TIME_BINS];
        hist[hour_bin] += 1;
        let mut couriers = OrdSet::new();
        couriers.insert(courier.0);
        Self {
            pos,
            weight: 1,
            total_duration_s: duration,
            couriers,
            hist,
        }
    }

    pub(crate) fn merge_into(&mut self, other: &Agg) {
        // Position is recomputed by the clustering; only stats merge here.
        self.weight += other.weight;
        self.total_duration_s += other.total_duration_s;
        self.couriers.extend(other.couriers.iter().copied());
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
    }

    /// Finalizes the aggregate statistics into a candidate profile.
    pub(crate) fn profile(&self) -> LocationProfile {
        let total: u32 = self.hist.iter().sum();
        let mut dist = [0.0; TIME_BINS];
        if total > 0 {
            for (d, &h) in dist.iter_mut().zip(&self.hist) {
                *d = f64::from(h) / f64::from(total);
            }
        }
        LocationProfile {
            avg_duration_s: self.total_duration_s / self.weight.max(1) as f64,
            n_couriers: self.couriers.len(),
            time_distribution: dist,
            n_stays: self.weight,
        }
    }
}

pub(crate) fn hour_bin(t: f64) -> usize {
    let secs_of_day = t.rem_euclid(86_400.0);
    ((secs_of_day / 3_600.0) as usize).min(TIME_BINS - 1)
}

/// Builds candidate pools, either in one shot or batch by batch (the
/// deployed bi-weekly mode).
#[derive(Debug, Default)]
pub struct IncrementalPoolBuilder {
    aggs: Vec<Agg>,
    /// Per inserted stay point: current aggregate index.
    sp_assign: Vec<usize>,
    /// Per inserted stay point: originating trip and mid-time.
    sp_meta: Vec<(TripId, f64)>,
}

impl IncrementalPoolBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of candidates after the batches merged so far.
    pub fn n_candidates(&self) -> usize {
        self.aggs.len()
    }

    /// Merges a batch of per-trip stay points into the pool, clustering new
    /// stays together with the existing candidates under threshold
    /// `distance_threshold` (the paper's `D`).
    ///
    /// `courier_of` maps a trip to its courier (profiles count distinct
    /// couriers).
    pub fn add_batch(
        &mut self,
        batch: &[TripStays],
        courier_of: &dyn Fn(TripId) -> CourierId,
        distance_threshold: f64,
    ) {
        let n_old = self.aggs.len();
        // Items: existing aggregates first, then the new stay points.
        let mut items: Vec<WeightedPoint> = self
            .aggs
            .iter()
            .map(|a| WeightedPoint {
                pos: a.pos,
                weight: a.weight,
            })
            .collect();
        let mut new_aggs: Vec<Agg> = Vec::new();
        let mut new_meta: Vec<(TripId, f64)> = Vec::new();
        for ts in batch {
            let courier = courier_of(ts.trip);
            for sp in &ts.stays {
                items.push(WeightedPoint::unit(sp.pos));
                new_aggs.push(Agg::from_stay(
                    sp.pos,
                    sp.duration(),
                    courier,
                    hour_bin(sp.mid_time()),
                ));
                new_meta.push((ts.trip, sp.mid_time()));
            }
        }

        let clusters = merge_weighted(&items, distance_threshold);

        // Fold members into fresh aggregates and remap assignments.
        let mut next_aggs: Vec<Agg> = Vec::with_capacity(clusters.len());
        let mut old_remap = vec![usize::MAX; n_old];
        let mut new_remap = vec![usize::MAX; new_aggs.len()];
        for cluster in &clusters {
            let idx = next_aggs.len();
            let mut agg: Option<Agg> = None;
            for &m in &cluster.members {
                let part = if m < n_old {
                    old_remap[m] = idx;
                    &self.aggs[m]
                } else {
                    let j = m - n_old;
                    new_remap[j] = idx;
                    &new_aggs[j]
                };
                match &mut agg {
                    Some(a) => a.merge_into(part),
                    None => agg = Some(part.clone()),
                }
            }
            let Some(mut agg) = agg else { continue };
            agg.pos = cluster.centroid;
            next_aggs.push(agg);
        }

        for a in &mut self.sp_assign {
            *a = old_remap[*a];
        }
        self.sp_assign.extend(new_remap.iter().copied());
        self.sp_meta.extend(new_meta);
        self.aggs = next_aggs;
        debug_assert!(self.sp_assign.iter().all(|&a| a != usize::MAX));
    }

    /// Finalizes the pool. `n_trips` sizes the per-trip visit table (trips
    /// with no stay points get empty visit lists).
    pub fn finish(self, n_trips: usize) -> CandidatePool {
        let candidates: Vec<LocationCandidate> = self
            .aggs
            .iter()
            .enumerate()
            .map(|(i, a)| LocationCandidate {
                id: CandidateId(i as u32),
                pos: a.pos,
                profile: a.profile(),
            })
            .collect();

        let mut trip_visits: Vec<Vec<(CandidateId, f64)>> = vec![Vec::new(); n_trips];
        for (&(trip, t), &agg) in self.sp_meta.iter().zip(&self.sp_assign) {
            trip_visits[trip.0 as usize].push((CandidateId(agg as u32), t));
        }
        for visits in &mut trip_visits {
            visits.sort_by(|a, b| a.1.total_cmp(&b.1));
        }

        let kdtree = KdTree::build(candidates.iter().map(|c| (c.pos, c.id)).collect());
        CandidatePool {
            candidates,
            trip_visits,
            kdtree,
        }
    }
}

/// One-shot pool construction from all trips of a dataset.
pub fn build_pool(
    dataset: &Dataset,
    stays: &[TripStays],
    distance_threshold: f64,
) -> CandidatePool {
    let mut builder = IncrementalPoolBuilder::new();
    builder.add_batch(
        stays,
        &|trip| dataset.trip(trip).courier,
        distance_threshold,
    );
    builder.finish(dataset.trips.len())
}

/// Grid-merging pool construction (the DLInfMA-Grid ablation): stay points
/// are bucketed into `cell_size x cell_size` squares and each occupied cell
/// becomes a candidate. The paper shows this yields *more* candidates than
/// hierarchical clustering because stays of one physical location can
/// straddle a cell boundary.
pub fn build_pool_grid(dataset: &Dataset, stays: &[TripStays], cell_size: f64) -> CandidatePool {
    // Flatten stays with their metadata.
    let mut flat: Vec<(TripId, f64, f64, usize)> = Vec::new(); // trip, mid_time, duration, hour bin
    let mut positions: Vec<Point> = Vec::new();
    let mut couriers: Vec<CourierId> = Vec::new();
    for ts in stays {
        let courier = dataset.trip(ts.trip).courier;
        for sp in &ts.stays {
            flat.push((
                ts.trip,
                sp.mid_time(),
                sp.duration(),
                hour_bin(sp.mid_time()),
            ));
            positions.push(sp.pos);
            couriers.push(courier);
        }
    }
    let clusters = dlinfma_cluster::grid_clusters(&positions, cell_size);

    let mut builder = IncrementalPoolBuilder::new();
    for cluster in &clusters {
        let mut agg: Option<Agg> = None;
        for &m in &cluster.members {
            let (_, _, duration, bin) = flat[m];
            let part = Agg::from_stay(positions[m], duration, couriers[m], bin);
            match &mut agg {
                Some(a) => a.merge_into(&part),
                None => agg = Some(part),
            }
        }
        let Some(mut agg) = agg else { continue };
        agg.pos = cluster.centroid;
        let idx = builder.aggs.len();
        builder.aggs.push(agg);
        for &m in &cluster.members {
            // sp_assign/sp_meta are appended per member in cluster order; the
            // final pool only needs the stay -> candidate mapping.
            builder.sp_assign.push(idx);
            builder.sp_meta.push((flat[m].0, flat[m].1));
        }
    }
    builder.finish(dataset.trips.len())
}

/// Station-parallel construction (Section V-F): each station's stay points
/// are clustered on its own worker, then the per-station pools are merged
/// with the same clustering process. Stations own disjoint regions, so the
/// cross-station merge mostly concatenates.
pub fn build_pool_station_parallel(
    dataset: &Dataset,
    stays: &[TripStays],
    distance_threshold: f64,
    pool: &Pool,
) -> CandidatePool {
    // Partition per-trip stays by station.
    let n_stations = dataset.stations.len().max(1);
    let mut per_station: Vec<Vec<TripStays>> = vec![Vec::new(); n_stations];
    for ts in stays {
        let s = (dataset.trip(ts.trip).station.0 as usize).min(n_stations - 1);
        per_station[s].push(ts.clone());
    }

    // Cluster each station independently on the shared pool; results come
    // back in station order, so the merge below is deterministic.
    let builders = pool.par_map(&per_station, |batch| {
        let mut b = IncrementalPoolBuilder::new();
        b.add_batch(
            batch,
            &|trip| dataset.trip(trip).courier,
            distance_threshold,
        );
        b
    });

    // Merge station pools: one more clustering pass over all aggregates.
    let mut merged = IncrementalPoolBuilder::new();
    for b in builders {
        let offset = merged.aggs.len();
        merged.aggs.extend(b.aggs);
        merged
            .sp_assign
            .extend(b.sp_assign.iter().map(|&a| a + offset));
        merged.sp_meta.extend(b.sp_meta);
    }
    // Re-cluster the concatenated aggregates under the same threshold so
    // border locations shared by two stations collapse.
    let items: Vec<WeightedPoint> = merged
        .aggs
        .iter()
        .map(|a| WeightedPoint {
            pos: a.pos,
            weight: a.weight,
        })
        .collect();
    let clusters = merge_weighted(&items, distance_threshold);
    let mut next_aggs: Vec<Agg> = Vec::with_capacity(clusters.len());
    let mut remap = vec![usize::MAX; merged.aggs.len()];
    for cluster in &clusters {
        let idx = next_aggs.len();
        let mut agg: Option<Agg> = None;
        for &m in &cluster.members {
            remap[m] = idx;
            match &mut agg {
                Some(a) => a.merge_into(&merged.aggs[m]),
                None => agg = Some(merged.aggs[m].clone()),
            }
        }
        let Some(mut agg) = agg else { continue };
        agg.pos = cluster.centroid;
        next_aggs.push(agg);
    }
    for a in &mut merged.sp_assign {
        *a = remap[*a];
    }
    merged.aggs = next_aggs;
    merged.finish(dataset.trips.len())
}

/// Bi-weekly incremental construction: trips are batched by `batch_len_s`
/// windows of their start time and merged window by window, mirroring the
/// deployment.
pub fn build_pool_incremental(
    dataset: &Dataset,
    stays: &[TripStays],
    distance_threshold: f64,
    batch_len_s: f64,
) -> CandidatePool {
    assert!(batch_len_s > 0.0, "batch length must be positive");
    let mut order: Vec<&TripStays> = stays.iter().collect();
    order.sort_by(|a, b| {
        dataset
            .trip(a.trip)
            .t_start
            .total_cmp(&dataset.trip(b.trip).t_start)
    });
    let mut builder = IncrementalPoolBuilder::new();
    let mut batch: Vec<TripStays> = Vec::new();
    let mut window_start: Option<f64> = None;
    for ts in order {
        let t = dataset.trip(ts.trip).t_start;
        let ws = *window_start.get_or_insert(t);
        if t - ws >= batch_len_s && !batch.is_empty() {
            builder.add_batch(
                &batch,
                &|trip| dataset.trip(trip).courier,
                distance_threshold,
            );
            batch.clear();
            window_start = Some(t);
        }
        batch.push(ts.clone());
    }
    if !batch.is_empty() {
        builder.add_batch(
            &batch,
            &|trip| dataset.trip(trip).courier,
            distance_threshold,
        );
    }
    builder.finish(dataset.trips.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staypoints::{extract_stay_points, ExtractionConfig};
    use dlinfma_synth::{generate, Preset, Scale};

    fn world() -> (dlinfma_synth::City, Dataset, Vec<TripStays>) {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 0);
        let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
        (city, ds, stays)
    }

    #[test]
    fn pool_has_candidates_with_valid_profiles() {
        let (_, ds, stays) = world();
        let pool = build_pool(&ds, &stays, 40.0);
        assert!(!pool.is_empty());
        for c in pool.candidates() {
            assert!(c.profile.avg_duration_s > 0.0);
            assert!(c.profile.n_couriers >= 1);
            assert!(c.profile.n_stays >= 1);
            let sum: f64 = c.profile.time_distribution.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "time distribution sums to {sum}");
        }
    }

    #[test]
    fn candidate_ids_are_dense_and_positions_separated() {
        let (_, ds, stays) = world();
        let d = 40.0;
        let pool = build_pool(&ds, &stays, d);
        for (i, c) in pool.candidates().iter().enumerate() {
            assert_eq!(c.id.0 as usize, i);
        }
        for i in 0..pool.len() {
            for j in (i + 1)..pool.len() {
                let dist = pool.candidates()[i].pos.distance(&pool.candidates()[j].pos);
                assert!(dist >= d - 1e-6, "candidates {i},{j} only {dist}m apart");
            }
        }
    }

    #[test]
    fn trip_visits_are_chronological_and_reference_valid_candidates() {
        let (_, ds, stays) = world();
        let pool = build_pool(&ds, &stays, 40.0);
        assert_eq!(pool.n_trips(), ds.trips.len());
        let mut total = 0;
        for t in &ds.trips {
            let visits = pool.visits(t.id);
            total += visits.len();
            for w in visits.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
            for &(c, _) in visits {
                assert!((c.0 as usize) < pool.len());
            }
        }
        let n_stays: usize = stays.iter().map(|s| s.stays.len()).sum();
        assert_eq!(total, n_stays, "every stay maps to exactly one visit");
    }

    #[test]
    fn deliveries_produce_candidates_near_true_locations() {
        let (city, ds, stays) = world();
        let pool = build_pool(&ds, &stays, 40.0);
        // Most delivered addresses should have a candidate within ~30 m of
        // their true delivery location.
        let delivered: std::collections::HashSet<u32> =
            ds.waybills.iter().map(|w| w.address.0).collect();
        let mut near = 0;
        for &aid in &delivered {
            let gt = city.addresses[aid as usize].true_delivery_location;
            if let Some((_, d)) = pool.nearest(&gt) {
                if d < 30.0 {
                    near += 1;
                }
            }
        }
        assert!(
            near * 10 >= delivered.len() * 8,
            "{near}/{} addresses have a nearby candidate",
            delivered.len()
        );
    }

    #[test]
    fn incremental_build_matches_one_shot_scale() {
        let (_, ds, stays) = world();
        let one_shot = build_pool(&ds, &stays, 40.0);
        let incremental = build_pool_incremental(&ds, &stays, 40.0, 2.0 * 86_400.0);
        // Incremental merging can differ slightly at cluster boundaries but
        // must be the same order of magnitude and preserve visit counts.
        let total_visits = |p: &CandidatePool| -> usize {
            (0..p.n_trips())
                .map(|i| p.visits(TripId(i as u32)).len())
                .sum()
        };
        assert_eq!(total_visits(&one_shot), total_visits(&incremental));
        let ratio = incremental.len() as f64 / one_shot.len() as f64;
        assert!(
            (0.7..1.5).contains(&ratio),
            "incremental {} vs one-shot {}",
            incremental.len(),
            one_shot.len()
        );
    }

    #[test]
    fn station_parallel_matches_one_shot_scale() {
        // A two-station world: per-station clustering plus the border merge
        // must preserve every visit and land near the one-shot pool size.
        let (_, ds) = generate(Preset::DowBJ, Scale::Small, 5);
        let stays = crate::staypoints::extract_stay_points(
            &ds,
            &crate::staypoints::ExtractionConfig::paper_defaults(),
        );
        assert!(ds.stations.len() >= 2, "need a multi-station world");
        let one_shot = build_pool(&ds, &stays, 40.0);
        let par = build_pool_station_parallel(&ds, &stays, 40.0, &Pool::new(4));
        let total_visits = |p: &CandidatePool| -> usize {
            (0..p.n_trips())
                .map(|i| p.visits(TripId(i as u32)).len())
                .sum()
        };
        assert_eq!(total_visits(&one_shot), total_visits(&par));
        let ratio = par.len() as f64 / one_shot.len() as f64;
        assert!(
            (0.8..1.3).contains(&ratio),
            "{} vs {}",
            par.len(),
            one_shot.len()
        );
        for c in par.candidates() {
            assert!(c.profile.n_stays >= 1);
        }
    }

    #[test]
    fn empty_dataset_pool() {
        let ds = Dataset {
            addresses: vec![],
            trips: vec![],
            waybills: vec![],
            stations: vec![],
        };
        let pool = build_pool(&ds, &[], 40.0);
        assert!(pool.is_empty());
        assert!(pool.nearest(&Point::ZERO).is_none());
    }
}
