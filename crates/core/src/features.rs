//! Feature extraction (pipeline step IV-A).
//!
//! Three feature families per the paper:
//!
//! * **Matching features** — trip coverage (Equation 1), building-level
//!   location commonality (Equation 2), and the distance to the geocoded
//!   waybill location;
//! * **Profile features** — average stay duration, number of couriers and
//!   the 24-bin visit-time distribution of the candidate;
//! * **Address features** — number of deliveries and the geocoder's POI
//!   category.
//!
//! [`FeatureConfig`] switches individual families off for the paper's
//! ablations (DLInfMA-nTC / -nD / -nP / -nLC) and swaps the building-level
//! LC for the address-level variant (DLInfMA-LC_addr).

use crate::candidates::{CandidateId, CandidatePool, TIME_BINS};
use crate::retrieval::{retrieve_candidates, AddressEvidence};
use dlinfma_detcol::{OrdMap, OrdSet};
use dlinfma_geo::Point;
use dlinfma_synth::{AddressId, BuildingId, Dataset, StationId, TripId};
use std::cmp::Reverse;
use std::collections::{HashMap, HashSet};

/// Which features to extract; all on by default.
#[derive(Debug, Clone, Copy)]
pub struct FeatureConfig {
    /// Include trip coverage (Equation 1).
    pub use_trip_coverage: bool,
    /// Include location commonality (Equation 2).
    pub use_location_commonality: bool,
    /// Include the distance to the geocoded location.
    pub use_distance: bool,
    /// Include the location profile (duration, couriers, time distribution).
    pub use_profile: bool,
    /// Compute LC against the *address* instead of its building
    /// (the DLInfMA-LC_addr ablation, shown inferior by the paper).
    pub lc_address_level: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self {
            use_trip_coverage: true,
            use_location_commonality: true,
            use_distance: true,
            use_profile: true,
            lc_address_level: false,
        }
    }
}

/// Features of one `(address, candidate)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateFeatures {
    /// Fraction of the address's trips passing through the candidate.
    pub trip_coverage: f64,
    /// Fraction of *other-building* trips passing through the candidate.
    pub location_commonality: f64,
    /// Distance from the candidate to the address's geocode, meters.
    pub distance_m: f64,
    /// Candidate profile: mean dwell seconds.
    pub avg_duration_s: f64,
    /// Candidate profile: distinct couriers.
    pub n_couriers: f64,
    /// Candidate profile: member stay points.
    pub n_stays: f64,
    /// Candidate profile: hour-of-day visit distribution.
    pub time_distribution: [f64; TIME_BINS],
}

impl CandidateFeatures {
    /// Dense feature vector for classical models, honouring `cfg`'s feature
    /// switches. Scalar features are squashed to comparable magnitudes.
    pub fn to_vec(&self, cfg: &FeatureConfig) -> Vec<f32> {
        let mut v = Vec::with_capacity(6 + TIME_BINS);
        if cfg.use_trip_coverage {
            v.push(self.trip_coverage as f32);
        }
        if cfg.use_location_commonality {
            v.push(self.location_commonality as f32);
        }
        if cfg.use_distance {
            // Log scale keeps resolution where it matters (0-50 m) while
            // bounding wrong-parse outliers (hundreds of meters).
            v.push((self.distance_m / 10.0).ln_1p() as f32);
        }
        if cfg.use_profile {
            v.push((self.avg_duration_s / 60.0).ln_1p() as f32);
            v.push((self.n_couriers).ln_1p() as f32);
            v.push((self.n_stays).ln_1p() as f32);
            v.extend(self.time_distribution.iter().map(|&x| x as f32));
        }
        v
    }

    /// Scalar features only (everything except the time distribution), for
    /// models that embed the time distribution separately (LocMatcher's
    /// dense `r`-unit branch).
    pub fn scalars(&self, cfg: &FeatureConfig) -> Vec<f32> {
        let mut v = Vec::with_capacity(6);
        if cfg.use_trip_coverage {
            v.push(self.trip_coverage as f32);
        }
        if cfg.use_location_commonality {
            v.push(self.location_commonality as f32);
        }
        if cfg.use_distance {
            v.push((self.distance_m / 10.0).ln_1p() as f32);
        }
        if cfg.use_profile {
            v.push((self.avg_duration_s / 60.0).ln_1p() as f32);
            v.push((self.n_couriers).ln_1p() as f32);
            v.push((self.n_stays).ln_1p() as f32);
        }
        v
    }

    /// Number of scalar features under `cfg`.
    pub fn scalars_len(cfg: &FeatureConfig) -> usize {
        let mut n = 0;
        if cfg.use_trip_coverage {
            n += 1;
        }
        if cfg.use_location_commonality {
            n += 1;
        }
        if cfg.use_distance {
            n += 1;
        }
        if cfg.use_profile {
            n += 3;
        }
        n
    }

    /// Length of [`CandidateFeatures::to_vec`] under `cfg`.
    pub fn vec_len(cfg: &FeatureConfig) -> usize {
        let mut n = 0;
        if cfg.use_trip_coverage {
            n += 1;
        }
        if cfg.use_location_commonality {
            n += 1;
        }
        if cfg.use_distance {
            n += 1;
        }
        if cfg.use_profile {
            n += 3 + TIME_BINS;
        }
        n
    }
}

/// One address with its retrieved candidates and all features — the unit of
/// training and inference for every model in this reproduction.
#[derive(Debug, Clone)]
pub struct AddressSample {
    /// The address.
    pub address: AddressId,
    /// Primary station of the address's evidence: the station delivering
    /// the most distinct trips (tie-break: smallest id). In fleet mode this
    /// is the shard that owns the sample.
    pub station: StationId,
    /// Retrieved candidate ids (sorted).
    pub candidates: Vec<CandidateId>,
    /// Per-candidate features, parallel to `candidates`.
    pub features: Vec<CandidateFeatures>,
    /// Number of deliveries (trips) involving the address.
    pub n_deliveries: usize,
    /// POI category from the geocoder.
    pub poi_category: u8,
    /// Geocoded location of the address.
    pub geocode: Point,
    /// Index (into `candidates`) of the candidate nearest the ground-truth
    /// delivery location; `None` until labelled by evaluation code.
    pub label: Option<usize>,
    /// Distance (m) from each candidate to the ground-truth delivery
    /// location, parallel to `candidates`; set together with `label` and
    /// consumed by spatially-soft training targets.
    pub truth_distances: Option<Vec<f64>>,
}

/// Precomputed inverted indexes shared by all feature computations.
pub struct FeatureExtractor<'a> {
    dataset: &'a Dataset,
    pool: &'a CandidatePool,
    cfg: FeatureConfig,
    /// Trips passing through each candidate (unfiltered `L_tr` membership).
    cand_trips: Vec<HashSet<TripId>>,
    /// Trips involving each building.
    building_trips: HashMap<BuildingId, HashSet<TripId>>,
    /// Trips involving each address.
    address_trips: HashMap<AddressId, HashSet<TripId>>,
    n_trips: usize,
}

impl<'a> FeatureExtractor<'a> {
    /// Builds the inverted indexes.
    pub fn new(dataset: &'a Dataset, pool: &'a CandidatePool, cfg: FeatureConfig) -> Self {
        let mut cand_trips: Vec<HashSet<TripId>> = vec![HashSet::new(); pool.len()];
        for trip in &dataset.trips {
            for &(c, _) in pool.visits(trip.id) {
                cand_trips[c.0 as usize].insert(trip.id);
            }
        }
        let mut building_trips: HashMap<BuildingId, HashSet<TripId>> = HashMap::new();
        let mut address_trips: HashMap<AddressId, HashSet<TripId>> = HashMap::new();
        for w in &dataset.waybills {
            let building = dataset.address(w.address).building;
            building_trips.entry(building).or_default().insert(w.trip);
            address_trips.entry(w.address).or_default().insert(w.trip);
        }
        Self {
            dataset,
            pool,
            cfg,
            cand_trips,
            building_trips,
            address_trips,
            n_trips: dataset.trips.len(),
        }
    }

    /// The feature configuration in effect.
    pub fn config(&self) -> &FeatureConfig {
        &self.cfg
    }

    /// Trip coverage of candidate `cand` for the trips in `addr_trips`
    /// (Equation 1).
    fn trip_coverage(&self, cand: CandidateId, addr_trips: &OrdSet<TripId>) -> f64 {
        if addr_trips.is_empty() {
            return 0.0;
        }
        let hits = addr_trips
            .iter()
            .filter(|t| self.cand_trips[cand.0 as usize].contains(t))
            .count();
        hits as f64 / addr_trips.len() as f64
    }

    /// Location commonality of `cand` for an address (Equation 2): the
    /// fraction of trips *not* involving the address's building (or, in the
    /// ablation, the address itself) that pass through the candidate.
    fn location_commonality(&self, cand: CandidateId, address: AddressId) -> f64 {
        let exclude: &HashSet<TripId> = if self.cfg.lc_address_level {
            self.address_trips.get(&address).unwrap_or(&EMPTY_TRIPS)
        } else {
            let building = self.dataset.address(address).building;
            self.building_trips.get(&building).unwrap_or(&EMPTY_TRIPS)
        };
        let denom = self.n_trips - exclude.len();
        if denom == 0 {
            return 0.0;
        }
        let cand_set = &self.cand_trips[cand.0 as usize];
        let num = cand_set.len() - cand_set.iter().filter(|t| exclude.contains(t)).count();
        num as f64 / denom as f64
    }

    /// Full features for one `(address, candidate)` pair given the address's
    /// trip set.
    fn candidate_features(
        &self,
        address: AddressId,
        cand: CandidateId,
        addr_trips: &OrdSet<TripId>,
    ) -> CandidateFeatures {
        let c = self.pool.candidate(cand);
        let geocode = self.dataset.address(address).geocode;
        CandidateFeatures {
            trip_coverage: if self.cfg.use_trip_coverage {
                self.trip_coverage(cand, addr_trips)
            } else {
                0.0
            },
            location_commonality: if self.cfg.use_location_commonality {
                self.location_commonality(cand, address)
            } else {
                0.0
            },
            distance_m: if self.cfg.use_distance {
                c.pos.distance(&geocode)
            } else {
                0.0
            },
            avg_duration_s: c.profile.avg_duration_s,
            n_couriers: c.profile.n_couriers as f64,
            n_stays: c.profile.n_stays as f64,
            time_distribution: c.profile.time_distribution,
        }
    }

    /// Builds the full [`AddressSample`] for one address (unlabelled).
    pub fn sample(&self, evidence: &AddressEvidence) -> AddressSample {
        self.sample_with_candidates(evidence, retrieve_candidates(self.pool, evidence))
    }

    /// [`FeatureExtractor::sample`] with an already-retrieved candidate set,
    /// so callers can time (and count) retrieval separately from feature
    /// computation.
    pub fn sample_with_candidates(
        &self,
        evidence: &AddressEvidence,
        candidates: Vec<CandidateId>,
    ) -> AddressSample {
        let addr_trips: OrdSet<TripId> = evidence.trips.iter().map(|&(t, _)| t).collect();
        // Primary station of the evidence: most distinct trips, tie-break
        // smallest id — the same rule the engine's retrieval stage applies.
        let mut per_station: OrdMap<StationId, u32> = OrdMap::new();
        for &t in &addr_trips {
            *per_station.entry(self.dataset.trip(t).station).or_insert(0) += 1;
        }
        let station = per_station
            .iter()
            .max_by_key(|&(&s, &c)| (c, Reverse(s)))
            .map_or(StationId(0), |(&s, _)| s);
        let features = candidates
            .iter()
            .map(|&c| self.candidate_features(evidence.address, c, &addr_trips))
            .collect();
        let a = self.dataset.address(evidence.address);
        AddressSample {
            address: evidence.address,
            station,
            candidates,
            features,
            n_deliveries: evidence.trips.len(),
            poi_category: a.poi_category,
            geocode: a.geocode,
            label: None,
            truth_distances: None,
        }
    }
}

static EMPTY_TRIPS: std::sync::LazyLock<HashSet<TripId>> = std::sync::LazyLock::new(HashSet::new);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::build_pool;
    use crate::retrieval::collect_evidence;
    use crate::staypoints::{extract_stay_points, ExtractionConfig};
    use dlinfma_synth::{generate, Preset, Scale};

    fn world() -> (
        dlinfma_synth::City,
        Dataset,
        CandidatePool,
        Vec<AddressEvidence>,
    ) {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 0);
        let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
        let pool = build_pool(&ds, &stays, 40.0);
        let ev = collect_evidence(&ds);
        (city, ds, pool, ev)
    }

    #[test]
    fn features_are_bounded_and_finite() {
        let (_, ds, pool, ev) = world();
        let fx = FeatureExtractor::new(&ds, &pool, FeatureConfig::default());
        for e in &ev {
            let s = fx.sample(e);
            assert_eq!(s.candidates.len(), s.features.len());
            for f in &s.features {
                assert!(
                    (0.0..=1.0).contains(&f.trip_coverage),
                    "TC {}",
                    f.trip_coverage
                );
                assert!(
                    (0.0..=1.0).contains(&f.location_commonality),
                    "LC {}",
                    f.location_commonality
                );
                assert!(f.distance_m >= 0.0 && f.distance_m.is_finite());
                assert!(f.avg_duration_s > 0.0);
                let v = f.to_vec(fx.config());
                assert_eq!(v.len(), CandidateFeatures::vec_len(fx.config()));
                assert!(v.iter().all(|x| x.is_finite()));
            }
        }
    }

    /// The paper's Figure 5 scenario: candidates visited by all of the
    /// address's trips have TC = 1; one visited by 2 of 3 trips has 2/3.
    #[test]
    fn trip_coverage_matches_figure5_arithmetic() {
        let (_, ds, pool, ev) = world();
        let fx = FeatureExtractor::new(&ds, &pool, FeatureConfig::default());
        // Find an address with >= 2 trips and verify TC arithmetic directly
        // against the inverted index.
        let e = ev
            .iter()
            .find(|e| e.trips.len() >= 2)
            .expect("some address has multiple deliveries");
        let s = fx.sample(e);
        let addr_trips: OrdSet<TripId> = e.trips.iter().map(|&(t, _)| t).collect();
        for (c, f) in s.candidates.iter().zip(&s.features) {
            let manual = addr_trips
                .iter()
                .filter(|&&t| pool.visits(t).iter().any(|&(cc, _)| cc == *c))
                .count() as f64
                / addr_trips.len() as f64;
            assert!((f.trip_coverage - manual).abs() < 1e-12);
            assert!(f.trip_coverage > 0.0, "retrieved candidates are visited");
        }
    }

    /// The paper's Figure 6 argument: a common corridor location visited by
    /// everyone has high LC; the address's own doorstep has low LC.
    #[test]
    fn location_commonality_separates_corridors_from_doorsteps() {
        let (city, ds, pool, ev) = world();
        let fx = FeatureExtractor::new(&ds, &pool, FeatureConfig::default());
        // For each address with a near-truth candidate, compare its LC with
        // the max LC among retrieved candidates — the doorstep should not be
        // the most common location on average.
        let mut doorstep_lc = Vec::new();
        let mut max_lc = Vec::new();
        for e in &ev {
            let gt = city.addresses[e.address.0 as usize].true_delivery_location;
            let s = fx.sample(e);
            if s.candidates.is_empty() {
                continue;
            }
            let nearest = s
                .candidates
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    pool.candidate(**a)
                        .pos
                        .distance(&gt)
                        .total_cmp(&pool.candidate(**b).pos.distance(&gt))
                })
                .map(|(i, _)| i)
                .unwrap();
            if pool.candidate(s.candidates[nearest]).pos.distance(&gt) > 30.0 {
                continue;
            }
            if city.addresses[e.address.0 as usize].true_spot_kind
                != dlinfma_synth::DeliverySpotKind::Doorstep
            {
                continue; // lockers/receptions are legitimately common
            }
            doorstep_lc.push(s.features[nearest].location_commonality);
            max_lc.push(
                s.features
                    .iter()
                    .map(|f| f.location_commonality)
                    .fold(0.0, f64::max),
            );
        }
        assert!(!doorstep_lc.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&doorstep_lc) < mean(&max_lc),
            "doorstep LC {} !< max LC {}",
            mean(&doorstep_lc),
            mean(&max_lc)
        );
    }

    #[test]
    fn ablation_switches_shrink_the_vector() {
        let full = FeatureConfig::default();
        let no_profile = FeatureConfig {
            use_profile: false,
            ..full
        };
        let no_tc = FeatureConfig {
            use_trip_coverage: false,
            ..full
        };
        assert_eq!(CandidateFeatures::vec_len(&full), 6 + TIME_BINS);
        assert_eq!(CandidateFeatures::vec_len(&no_profile), 3);
        assert_eq!(
            CandidateFeatures::vec_len(&no_tc),
            CandidateFeatures::vec_len(&full) - 1
        );
    }

    #[test]
    fn address_level_lc_is_at_least_building_level() {
        // Excluding fewer trips (address < building) leaves more trips in
        // the denominator and numerator; the variant must still be bounded
        // and generally differ.
        let (_, ds, pool, ev) = world();
        let fx_b = FeatureExtractor::new(&ds, &pool, FeatureConfig::default());
        let fx_a = FeatureExtractor::new(
            &ds,
            &pool,
            FeatureConfig {
                lc_address_level: true,
                ..FeatureConfig::default()
            },
        );
        let mut any_diff = false;
        for e in ev.iter().take(30) {
            let sb = fx_b.sample(e);
            let sa = fx_a.sample(e);
            for (fb, fa) in sb.features.iter().zip(&sa.features) {
                assert!((0.0..=1.0).contains(&fa.location_commonality));
                if (fb.location_commonality - fa.location_commonality).abs() > 1e-12 {
                    any_diff = true;
                }
            }
        }
        assert!(any_diff, "LC variants should differ somewhere");
    }
}
