//! The end-to-end DLInfMA pipeline (Figure 3).
//!
//! Wires the two components together: location candidate generation
//! (stay-point extraction → candidate pool → retrieval) and delivery
//! location discovery (feature extraction → LocMatcher). This is the public
//! API a downstream user drives:
//!
//! ```
//! use dlinfma_core::{DlInfMa, DlInfMaConfig};
//! use dlinfma_synth::{generate, spatial_split, Preset, Scale};
//!
//! let (_, dataset) = generate(Preset::DowBJ, Scale::Tiny, 7);
//! let split = spatial_split(&dataset, 0.6, 0.2);
//!
//! let mut dlinfma = DlInfMa::prepare(&dataset, DlInfMaConfig::fast());
//! dlinfma.label_from_dataset(&dataset);
//! dlinfma.train(&split.train, &split.val);
//! let inferred = dlinfma.infer(split.test[0]);
//! assert!(inferred.is_some());
//! ```

use crate::candidates::{build_pool, build_pool_grid, CandidatePool};
use crate::features::{AddressSample, FeatureConfig, FeatureExtractor};
use crate::locmatcher::{LocMatcher, LocMatcherConfig, TrainReport};
use crate::retrieval::{collect_evidence, retrieve_candidates};
use crate::staypoints::{extract_stay_points_parallel_with_stats, ExtractionConfig};
use dlinfma_geo::Point;
use dlinfma_obs::{self as obs, stage, PipelineReport};
use dlinfma_params as params;
use dlinfma_synth::{AddressId, Dataset};
use std::collections::HashMap;

/// Which clustering backs the candidate pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMethod {
    /// Centroid-linkage hierarchical clustering (the paper's choice).
    Hierarchical,
    /// Fixed-grid bucketing (the DLInfMA-Grid ablation).
    Grid,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct DlInfMaConfig {
    /// Noise filtering and stay-point thresholds.
    pub extraction: ExtractionConfig,
    /// Hierarchical clustering distance `D` (paper: 40 m); doubles as the
    /// grid cell size for [`PoolMethod::Grid`].
    pub clustering_distance_m: f64,
    /// Clustering method for the candidate pool.
    pub pool_method: PoolMethod,
    /// Feature switches (ablations).
    pub features: FeatureConfig,
    /// LocMatcher hyperparameters.
    pub model: LocMatcherConfig,
    /// Worker threads for stay-point extraction.
    pub workers: usize,
}

impl DlInfMaConfig {
    /// The paper's configuration.
    pub fn paper_defaults() -> Self {
        Self {
            extraction: ExtractionConfig::paper_defaults(),
            clustering_distance_m: params::CLUSTER_DISTANCE_M,
            pool_method: PoolMethod::Hierarchical,
            features: FeatureConfig::default(),
            model: LocMatcherConfig::paper_defaults(),
            workers: 4,
        }
    }

    /// Paper architecture re-tuned for synthetic scale. The clustering
    /// distance is 30 m rather than the paper's 40 m: Figure 10(a)'s
    /// selection procedure (pick `D` at the MAE minimum) lands at 30 m on
    /// the synthetic geometry — see EXPERIMENTS.md.
    pub fn fast() -> Self {
        Self {
            model: LocMatcherConfig::fast(),
            clustering_distance_m: params::TUNED_CLUSTER_DISTANCE_M,
            ..Self::paper_defaults()
        }
    }
}

/// The prepared (and optionally trained) DLInfMA system.
pub struct DlInfMa {
    cfg: DlInfMaConfig,
    pool: CandidatePool,
    samples: HashMap<AddressId, AddressSample>,
    model: Option<LocMatcher>,
    report: PipelineReport,
}

impl DlInfMa {
    /// Runs candidate generation and feature extraction over a dataset.
    ///
    /// Stage timings and funnel counts are recorded in [`DlInfMa::report`]
    /// unconditionally (a handful of clock reads); per-stage spans and the
    /// candidate-set-size histogram are additionally emitted when the
    /// global `dlinfma_obs` collector is enabled.
    pub fn prepare(dataset: &Dataset, cfg: DlInfMaConfig) -> Self {
        // Keep the model's feature switches in lockstep with extraction.
        let mut cfg = cfg;
        cfg.model.features = cfg.features;
        let mut report = PipelineReport::new();

        let (stays, stats) =
            extract_stay_points_parallel_with_stats(dataset, &cfg.extraction, cfg.workers);
        obs::record_duration(stage::NOISE_FILTER, stats.noise_filter_ns);
        obs::record_duration(stage::STAY_POINTS, stats.detect_ns);
        report.push_stage(
            stage::NOISE_FILTER,
            stats.noise_filter_ns.max(1),
            Some(stats.raw_points),
            Some(stats.filtered_points),
        );
        report.push_stage(
            stage::STAY_POINTS,
            stats.detect_ns.max(1),
            Some(stats.filtered_points),
            Some(stats.stay_points),
        );

        let t = obs::Stopwatch::start();
        let pool = {
            let _span = obs::span(stage::CLUSTERING);
            match cfg.pool_method {
                PoolMethod::Hierarchical => build_pool(dataset, &stays, cfg.clustering_distance_m),
                PoolMethod::Grid => build_pool_grid(dataset, &stays, cfg.clustering_distance_m),
            }
        };
        report.push_stage(
            stage::CLUSTERING,
            t.elapsed_ns().max(1),
            Some(stats.stay_points),
            Some(pool.len() as u64),
        );

        let t = obs::Stopwatch::start();
        let extractor = FeatureExtractor::new(dataset, &pool, cfg.features);
        let mut feature_ns = t.elapsed_ns().max(1);
        let mut retrieval_ns = 1u64;
        let mut candidates_retrieved = 0u64;
        let cand_hist = obs::enabled().then(|| {
            obs::histogram(
                "retrieval/candidate-set-size",
                // lint: allow(L3, bucket edge in a 1-2-5 series of counts, not the 20 m stay radius)
                &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
            )
        });
        let evidence = collect_evidence(dataset);
        let mut samples = HashMap::with_capacity(evidence.len());
        for e in &evidence {
            let t = obs::Stopwatch::start();
            let candidates = retrieve_candidates(&pool, e);
            retrieval_ns += t.elapsed_ns();
            candidates_retrieved += candidates.len() as u64;
            if let Some(h) = &cand_hist {
                h.observe(candidates.len() as f64);
            }
            let t = obs::Stopwatch::start();
            let sample = extractor.sample_with_candidates(e, candidates);
            feature_ns += t.elapsed_ns();
            samples.insert(e.address, sample);
        }
        obs::record_duration(stage::RETRIEVAL, retrieval_ns);
        obs::record_duration(stage::FEATURES, feature_ns);
        report.push_stage(
            stage::RETRIEVAL,
            retrieval_ns,
            Some(evidence.len() as u64),
            Some(candidates_retrieved),
        );
        report.push_stage(
            stage::FEATURES,
            feature_ns,
            Some(candidates_retrieved),
            Some(samples.len() as u64),
        );
        report.funnel.raw_points = stats.raw_points;
        report.funnel.filtered_points = stats.filtered_points;
        report.funnel.stay_points = stats.stay_points;
        report.funnel.clusters = pool.len() as u64;
        report.funnel.candidates_retrieved = candidates_retrieved;
        report.funnel.addresses_sampled = samples.len() as u64;

        Self {
            cfg,
            pool,
            samples,
            model: None,
            report,
        }
    }

    /// Labels every sample with the candidate nearest to the ground-truth
    /// delivery location provided by `gt` (supervised-learning labelling per
    /// Section V-A).
    ///
    /// Candidates at a non-finite distance from the truth (degenerate
    /// ground-truth points) are never selected as the label; a sample whose
    /// distances are all non-finite stays unlabelled.
    pub fn label_with(&mut self, gt: &dyn Fn(AddressId) -> Option<Point>) {
        for (addr, sample) in &mut self.samples {
            let Some(truth) = gt(*addr) else { continue };
            let distances: Vec<f64> = sample
                .candidates
                .iter()
                .map(|c| self.pool.candidate(*c).pos.distance(&truth))
                .collect();
            sample.label = distances
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i);
            sample.truth_distances = Some(distances);
        }
        self.report.funnel.samples_labelled =
            self.samples.values().filter(|s| s.label.is_some()).count() as u64;
    }

    /// Labels from the synthetic dataset's ground-truth fields.
    pub fn label_from_dataset(&mut self, dataset: &Dataset) {
        let truths: HashMap<AddressId, Point> = dataset
            .addresses
            .iter()
            .map(|a| (a.id, a.true_delivery_location))
            .collect();
        self.label_with(&|addr| truths.get(&addr).copied());
    }

    /// Trains LocMatcher on the given train/validation address splits.
    /// Requires labels (see [`DlInfMa::label_with`]).
    pub fn train(&mut self, train: &[AddressId], val: &[AddressId]) -> TrainReport {
        self.train_with_progress(train, val, &mut |_| {})
    }

    /// [`DlInfMa::train`] with a per-epoch progress hook; also records the
    /// `training` stage in [`DlInfMa::report`].
    pub fn train_with_progress(
        &mut self,
        train: &[AddressId],
        val: &[AddressId],
        progress: &mut dyn FnMut(obs::EpochProgress),
    ) -> TrainReport {
        let collect = |ids: &[AddressId]| -> Vec<AddressSample> {
            ids.iter()
                .filter_map(|a| self.samples.get(a).cloned())
                .collect()
        };
        let train_samples = collect(train);
        let val_samples = collect(val);
        let t = obs::Stopwatch::start();
        let mut model = LocMatcher::new(self.cfg.model);
        let report = model.train_with_progress(&train_samples, &val_samples, progress);
        self.report.push_stage(
            stage::TRAINING,
            t.elapsed_ns().max(1),
            Some(train_samples.len() as u64),
            Some(report.epochs as u64),
        );
        self.model = Some(model);
        report
    }

    /// Installs an externally-trained model (used by variant experiments).
    pub fn set_model(&mut self, model: LocMatcher) {
        self.model = Some(model);
    }

    /// Inferred delivery location of an address, or `None` when the address
    /// was never delivered in the data, has no candidates, or the model is
    /// untrained.
    pub fn infer(&self, addr: AddressId) -> Option<Point> {
        let _span = obs::span(stage::INFERENCE);
        let sample = self.samples.get(&addr)?;
        let model = self.model.as_ref()?;
        let idx = model.predict(sample)?;
        Some(self.pool.candidate(sample.candidates[idx]).pos)
    }

    /// Inference with the deployment fallback chain: inferred location if
    /// available, otherwise the address's geocode.
    pub fn infer_or_geocode(&self, dataset: &Dataset, addr: AddressId) -> Point {
        self.infer(addr)
            .unwrap_or_else(|| dataset.address(addr).geocode)
    }

    /// The candidate pool.
    pub fn pool(&self) -> &CandidatePool {
        &self.pool
    }

    /// The prepared sample of an address.
    pub fn sample(&self, addr: AddressId) -> Option<&AddressSample> {
        self.samples.get(&addr)
    }

    /// All prepared samples (unordered).
    pub fn samples(&self) -> impl Iterator<Item = &AddressSample> {
        self.samples.values()
    }

    /// The trained model, if any.
    pub fn model(&self) -> Option<&LocMatcher> {
        self.model.as_ref()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DlInfMaConfig {
        &self.cfg
    }

    /// Stage timings and funnel counts accumulated by
    /// [`DlInfMa::prepare`] / [`DlInfMa::label_with`] / [`DlInfMa::train`].
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{generate, spatial_split, Preset, Scale};

    #[test]
    fn end_to_end_beats_geocoding_on_tiny_world() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 11);
        let split = spatial_split(&ds, 0.6, 0.2);
        let mut cfg = DlInfMaConfig::fast();
        cfg.model.max_epochs = 15;
        let mut dlinfma = DlInfMa::prepare(&ds, cfg);
        dlinfma.label_from_dataset(&ds);
        let report = dlinfma.train(&split.train, &split.val);
        assert!(report.epochs > 0);

        let mut err_model = 0.0;
        let mut err_geo = 0.0;
        let mut n = 0;
        for &addr in &split.test {
            let gt = city.addresses[addr.0 as usize].true_delivery_location;
            let inferred = dlinfma.infer_or_geocode(&ds, addr);
            err_model += inferred.distance(&gt);
            err_geo += ds.address(addr).geocode.distance(&gt);
            n += 1;
        }
        assert!(n > 0);
        let (mae_model, mae_geo) = (err_model / n as f64, err_geo / n as f64);
        assert!(
            mae_model < mae_geo,
            "DLInfMA MAE {mae_model:.1}m must beat Geocoding {mae_geo:.1}m"
        );
    }

    #[test]
    fn untrained_model_infers_none() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 12);
        let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        let addr = ds.waybills[0].address;
        assert!(dlinfma.infer(addr).is_none());
        let fallback = dlinfma.infer_or_geocode(&ds, addr);
        assert_eq!(fallback, ds.address(addr).geocode);
    }

    #[test]
    fn label_with_non_finite_truth_does_not_panic() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 14);
        let mut dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        // A NaN ground-truth point makes every candidate distance NaN; the
        // old partial_cmp-then-expect labelling panicked here.
        dlinfma.label_with(&|_| Some(Point::new(f64::NAN, f64::NAN)));
        for s in dlinfma.samples() {
            assert_eq!(s.label, None, "non-finite distances must not label");
        }
        assert_eq!(dlinfma.report().funnel.samples_labelled, 0);

        // Infinite truths behave the same, and a later finite labelling
        // pass recovers.
        dlinfma.label_with(&|_| Some(Point::new(f64::INFINITY, 0.0)));
        assert_eq!(dlinfma.report().funnel.samples_labelled, 0);
        dlinfma.label_from_dataset(&ds);
        assert!(dlinfma.report().funnel.samples_labelled > 0);
    }

    #[test]
    fn prepare_report_covers_all_stages() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 15);
        let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        let report = dlinfma.report();
        for name in [
            obs::stage::NOISE_FILTER,
            obs::stage::STAY_POINTS,
            obs::stage::CLUSTERING,
            obs::stage::RETRIEVAL,
            obs::stage::FEATURES,
        ] {
            let s = report.stage(name).unwrap_or_else(|| panic!("stage {name}"));
            assert!(s.duration_ns > 0, "{name} duration");
        }
        assert!(
            report.check_funnel().is_empty(),
            "{:?}",
            report.check_funnel()
        );
        assert!(report.funnel.raw_points > 0);
        assert_eq!(report.funnel.clusters, dlinfma.pool().len() as u64);
    }

    #[test]
    fn labels_point_to_nearest_candidate() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 13);
        let mut dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        dlinfma.label_from_dataset(&ds);
        for s in dlinfma.samples() {
            let Some(label) = s.label else { continue };
            let gt = city.addresses[s.address.0 as usize].true_delivery_location;
            let labelled = dlinfma.pool().candidate(s.candidates[label]).pos;
            for &c in &s.candidates {
                assert!(
                    labelled.distance(&gt) <= dlinfma.pool().candidate(c).pos.distance(&gt) + 1e-9
                );
            }
        }
    }
}
