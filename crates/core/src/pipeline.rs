//! The end-to-end DLInfMA pipeline (Figure 3).
//!
//! Wires the two components together: location candidate generation
//! (stay-point extraction → candidate pool → retrieval) and delivery
//! location discovery (feature extraction → LocMatcher). This is the public
//! API a downstream user drives:
//!
//! ```
//! use dlinfma_core::{DlInfMa, DlInfMaConfig};
//! use dlinfma_synth::{generate, spatial_split, Preset, Scale};
//!
//! let (_, dataset) = generate(Preset::DowBJ, Scale::Tiny, 7);
//! let split = spatial_split(&dataset, 0.6, 0.2);
//!
//! let mut dlinfma = DlInfMa::prepare(&dataset, DlInfMaConfig::fast());
//! dlinfma.label_from_dataset(&dataset);
//! dlinfma.train(&split.train, &split.val);
//! let inferred = dlinfma.infer(split.test[0]);
//! assert!(inferred.is_some());
//! ```

use crate::candidates::{build_pool, build_pool_grid, CandidatePool};
use crate::features::{AddressSample, FeatureConfig, FeatureExtractor};
use crate::locmatcher::{LocMatcher, LocMatcherConfig, TrainReport};
use crate::retrieval::collect_evidence;
use crate::staypoints::{extract_stay_points_parallel, ExtractionConfig};
use dlinfma_geo::Point;
use dlinfma_synth::{AddressId, Dataset};
use std::collections::HashMap;

/// Which clustering backs the candidate pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMethod {
    /// Centroid-linkage hierarchical clustering (the paper's choice).
    Hierarchical,
    /// Fixed-grid bucketing (the DLInfMA-Grid ablation).
    Grid,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct DlInfMaConfig {
    /// Noise filtering and stay-point thresholds.
    pub extraction: ExtractionConfig,
    /// Hierarchical clustering distance `D` (paper: 40 m); doubles as the
    /// grid cell size for [`PoolMethod::Grid`].
    pub clustering_distance_m: f64,
    /// Clustering method for the candidate pool.
    pub pool_method: PoolMethod,
    /// Feature switches (ablations).
    pub features: FeatureConfig,
    /// LocMatcher hyperparameters.
    pub model: LocMatcherConfig,
    /// Worker threads for stay-point extraction.
    pub workers: usize,
}

impl DlInfMaConfig {
    /// The paper's configuration.
    pub fn paper_defaults() -> Self {
        Self {
            extraction: ExtractionConfig::paper_defaults(),
            clustering_distance_m: 40.0,
            pool_method: PoolMethod::Hierarchical,
            features: FeatureConfig::default(),
            model: LocMatcherConfig::paper_defaults(),
            workers: 4,
        }
    }

    /// Paper architecture re-tuned for synthetic scale. The clustering
    /// distance is 30 m rather than the paper's 40 m: Figure 10(a)'s
    /// selection procedure (pick `D` at the MAE minimum) lands at 30 m on
    /// the synthetic geometry — see EXPERIMENTS.md.
    pub fn fast() -> Self {
        Self {
            model: LocMatcherConfig::fast(),
            clustering_distance_m: 30.0,
            ..Self::paper_defaults()
        }
    }
}

/// The prepared (and optionally trained) DLInfMA system.
pub struct DlInfMa {
    cfg: DlInfMaConfig,
    pool: CandidatePool,
    samples: HashMap<AddressId, AddressSample>,
    model: Option<LocMatcher>,
}

impl DlInfMa {
    /// Runs candidate generation and feature extraction over a dataset.
    pub fn prepare(dataset: &Dataset, cfg: DlInfMaConfig) -> Self {
        // Keep the model's feature switches in lockstep with extraction.
        let mut cfg = cfg;
        cfg.model.features = cfg.features;

        let stays = extract_stay_points_parallel(dataset, &cfg.extraction, cfg.workers);
        let pool = match cfg.pool_method {
            PoolMethod::Hierarchical => build_pool(dataset, &stays, cfg.clustering_distance_m),
            PoolMethod::Grid => build_pool_grid(dataset, &stays, cfg.clustering_distance_m),
        };
        let extractor = FeatureExtractor::new(dataset, &pool, cfg.features);
        let samples: HashMap<AddressId, AddressSample> = collect_evidence(dataset)
            .iter()
            .map(|e| (e.address, extractor.sample(e)))
            .collect();
        Self {
            cfg,
            pool,
            samples,
            model: None,
        }
    }

    /// Labels every sample with the candidate nearest to the ground-truth
    /// delivery location provided by `gt` (supervised-learning labelling per
    /// Section V-A).
    pub fn label_with(&mut self, gt: &dyn Fn(AddressId) -> Option<Point>) {
        for (addr, sample) in &mut self.samples {
            let Some(truth) = gt(*addr) else { continue };
            let distances: Vec<f64> = sample
                .candidates
                .iter()
                .map(|c| self.pool.candidate(*c).pos.distance(&truth))
                .collect();
            sample.label = distances
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite distances"))
                .map(|(i, _)| i);
            sample.truth_distances = Some(distances);
        }
    }

    /// Labels from the synthetic dataset's ground-truth fields.
    pub fn label_from_dataset(&mut self, dataset: &Dataset) {
        let truths: HashMap<AddressId, Point> = dataset
            .addresses
            .iter()
            .map(|a| (a.id, a.true_delivery_location))
            .collect();
        self.label_with(&|addr| truths.get(&addr).copied());
    }

    /// Trains LocMatcher on the given train/validation address splits.
    /// Requires labels (see [`DlInfMa::label_with`]).
    pub fn train(&mut self, train: &[AddressId], val: &[AddressId]) -> TrainReport {
        let collect = |ids: &[AddressId]| -> Vec<AddressSample> {
            ids.iter()
                .filter_map(|a| self.samples.get(a).cloned())
                .collect()
        };
        let train_samples = collect(train);
        let val_samples = collect(val);
        let mut model = LocMatcher::new(self.cfg.model);
        let report = model.train(&train_samples, &val_samples);
        self.model = Some(model);
        report
    }

    /// Installs an externally-trained model (used by variant experiments).
    pub fn set_model(&mut self, model: LocMatcher) {
        self.model = Some(model);
    }

    /// Inferred delivery location of an address, or `None` when the address
    /// was never delivered in the data, has no candidates, or the model is
    /// untrained.
    pub fn infer(&self, addr: AddressId) -> Option<Point> {
        let sample = self.samples.get(&addr)?;
        let model = self.model.as_ref()?;
        let idx = model.predict(sample)?;
        Some(self.pool.candidate(sample.candidates[idx]).pos)
    }

    /// Inference with the deployment fallback chain: inferred location if
    /// available, otherwise the address's geocode.
    pub fn infer_or_geocode(&self, dataset: &Dataset, addr: AddressId) -> Point {
        self.infer(addr)
            .unwrap_or_else(|| dataset.address(addr).geocode)
    }

    /// The candidate pool.
    pub fn pool(&self) -> &CandidatePool {
        &self.pool
    }

    /// The prepared sample of an address.
    pub fn sample(&self, addr: AddressId) -> Option<&AddressSample> {
        self.samples.get(&addr)
    }

    /// All prepared samples (unordered).
    pub fn samples(&self) -> impl Iterator<Item = &AddressSample> {
        self.samples.values()
    }

    /// The trained model, if any.
    pub fn model(&self) -> Option<&LocMatcher> {
        self.model.as_ref()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DlInfMaConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{generate, spatial_split, Preset, Scale};

    #[test]
    fn end_to_end_beats_geocoding_on_tiny_world() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 11);
        let split = spatial_split(&ds, 0.6, 0.2);
        let mut cfg = DlInfMaConfig::fast();
        cfg.model.max_epochs = 15;
        let mut dlinfma = DlInfMa::prepare(&ds, cfg);
        dlinfma.label_from_dataset(&ds);
        let report = dlinfma.train(&split.train, &split.val);
        assert!(report.epochs > 0);

        let mut err_model = 0.0;
        let mut err_geo = 0.0;
        let mut n = 0;
        for &addr in &split.test {
            let gt = city.addresses[addr.0 as usize].true_delivery_location;
            let inferred = dlinfma.infer_or_geocode(&ds, addr);
            err_model += inferred.distance(&gt);
            err_geo += ds.address(addr).geocode.distance(&gt);
            n += 1;
        }
        assert!(n > 0);
        let (mae_model, mae_geo) = (err_model / n as f64, err_geo / n as f64);
        assert!(
            mae_model < mae_geo,
            "DLInfMA MAE {mae_model:.1}m must beat Geocoding {mae_geo:.1}m"
        );
    }

    #[test]
    fn untrained_model_infers_none() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 12);
        let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        let addr = ds.waybills[0].address;
        assert!(dlinfma.infer(addr).is_none());
        let fallback = dlinfma.infer_or_geocode(&ds, addr);
        assert_eq!(fallback, ds.address(addr).geocode);
    }

    #[test]
    fn labels_point_to_nearest_candidate() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 13);
        let mut dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        dlinfma.label_from_dataset(&ds);
        for s in dlinfma.samples() {
            let Some(label) = s.label else { continue };
            let gt = city.addresses[s.address.0 as usize].true_delivery_location;
            let labelled = dlinfma.pool().candidate(s.candidates[label]).pos;
            for &c in &s.candidates {
                assert!(
                    labelled.distance(&gt) <= dlinfma.pool().candidate(c).pos.distance(&gt) + 1e-9
                );
            }
        }
    }
}
