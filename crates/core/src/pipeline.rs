//! The end-to-end DLInfMA pipeline (Figure 3).
//!
//! Wires the two components together: location candidate generation
//! (stay-point extraction → candidate pool → retrieval) and delivery
//! location discovery (feature extraction → LocMatcher). This is the public
//! API a downstream user drives:
//!
//! ```
//! use dlinfma_core::{DlInfMa, DlInfMaConfig};
//! use dlinfma_synth::{generate, spatial_split, Preset, Scale};
//!
//! let (_, dataset) = generate(Preset::DowBJ, Scale::Tiny, 7);
//! let split = spatial_split(&dataset, 0.6, 0.2);
//!
//! let mut dlinfma = DlInfMa::prepare(&dataset, DlInfMaConfig::fast());
//! dlinfma.label_from_dataset(&dataset);
//! dlinfma.train(&split.train, &split.val);
//! let inferred = dlinfma.infer(split.test[0]);
//! assert!(inferred.is_some());
//! ```

use crate::candidates::CandidatePool;
use crate::engine::Engine;
use crate::features::{AddressSample, FeatureConfig};
use crate::locmatcher::{LocMatcher, LocMatcherConfig, TrainReport};
use crate::staypoints::ExtractionConfig;
use dlinfma_detcol::OrdMap;
use dlinfma_geo::Point;
use dlinfma_obs::{self as obs, stage, PipelineReport};
use dlinfma_params as params;
use dlinfma_pool::Pool;
use dlinfma_synth::{AddressId, Dataset, TripBatch};
use std::sync::Arc;

/// Which clustering backs the candidate pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMethod {
    /// Centroid-linkage hierarchical clustering (the paper's choice).
    Hierarchical,
    /// Fixed-grid bucketing (the DLInfMA-Grid ablation).
    Grid,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct DlInfMaConfig {
    /// Noise filtering and stay-point thresholds.
    pub extraction: ExtractionConfig,
    /// Hierarchical clustering distance `D` (paper: 40 m); doubles as the
    /// grid cell size for [`PoolMethod::Grid`].
    pub clustering_distance_m: f64,
    /// Clustering method for the candidate pool.
    pub pool_method: PoolMethod,
    /// Feature switches (ablations).
    pub features: FeatureConfig,
    /// LocMatcher hyperparameters.
    pub model: LocMatcherConfig,
    /// Worker threads for stay-point extraction.
    pub workers: usize,
}

impl DlInfMaConfig {
    /// The paper's configuration. Worker count defaults to the machine's
    /// available parallelism (clamped to 16; the deployed system's
    /// trip-level parallelism saturates well before that), overridable via
    /// the `workers` field or the CLI's `--workers`.
    pub fn paper_defaults() -> Self {
        Self {
            extraction: ExtractionConfig::paper_defaults(),
            clustering_distance_m: params::CLUSTER_DISTANCE_M,
            pool_method: PoolMethod::Hierarchical,
            features: FeatureConfig::default(),
            model: LocMatcherConfig::paper_defaults(),
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(16)),
        }
    }

    /// Paper architecture re-tuned for synthetic scale. The clustering
    /// distance is 30 m rather than the paper's 40 m: Figure 10(a)'s
    /// selection procedure (pick `D` at the MAE minimum) lands at 30 m on
    /// the synthetic geometry — see EXPERIMENTS.md.
    pub fn fast() -> Self {
        Self {
            model: LocMatcherConfig::fast(),
            clustering_distance_m: params::TUNED_CLUSTER_DISTANCE_M,
            ..Self::paper_defaults()
        }
    }
}

/// The prepared (and optionally trained) DLInfMA system.
pub struct DlInfMa {
    cfg: DlInfMaConfig,
    pool: CandidatePool,
    samples: OrdMap<AddressId, AddressSample>,
    model: Option<LocMatcher>,
    report: PipelineReport,
    /// The engine's shared work-stealing pool, carried over so training and
    /// batch inference reuse the same worker threads.
    exec: Arc<Pool>,
}

impl DlInfMa {
    /// Runs candidate generation and feature extraction over a dataset.
    ///
    /// Since the staged-engine refactor this is literally *one big ingest*:
    /// the whole dataset is fed to [`Engine::ingest`] as a single
    /// [`TripBatch`] and the engine's materialized artifacts become the
    /// batch pipeline's state. Streaming the same dataset day by day
    /// through an [`Engine`] produces identical artifacts — the refactor's
    /// correctness anchor, pinned by the `batch_streaming_parity` tests.
    ///
    /// Stage timings and funnel counts are recorded in [`DlInfMa::report`]
    /// unconditionally (a handful of clock reads per stage — no longer two
    /// per address); per-stage spans and the candidate-set-size histogram
    /// are additionally emitted when the global `dlinfma_obs` collector is
    /// enabled.
    pub fn prepare(dataset: &Dataset, cfg: DlInfMaConfig) -> Self {
        let mut engine = Engine::new(dataset.addresses.clone(), cfg);
        engine.ingest(&TripBatch::full(dataset));
        Self::from_engine(engine)
    }

    /// Wraps an incrementally-fed [`Engine`] as the batch API, taking over
    /// its materialized pool, samples, report, and model (if any). Labeling
    /// and training work exactly as after [`DlInfMa::prepare`].
    pub fn from_engine(engine: Engine) -> Self {
        let (cfg, pool, samples, model, report, exec) = engine.into_parts();
        Self {
            cfg,
            pool,
            samples,
            model,
            report,
            exec,
        }
    }

    /// The shared thread pool carried over from the engine.
    pub fn executor(&self) -> &Pool {
        &self.exec
    }

    /// Labels every sample with the candidate nearest to the ground-truth
    /// delivery location provided by `gt` (supervised-learning labelling per
    /// Section V-A).
    ///
    /// Candidates at a non-finite distance from the truth (degenerate
    /// ground-truth points) are never selected as the label; a sample whose
    /// distances are all non-finite stays unlabelled.
    pub fn label_with(&mut self, gt: &dyn Fn(AddressId) -> Option<Point>) {
        for (addr, sample) in &mut self.samples {
            let Some(truth) = gt(*addr) else { continue };
            let distances: Vec<f64> = sample
                .candidates
                .iter()
                .map(|c| self.pool.candidate(*c).pos.distance(&truth))
                .collect();
            sample.label = distances
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i);
            sample.truth_distances = Some(distances);
        }
        self.report.funnel.samples_labelled =
            self.samples.values().filter(|s| s.label.is_some()).count() as u64;
    }

    /// Labels from the synthetic dataset's ground-truth fields.
    pub fn label_from_dataset(&mut self, dataset: &Dataset) {
        let truths: OrdMap<AddressId, Point> = dataset
            .addresses
            .iter()
            .map(|a| (a.id, a.true_delivery_location))
            .collect();
        self.label_with(&|addr| truths.get(&addr).copied());
    }

    /// Trains LocMatcher on the given train/validation address splits.
    /// Requires labels (see [`DlInfMa::label_with`]).
    pub fn train(&mut self, train: &[AddressId], val: &[AddressId]) -> TrainReport {
        self.train_with_progress(train, val, &mut |_| {})
    }

    /// [`DlInfMa::train`] with a per-epoch progress hook; also records the
    /// `training` stage in [`DlInfMa::report`].
    pub fn train_with_progress(
        &mut self,
        train: &[AddressId],
        val: &[AddressId],
        progress: &mut dyn FnMut(obs::EpochProgress),
    ) -> TrainReport {
        let collect = |ids: &[AddressId]| -> Vec<AddressSample> {
            ids.iter()
                .filter_map(|a| self.samples.get(a).cloned())
                .collect()
        };
        let train_samples = collect(train);
        let val_samples = collect(val);
        let t = obs::Stopwatch::start();
        let mut model = LocMatcher::new(self.cfg.model);
        let report =
            model.train_pooled_with_progress(&train_samples, &val_samples, &self.exec, progress);
        self.report.push_stage(
            stage::TRAINING,
            t.elapsed_ns().max(1),
            Some(train_samples.len() as u64),
            Some(report.epochs as u64),
        );
        self.model = Some(model);
        report
    }

    /// Installs an externally-trained model (used by variant experiments).
    pub fn set_model(&mut self, model: LocMatcher) {
        self.model = Some(model);
    }

    /// Inferred delivery location of an address, or `None` when the address
    /// was never delivered in the data, has no candidates, or the model is
    /// untrained.
    pub fn infer(&self, addr: AddressId) -> Option<Point> {
        let _span = obs::span(stage::INFERENCE);
        let sample = self.samples.get(&addr)?;
        let model = self.model.as_ref()?;
        let idx = model.predict(sample)?;
        Some(self.pool.candidate(sample.candidates[idx]).pos)
    }

    /// Inference with the deployment fallback chain: inferred location if
    /// available, otherwise the address's geocode.
    pub fn infer_or_geocode(&self, dataset: &Dataset, addr: AddressId) -> Point {
        self.infer(addr)
            .unwrap_or_else(|| dataset.address(addr).geocode)
    }

    /// The candidate pool.
    pub fn pool(&self) -> &CandidatePool {
        &self.pool
    }

    /// The prepared sample of an address.
    pub fn sample(&self, addr: AddressId) -> Option<&AddressSample> {
        self.samples.get(&addr)
    }

    /// All prepared samples, ascending by address id.
    pub fn samples(&self) -> impl Iterator<Item = &AddressSample> {
        self.samples.values()
    }

    /// The trained model, if any.
    pub fn model(&self) -> Option<&LocMatcher> {
        self.model.as_ref()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DlInfMaConfig {
        &self.cfg
    }

    /// Stage timings and funnel counts accumulated by
    /// [`DlInfMa::prepare`] / [`DlInfMa::label_with`] / [`DlInfMa::train`].
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{generate, spatial_split, Preset, Scale};

    #[test]
    fn end_to_end_beats_geocoding_on_tiny_world() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 11);
        let split = spatial_split(&ds, 0.6, 0.2);
        let mut cfg = DlInfMaConfig::fast();
        cfg.model.max_epochs = 15;
        let mut dlinfma = DlInfMa::prepare(&ds, cfg);
        dlinfma.label_from_dataset(&ds);
        let report = dlinfma.train(&split.train, &split.val);
        assert!(report.epochs > 0);

        let mut err_model = 0.0;
        let mut err_geo = 0.0;
        let mut n = 0;
        for &addr in &split.test {
            let gt = city.addresses[addr.0 as usize].true_delivery_location;
            let inferred = dlinfma.infer_or_geocode(&ds, addr);
            err_model += inferred.distance(&gt);
            err_geo += ds.address(addr).geocode.distance(&gt);
            n += 1;
        }
        assert!(n > 0);
        let (mae_model, mae_geo) = (err_model / n as f64, err_geo / n as f64);
        assert!(
            mae_model < mae_geo,
            "DLInfMA MAE {mae_model:.1}m must beat Geocoding {mae_geo:.1}m"
        );
    }

    #[test]
    fn untrained_model_infers_none() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 12);
        let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        let addr = ds.waybills[0].address;
        assert!(dlinfma.infer(addr).is_none());
        let fallback = dlinfma.infer_or_geocode(&ds, addr);
        assert_eq!(fallback, ds.address(addr).geocode);
    }

    #[test]
    fn label_with_non_finite_truth_does_not_panic() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 14);
        let mut dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        // A NaN ground-truth point makes every candidate distance NaN; the
        // old partial_cmp-then-expect labelling panicked here.
        dlinfma.label_with(&|_| Some(Point::new(f64::NAN, f64::NAN)));
        for s in dlinfma.samples() {
            assert_eq!(s.label, None, "non-finite distances must not label");
        }
        assert_eq!(dlinfma.report().funnel.samples_labelled, 0);

        // Infinite truths behave the same, and a later finite labelling
        // pass recovers.
        dlinfma.label_with(&|_| Some(Point::new(f64::INFINITY, 0.0)));
        assert_eq!(dlinfma.report().funnel.samples_labelled, 0);
        dlinfma.label_from_dataset(&ds);
        assert!(dlinfma.report().funnel.samples_labelled > 0);
    }

    #[test]
    fn prepare_report_covers_all_stages() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 15);
        let dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        let report = dlinfma.report();
        for name in [
            obs::stage::NOISE_FILTER,
            obs::stage::STAY_POINTS,
            obs::stage::CLUSTERING,
            obs::stage::RETRIEVAL,
            obs::stage::FEATURES,
        ] {
            let s = report.stage(name).unwrap_or_else(|| panic!("stage {name}"));
            assert!(s.duration_ns > 0, "{name} duration");
        }
        assert!(
            report.check_funnel().is_empty(),
            "{:?}",
            report.check_funnel()
        );
        assert!(report.funnel.raw_points > 0);
        assert_eq!(report.funnel.clusters, dlinfma.pool().len() as u64);
    }

    #[test]
    fn labels_point_to_nearest_candidate() {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, 13);
        let mut dlinfma = DlInfMa::prepare(&ds, DlInfMaConfig::fast());
        dlinfma.label_from_dataset(&ds);
        for s in dlinfma.samples() {
            let Some(label) = s.label else { continue };
            let gt = city.addresses[s.address.0 as usize].true_delivery_location;
            let labelled = dlinfma.pool().candidate(s.candidates[label]).pos;
            for &c in &s.candidates {
                assert!(
                    labelled.distance(&gt) <= dlinfma.pool().candidate(c).pos.distance(&gt) + 1e-9
                );
            }
        }
    }
}
