//! The incremental staged engine.
//!
//! [`Engine`] runs the DLInfMA pipeline the way the deployed system does
//! (Section VI): trips arrive in batches, and each [`Engine::ingest`]
//! updates the staged artifacts in place instead of recomputing the world —
//!
//! * stay points are extracted for the *new* trips only;
//! * the candidate pool re-clusters only the radius-`D` components touched
//!   by new stays ([`stages::PoolState`]);
//! * retrieval and feature counting re-run only for *dirty* addresses:
//!   addresses with new waybills plus addresses referencing a candidate
//!   whose member set changed ([`stages::SampleTable`]);
//! * the classic batch artifacts ([`CandidatePool`], [`AddressSample`]s)
//!   are materialized after every ingest, so [`Engine::infer`] serves
//!   between ingests and `DlInfMa::prepare` is just one big ingest.
//!
//! Streaming the same trips day by day or ingesting them in one batch
//! yields identical artifacts — see `DESIGN.md` for why each invalidation
//! rule is exact. The engine's API is panic-free on data: malformed input
//! (duplicate trips, waybills for unknown trips or out-of-range addresses)
//! is counted in the [`IngestReport`] rather than panicking.
//!
//! [`stages::PoolState`]: crate::stages::PoolState
//! [`stages::SampleTable`]: crate::stages::SampleTable

use crate::candidates::{hour_bin, CandidateId, CandidatePool, LocationCandidate};
use crate::features::{AddressSample, CandidateFeatures};
use crate::locmatcher::LocMatcher;
use crate::pipeline::DlInfMaConfig;
use crate::stages::{PoolState, RawSample, RetrievalIndex, SampleTable, StayPointSet, StayRec};
use crate::staypoints::extract_batch_with_stats;
use dlinfma_detcol::OrdMap;
use dlinfma_geo::Point;
use dlinfma_obs::{
    self as obs, names, stage, HealthMonitor, HealthReport, IngestReport, PipelineReport,
};
use dlinfma_pool::Pool;
use dlinfma_synth::{Address, AddressId, DeliveryTrip, StationId, TripBatch, TripId};
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Cumulative per-stage nanoseconds across every ingest. Extraction keeps
/// both clocks: `noise`/`detect` are CPU sums across pool workers (the two
/// phases run fused per trip, so only their accumulated times are
/// separable), while `extract_wall` is the elapsed time of the whole
/// parallel extraction call.
#[derive(Debug, Default, Clone, Copy)]
struct StageNs {
    noise: u64,
    detect: u64,
    extract_wall: u64,
    cluster: u64,
    cluster_cpu: u64,
    retrieval: u64,
    features: u64,
}

/// Borrowed view of the staged state a snapshot persists; produced by
/// [`Engine::snap_state`], consumed by [`crate::snapshot`].
pub(crate) struct EngineSnapState<'a> {
    pub(crate) stays: &'a StayPointSet,
    pub(crate) pool_state: &'a PoolState,
    pub(crate) retrieval: &'a RetrievalIndex,
    pub(crate) table: &'a SampleTable,
    pub(crate) trip_station: &'a HashMap<u32, StationId>,
    pub(crate) cum_raw_points: u64,
    pub(crate) cum_filtered_points: u64,
    pub(crate) model: Option<&'a LocMatcher>,
}

/// The incremental DLInfMA engine; see the module docs.
pub struct Engine {
    cfg: DlInfMaConfig,
    addresses: Vec<Address>,
    stays: StayPointSet,
    pool_state: PoolState,
    retrieval: RetrievalIndex,
    table: SampleTable,
    /// Departure station of every accepted trip; doubles as the seen-trip
    /// set for duplicate rejection and lets waybills referencing trips from
    /// earlier batches recover their station.
    trip_station: HashMap<u32, StationId>,
    /// Length of the per-trip visit table (max ingested trip id + 1).
    visits_len: usize,
    /// Live `candidate key -> trips visiting it`, rebuilt each ingest.
    trips_by_key: HashMap<usize, HashSet<TripId>>,
    // Materialized artifacts, refreshed at the end of every ingest.
    pool: CandidatePool,
    samples: OrdMap<AddressId, AddressSample>,
    model: Option<LocMatcher>,
    report: PipelineReport,
    ns: StageNs,
    cum_raw_points: u64,
    cum_filtered_points: u64,
    /// The shared work-stealing pool every parallel stage runs on, built
    /// once from `cfg.workers` and reused across ingests (and handed to
    /// `DlInfMa` for training and inference). Named `exec` because `pool`
    /// is the candidate pool throughout this crate.
    exec: Arc<Pool>,
    /// Per-day ingest health monitor (funnel deltas, throughput, anomaly
    /// flags); fed once per [`Engine::ingest`], served by
    /// [`Engine::health_report`].
    health: HealthMonitor,
}

impl Engine {
    /// An empty engine over a known address universe.
    ///
    /// The model's feature switches are forced into lockstep with the
    /// engine's feature switches, like the batch pipeline does.
    ///
    /// # Panics
    /// Panics if `cfg.clustering_distance_m` is not strictly positive and
    /// finite (the clustering contract, identical to the batch path).
    pub fn new(addresses: Vec<Address>, cfg: DlInfMaConfig) -> Self {
        let workers = cfg.workers;
        Self::with_executor(addresses, cfg, Arc::new(Pool::new(workers)))
    }

    /// An empty engine running its parallel stages on an existing pool —
    /// the shard constructor, letting every shard of a
    /// [`ShardedEngine`](crate::ShardedEngine) share one set of workers.
    ///
    /// # Panics
    /// Panics if `cfg.clustering_distance_m` is not strictly positive and
    /// finite (the clustering contract, identical to the batch path).
    pub fn with_executor(addresses: Vec<Address>, cfg: DlInfMaConfig, exec: Arc<Pool>) -> Self {
        let mut cfg = cfg;
        cfg.model.features = cfg.features;
        Self {
            addresses,
            stays: StayPointSet::new(cfg.clustering_distance_m),
            pool_state: PoolState::new(cfg.pool_method, cfg.clustering_distance_m),
            retrieval: RetrievalIndex::new(),
            table: SampleTable::new(),
            trip_station: HashMap::new(),
            visits_len: 0,
            trips_by_key: HashMap::new(),
            pool: CandidatePool::from_parts(Vec::new(), Vec::new()),
            samples: OrdMap::new(),
            model: None,
            report: PipelineReport::new(),
            ns: StageNs::default(),
            cum_raw_points: 0,
            cum_filtered_points: 0,
            exec,
            health: HealthMonitor::default(),
            cfg,
        }
    }

    /// The shared thread pool the engine's parallel stages run on.
    pub fn executor(&self) -> &Pool {
        &self.exec
    }

    /// Ingests one batch of trips and waybills, updating every staged
    /// artifact and re-materializing the pool and samples.
    pub fn ingest(&mut self, batch: &TripBatch) -> IngestReport {
        let _ingest_span = obs::trace_span(names::ENGINE_INGEST);
        let pool_before = self.exec.telemetry();
        let mut rep = IngestReport {
            day: batch.day,
            total_addresses: self.addresses.len() as u64,
            ..IngestReport::default()
        };

        // --- Stage 1: stay-point extraction, new trips only. -------------
        let accepted: Vec<&DeliveryTrip> = batch
            .trips
            .iter()
            .filter(|t| {
                let fresh = match self.trip_station.entry(t.id.0) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(t.station);
                        true
                    }
                    std::collections::hash_map::Entry::Occupied(_) => false,
                };
                if !fresh {
                    rep.rejected_trips += 1;
                }
                fresh
            })
            .collect();
        let owned_trips: Vec<DeliveryTrip>;
        let trips_slice: &[DeliveryTrip] = if rep.rejected_trips == 0 {
            &batch.trips
        } else {
            owned_trips = accepted.iter().map(|t| (*t).clone()).collect();
            &owned_trips
        };
        let t = obs::Stopwatch::start();
        let extract_span = obs::trace_span(names::ENGINE_EXTRACT);
        let (trip_stays, stats) =
            extract_batch_with_stats(trips_slice, &self.cfg.extraction, &self.exec);
        drop(extract_span);
        let extract_wall = t.elapsed_ns();
        obs::record_duration(stage::NOISE_FILTER, stats.noise_filter_ns);
        obs::record_duration(stage::STAY_POINTS, stats.detect_ns);
        self.ns.noise += stats.noise_filter_ns;
        self.ns.detect += stats.detect_ns;
        self.ns.extract_wall += extract_wall;
        self.cum_raw_points += stats.raw_points;
        self.cum_filtered_points += stats.filtered_points;
        rep.trips = accepted.len() as u64;
        rep.new_stays = stats.stay_points;
        // Wall clock and summed-per-worker CPU diverge at workers > 1; the
        // report carries both so throughput math stays honest.
        rep.extraction_ns = extract_wall;
        rep.extraction_cpu_ns = stats.noise_filter_ns + stats.detect_ns;

        let new_start = self.stays.len();
        for (trip, ts) in accepted.iter().zip(&trip_stays) {
            self.retrieval.note_trip(trip.station);
            self.visits_len = self.visits_len.max(trip.id.0 as usize + 1);
            for sp in &ts.stays {
                self.stays.push(StayRec {
                    trip: trip.id,
                    pos: sp.pos,
                    mid_time: sp.mid_time(),
                    duration_s: sp.duration(),
                    hour_bin: hour_bin(sp.mid_time()),
                    courier: trip.courier,
                    station: trip.station,
                });
            }
        }

        // --- Stage 2: incremental clustering of touched components. ------
        let t = obs::Stopwatch::start();
        let delta = {
            let _span = obs::span(stage::CLUSTERING);
            self.pool_state
                .update(&mut self.stays, new_start, &self.exec)
        };
        rep.clustering_ns = t.elapsed_ns();
        rep.clustering_cpu_ns = delta.cluster_stats.cpu_ns();
        self.ns.cluster += rep.clustering_ns;
        self.ns.cluster_cpu += rep.clustering_cpu_ns;
        rep.clusters_added = delta.added;
        rep.clusters_removed = delta.removed;

        // --- Waybills: evidence + the waybill side of the dirty set. -----
        let mut dirty: BTreeSet<AddressId> = BTreeSet::new();
        for w in &batch.waybills {
            let Some(&station) = self.trip_station.get(&w.trip.0) else {
                rep.rejected_waybills += 1;
                continue;
            };
            let Some(addr) = self.addresses.get(w.address.0 as usize) else {
                rep.rejected_waybills += 1;
                continue;
            };
            self.retrieval.add_waybill(
                w.address,
                addr.building,
                w.trip,
                w.t_recorded_delivery,
                station,
            );
            dirty.insert(w.address);
            rep.waybills += 1;
        }

        // --- Dirty set: waybill addresses ∪ changed-candidate referrers. -
        for a in self.table.addresses_referencing(&delta.changed_keys) {
            dirty.insert(a);
        }
        rep.dirty_addresses = dirty.len() as u64;
        obs::trace_counter(names::ENGINE_DIRTY_ADDRESSES, dirty.len() as f64);

        // --- Stage 3: retrieval, dirty addresses only. --------------------
        // One stopwatch per stage (not per address): the live visit index
        // is rebuilt once, then each dirty address re-retrieves.
        let t = obs::Stopwatch::start();
        self.trips_by_key.clear();
        for (i, rec) in self.stays.recs().iter().enumerate() {
            self.trips_by_key
                .entry(self.pool_state.key_of(i))
                .or_default()
                .insert(rec.trip);
        }
        let cand_hist = obs::enabled().then(|| {
            obs::histogram(
                names::RETRIEVAL_CANDIDATE_SET_SIZE,
                // lint: allow(L3, bucket edge in a 1-2-5 series of counts, not the 20 m stay radius)
                &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
            )
        });
        // Each dirty address retrieves independently against the read-only
        // stay/assignment state, so the scan fans out across the pool;
        // `par_map` keeps the results in `dirty`'s (sorted) order, and the
        // histogram is fed from the collected results to keep the obs
        // collector single-writer.
        //
        // Retrieval is scoped to one station per address, mirroring the
        // paper's per-station deployment: stations are ranked by distinct
        // evidence trips (descending, tie-break smallest id) and the first
        // station whose trips yield any candidate keys wins; when every
        // station comes up empty the top-ranked ("primary") station is kept
        // with an empty candidate set. Only the chosen station's trips
        // contribute keys, and its trip count becomes the trip-coverage
        // denominator — the invariant that makes the sample identical
        // whether this engine saw the whole fleet or only one station's
        // shard, and the in-engine twin of `ShardedEngine`'s cross-shard
        // fallback.
        let dirty_list: Vec<AddressId> = dirty.iter().copied().collect();
        let (retrieval, stays, pool_state, trip_station) = (
            &self.retrieval,
            &self.stays,
            &self.pool_state,
            &self.trip_station,
        );
        let retrieved: Vec<(AddressId, Vec<usize>, StationId, u32)> = self
            .exec
            .par_map(&dirty_list, |&a| {
                let _span = obs::trace_span(names::ENGINE_RETRIEVE_ADDRESS);
                let ev = retrieval.evidence(a)?;
                let mut per_station: OrdMap<StationId, u32> = OrdMap::new();
                for &(trip, _) in &ev.trips {
                    if let Some(&st) = trip_station.get(&trip.0) {
                        *per_station.entry(st).or_insert(0) += 1;
                    }
                }
                let mut ranked: Vec<(StationId, u32)> = per_station.into_iter().collect();
                ranked.sort_unstable_by_key(|&(s, c)| (Reverse(c), s));
                let mut chosen: Option<(Vec<usize>, StationId, u32)> = None;
                for &(station, count) in &ranked {
                    let mut keys: Vec<usize> = Vec::new();
                    for &(trip, bound) in &ev.trips {
                        if trip_station.get(&trip.0) != Some(&station) {
                            continue;
                        }
                        for &si in stays.stays_of_trip(trip) {
                            if stays.rec(si).mid_time <= bound {
                                keys.push(pool_state.key_of(si));
                            }
                        }
                    }
                    keys.sort_unstable();
                    keys.dedup();
                    if !keys.is_empty() {
                        chosen = Some((keys, station, count));
                        break;
                    }
                    if chosen.is_none() {
                        chosen = Some((keys, station, count));
                    }
                }
                let (keys, station, n_addr_trips) = chosen?;
                Some((a, keys, station, n_addr_trips))
            })
            .into_iter()
            .flatten()
            .collect();
        if let Some(h) = &cand_hist {
            for (_, keys, _, _) in &retrieved {
                h.observe(keys.len() as f64);
            }
        }
        rep.retrieval_ns = t.elapsed_ns();
        self.ns.retrieval += rep.retrieval_ns;
        obs::record_duration(stage::RETRIEVAL, rep.retrieval_ns);

        // --- Stage 4: raw feature counts, dirty addresses only. ----------
        // Counting reads only the retrieval index and the live visit index;
        // the table writes happen serially afterwards, in address order.
        let t = obs::Stopwatch::start();
        let (retrieval, addresses, trips_by_key) =
            (&self.retrieval, &self.addresses, &self.trips_by_key);
        let lc_address_level = self.cfg.features.lc_address_level;
        let counted: Vec<(AddressId, RawSample)> =
            self.exec
                .par_map(&retrieved, |(a, keys, station, n_addr_trips)| {
                    let _span = obs::trace_span(names::ENGINE_FEATURES_ADDRESS);
                    let (a, station, n_addr_trips) = (*a, *station, *n_addr_trips);
                    let empty: HashSet<TripId> = HashSet::new();
                    let addr_trips: HashSet<TripId> =
                        retrieval.address_trips(a).cloned().unwrap_or_default();
                    // Candidate trip sets are single-station (clustering
                    // never crosses stations), so intersecting with the
                    // address's full trip set or its primary-station subset
                    // yields the same counts — the full set is cheaper.
                    let exclude: &HashSet<TripId> = if lc_address_level {
                        retrieval.address_trips(a).unwrap_or(&empty)
                    } else {
                        let building = addresses[a.0 as usize].building;
                        retrieval
                            .building_station_trips(building, station)
                            .unwrap_or(&empty)
                    };
                    let mut tc_hits: Vec<u32> = Vec::with_capacity(keys.len());
                    let mut overlap_excl: Vec<u32> = Vec::with_capacity(keys.len());
                    for k in keys {
                        let cand_set = trips_by_key.get(k).unwrap_or(&empty);
                        tc_hits.push(
                            addr_trips.iter().filter(|t| cand_set.contains(t)).count() as u32
                        );
                        overlap_excl
                            .push(cand_set.iter().filter(|t| exclude.contains(t)).count() as u32);
                    }
                    (
                        a,
                        RawSample {
                            candidate_keys: keys.clone(),
                            tc_hits,
                            overlap_excl,
                            station,
                            n_addr_trips,
                        },
                    )
                });
        for (a, raw) in counted {
            self.table.replace(a, raw);
        }
        rep.features_ns = t.elapsed_ns();
        self.ns.features += rep.features_ns;
        obs::record_duration(stage::FEATURES, rep.features_ns);

        // --- Stage 5: materialize the batch artifacts from live state. ---
        let t = obs::Stopwatch::start();
        {
            let _span = obs::trace_span(names::ENGINE_MATERIALIZE);
            self.materialize();
        }
        rep.materialize_ns = t.elapsed_ns();
        self.ns.features += rep.materialize_ns;
        rep.pool_size = self.pool.len() as u64;
        obs::trace_counter(names::ENGINE_POOL_SIZE, rep.pool_size as f64);

        // Scheduler telemetry: the per-ingest delta rides on the ingest
        // report, the running totals on the pipeline report.
        let pool_after = self.exec.telemetry();
        rep.pool = Some(pool_after.minus(&pool_before));
        self.report.pool = Some(pool_after);

        self.refresh_report();
        self.health.observe(&rep, self.samples.len() as u64);
        rep
    }

    /// The per-day ingest health report (funnel deltas, throughput, anomaly
    /// flags) accumulated across every ingest so far.
    pub fn health_report(&self) -> HealthReport {
        self.health.report()
    }

    /// Rebuilds the materialized [`CandidatePool`] and [`AddressSample`]s
    /// from the staged state. Floating-point feature values are finalized
    /// here from the stored integer counts and live normalizers, which is
    /// what keeps clean addresses exact without recounting them.
    fn materialize(&mut self) {
        let mut snap = self.pool_state.snapshot();
        snap.sort_unstable_by_key(|(k, _, _)| *k);
        let key_to_id: OrdMap<usize, u32> = snap
            .iter()
            .enumerate()
            .map(|(i, (k, _, _))| (*k, i as u32))
            .collect();
        let candidates: Vec<LocationCandidate> = snap
            .into_iter()
            .enumerate()
            .map(|(i, (_, pos, profile))| LocationCandidate {
                id: CandidateId(i as u32),
                pos,
                profile,
            })
            .collect();
        let mut trip_visits: Vec<Vec<(CandidateId, f64)>> = vec![Vec::new(); self.visits_len];
        for (i, rec) in self.stays.recs().iter().enumerate() {
            if let Some(&id) = key_to_id.get(&self.pool_state.key_of(i)) {
                trip_visits[rec.trip.0 as usize].push((CandidateId(id), rec.mid_time));
            }
        }
        for visits in &mut trip_visits {
            visits.sort_by(|a, b| a.1.total_cmp(&b.1));
        }
        self.pool = CandidatePool::from_parts(candidates, trip_visits);

        // Every sample is a pure function of its own raw counts and the
        // shared read-only state, so the per-address finalization fans out
        // across the pool; each address's features are computed in one task,
        // so the floats are bitwise-identical at any worker count. All
        // normalizers are scoped to the sample's primary station, so they
        // are also identical at any *shard* count.
        let f = self.cfg.features;
        let entries: Vec<(AddressId, &RawSample)> =
            self.table.iter().map(|(&a, raw)| (a, raw)).collect();
        let (retrieval, addresses, trips_by_key, pool, key_to_id) = (
            &self.retrieval,
            &self.addresses,
            &self.trips_by_key,
            &self.pool,
            &key_to_id,
        );
        let built: Vec<(AddressId, AddressSample)> = self
            .exec
            .par_map(&entries, |&(a, raw)| {
                let addr = addresses.get(a.0 as usize)?;
                let n_addr_trips = raw.n_addr_trips as usize;
                let n_station_trips = retrieval.n_trips_in(raw.station);
                let exclude_len = if f.lc_address_level {
                    n_addr_trips
                } else {
                    retrieval
                        .building_station_trips(addr.building, raw.station)
                        .map_or(0, HashSet::len)
                };
                let mut ids: Vec<CandidateId> = Vec::with_capacity(raw.candidate_keys.len());
                let mut features: Vec<CandidateFeatures> =
                    Vec::with_capacity(raw.candidate_keys.len());
                for (j, &k) in raw.candidate_keys.iter().enumerate() {
                    let Some(&cid) = key_to_id.get(&k) else {
                        continue;
                    };
                    let cand = pool.candidate(CandidateId(cid));
                    let trips_c_len = trips_by_key.get(&k).map_or(0, HashSet::len);
                    let trip_coverage = if f.use_trip_coverage && n_addr_trips > 0 {
                        raw.tc_hits[j] as f64 / n_addr_trips as f64
                    } else {
                        0.0
                    };
                    let denom = n_station_trips.saturating_sub(exclude_len);
                    let location_commonality = if f.use_location_commonality && denom > 0 {
                        (trips_c_len - raw.overlap_excl[j] as usize) as f64 / denom as f64
                    } else {
                        0.0
                    };
                    let distance_m = if f.use_distance {
                        cand.pos.distance(&addr.geocode)
                    } else {
                        0.0
                    };
                    ids.push(CandidateId(cid));
                    features.push(CandidateFeatures {
                        trip_coverage,
                        location_commonality,
                        distance_m,
                        avg_duration_s: cand.profile.avg_duration_s,
                        n_couriers: cand.profile.n_couriers as f64,
                        n_stays: cand.profile.n_stays as f64,
                        time_distribution: cand.profile.time_distribution,
                    });
                }
                Some((
                    a,
                    AddressSample {
                        address: a,
                        station: raw.station,
                        candidates: ids,
                        features,
                        n_deliveries: n_addr_trips,
                        poi_category: addr.poi_category,
                        geocode: addr.geocode,
                        label: None,
                        truth_distances: None,
                    },
                ))
            })
            .into_iter()
            .flatten()
            .collect();
        self.samples.clear();
        self.samples.extend(built);
    }

    /// Refreshes the cumulative [`PipelineReport`] (stage durations and the
    /// funnel) from live totals, mirroring the batch pipeline's semantics.
    fn refresh_report(&mut self) {
        let candidates_retrieved: u64 = self
            .samples
            .values()
            .map(|s| s.candidates.len() as u64)
            .sum();
        let stays = self.stays.len() as u64;
        // The two extraction phases share one wall clock (they run fused per
        // trip across the pool), so the measured wall time is attributed to
        // each phase in proportion to its summed-CPU share, and the CPU sums
        // ride along so `--verbose` stays honest at workers > 1.
        let cpu_total = self.ns.noise + self.ns.detect;
        let noise_wall = if cpu_total == 0 {
            self.ns.extract_wall / 2
        } else {
            (self.ns.extract_wall as u128 * self.ns.noise as u128 / cpu_total as u128) as u64
        };
        let detect_wall = self.ns.extract_wall - noise_wall;
        self.report.push_stage_cpu(
            stage::NOISE_FILTER,
            noise_wall.max(1),
            Some(self.ns.noise),
            Some(self.cum_raw_points),
            Some(self.cum_filtered_points),
        );
        self.report.push_stage_cpu(
            stage::STAY_POINTS,
            detect_wall.max(1),
            Some(self.ns.detect),
            Some(self.cum_filtered_points),
            Some(stays),
        );
        // Clustering CPU is only measured by the hierarchical back-end's
        // merge instrumentation; grid mode reports wall time alone.
        let cluster_cpu = (self.ns.cluster_cpu > 0).then_some(self.ns.cluster_cpu);
        self.report.push_stage_cpu(
            stage::CLUSTERING,
            self.ns.cluster.max(1),
            cluster_cpu,
            Some(stays),
            Some(self.pool.len() as u64),
        );
        self.report.push_stage(
            stage::RETRIEVAL,
            self.ns.retrieval.max(1),
            Some(self.samples.len() as u64),
            Some(candidates_retrieved),
        );
        self.report.push_stage(
            stage::FEATURES,
            self.ns.features.max(1),
            Some(candidates_retrieved),
            Some(self.samples.len() as u64),
        );
        self.report.funnel.raw_points = self.cum_raw_points;
        self.report.funnel.filtered_points = self.cum_filtered_points;
        self.report.funnel.stay_points = stays;
        self.report.funnel.clusters = self.pool.len() as u64;
        self.report.funnel.candidates_retrieved = candidates_retrieved;
        self.report.funnel.addresses_sampled = self.samples.len() as u64;
    }

    /// The materialized candidate pool.
    pub fn pool(&self) -> &CandidatePool {
        &self.pool
    }

    /// The materialized sample of an address.
    pub fn sample(&self, addr: AddressId) -> Option<&AddressSample> {
        self.samples.get(&addr)
    }

    /// All materialized samples, ascending by address id.
    pub fn samples(&self) -> impl Iterator<Item = &AddressSample> {
        self.samples.values()
    }

    /// The engine's address universe.
    pub fn addresses(&self) -> &[Address] {
        &self.addresses
    }

    /// Total accepted trips across all ingests.
    pub fn n_trips(&self) -> usize {
        self.retrieval.n_trips()
    }

    /// Total extracted stay points across all ingests.
    pub fn n_stays(&self) -> usize {
        self.stays.len()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DlInfMaConfig {
        &self.cfg
    }

    /// The cumulative pipeline report across all ingests.
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    /// Installs an externally-trained model so [`Engine::infer`] can serve
    /// between ingests.
    pub fn set_model(&mut self, model: LocMatcher) {
        self.model = Some(model);
    }

    /// The installed model, if any.
    pub fn model(&self) -> Option<&LocMatcher> {
        self.model.as_ref()
    }

    /// Inferred delivery location of an address, or `None` when the address
    /// was never delivered, has no candidates, or no model is installed.
    pub fn infer(&self, addr: AddressId) -> Option<Point> {
        let _span = obs::span(stage::INFERENCE);
        let sample = self.samples.get(&addr)?;
        let model = self.model.as_ref()?;
        let idx = model.predict(sample)?;
        Some(self.pool.candidate(sample.candidates[idx]).pos)
    }

    /// Borrowed view of the staged state a snapshot persists; consumed by
    /// [`crate::snapshot`]. Deliberately excludes everything derived
    /// (materialized pool, samples, visit index) and everything
    /// observational (stage timings, health monitor, scheduler telemetry):
    /// snapshot bytes must be a pure function of the ingested data, and
    /// every excluded piece is either recomputable from what is here or
    /// wall-clock noise.
    pub(crate) fn snap_state(&self) -> EngineSnapState<'_> {
        EngineSnapState {
            stays: &self.stays,
            pool_state: &self.pool_state,
            retrieval: &self.retrieval,
            table: &self.table,
            trip_station: &self.trip_station,
            cum_raw_points: self.cum_raw_points,
            cum_filtered_points: self.cum_filtered_points,
            model: self.model.as_ref(),
        }
    }

    /// Reassembles an engine from decoded staged artifacts — the resume
    /// path of [`crate::snapshot`]. Derived state (the live visit index,
    /// the materialized pool and samples, the pipeline report) is rebuilt
    /// here exactly as an ingest would rebuild it; timing counters restart
    /// at zero because snapshots exclude observability state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_restored(
        addresses: Vec<Address>,
        cfg: DlInfMaConfig,
        exec: Arc<Pool>,
        stays: StayPointSet,
        pool_state: PoolState,
        retrieval: RetrievalIndex,
        table: SampleTable,
        trip_station: HashMap<u32, StationId>,
        cum_raw_points: u64,
        cum_filtered_points: u64,
        model: Option<LocMatcher>,
    ) -> Self {
        let mut cfg = cfg;
        cfg.model.features = cfg.features;
        let visits_len = trip_station
            .keys()
            .map(|&t| t as usize + 1)
            .max()
            .unwrap_or(0);
        let mut engine = Self {
            addresses,
            stays,
            pool_state,
            retrieval,
            table,
            trip_station,
            visits_len,
            trips_by_key: HashMap::new(),
            pool: CandidatePool::from_parts(Vec::new(), Vec::new()),
            samples: OrdMap::new(),
            model,
            report: PipelineReport::new(),
            ns: StageNs::default(),
            cum_raw_points,
            cum_filtered_points,
            exec,
            health: HealthMonitor::default(),
            cfg,
        };
        for (i, rec) in engine.stays.recs().iter().enumerate() {
            engine
                .trips_by_key
                .entry(engine.pool_state.key_of(i))
                .or_default()
                .insert(rec.trip);
        }
        engine.materialize();
        engine.refresh_report();
        engine
    }

    /// Decomposes the engine into the batch pipeline's parts
    /// (`DlInfMa::from_engine`'s back end).
    pub(crate) fn into_parts(
        self,
    ) -> (
        DlInfMaConfig,
        CandidatePool,
        OrdMap<AddressId, AddressSample>,
        Option<LocMatcher>,
        PipelineReport,
        Arc<Pool>,
    ) {
        (
            self.cfg,
            self.pool,
            self.samples,
            self.model,
            self.report,
            self.exec,
        )
    }
}
