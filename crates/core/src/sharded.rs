//! Fleet mode: one staged [`Engine`] per station shard, merged serving.
//!
//! The paper deploys DLInfMA *per delivery station* (Section VI): every
//! station runs its own pipeline over its own couriers' trajectories, and
//! the fleet's answers come from whichever station owns an address.
//! [`ShardedEngine`] reproduces that shape. Stations are assigned to
//! shards by `station_id % n_shards`, every day batch is partitioned with
//! [`dlinfma_synth::partition_by_station`] and fed to the shards in shard
//! order, and all shards run their parallel stages on one shared
//! work-stealing pool.
//!
//! # Determinism across shard counts
//!
//! The headline guarantee (pinned by `tests/sharded_parity.rs`): the merged
//! artifacts are **bit-identical at any shard count × any worker count**,
//! and a 1-shard fleet matches a plain [`Engine`] bit for bit. The argument
//! is compositional:
//!
//! * stay-point extraction is per-trip, and a shard's trips are a
//!   subsequence of the fleet's trip order, so each trip's stays are
//!   identical and same-station stays keep their relative order;
//! * clustering components never cross stations ([`crate::stages`]), so a
//!   shard re-clusters exactly the components a whole-fleet engine builds
//!   for its stations — same members in the same order, bitwise-same
//!   centroids and profiles;
//! * every per-address normalizer is scoped to the address's chosen
//!   station (station trip counts, building trip sets), so the sample an
//!   owning shard materializes equals the whole-fleet sample float for
//!   float;
//! * the merge rule below picks the same station's sample the whole-fleet
//!   engine's in-retrieval fallback picks.
//!
//! # Merge semantics (cross-shard fallback)
//!
//! An address's evidence may straddle stations — and therefore shards. Each
//! shard materializes a sample for the address from its *locally best*
//! station (most distinct evidence trips; falls back to its next station
//! when the best yields no candidates). [`ShardedEngine::merged_sample`]
//! then ranks the shards' samples by `(has candidates, evidence trips,
//! smallest station id)` and serves the top one. Because each shard's
//! sample is already the maximum of that key over the shard's own stations,
//! the fleet-level maximum equals the station a single whole-fleet engine
//! would choose — cross-shard fallback and in-engine station fallback are
//! the same rule applied at different granularities.
//!
//! One [`LocMatcher`] serves the whole fleet: the merged sample set is
//! shard-count-invariant, so the model trained on it is too.

use crate::engine::Engine;
use crate::features::AddressSample;
use crate::locmatcher::LocMatcher;
use crate::pipeline::DlInfMaConfig;
use dlinfma_detcol::OrdMap;
use dlinfma_geo::Point;
use dlinfma_obs::FleetIngestReport;
use dlinfma_pool::Pool;
use dlinfma_synth::{partition_by_station, Address, AddressId, Dataset, TripBatch, Waybill};
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A fleet of station-sharded engines behind one serving surface; see the
/// module docs for the partitioning and merge semantics.
pub struct ShardedEngine {
    shards: Vec<Engine>,
    /// The one work-stealing pool all shards' parallel stages run on.
    exec: Arc<Pool>,
    /// The fleet-level model ([`LocMatcher`] is not `Clone`; predictions
    /// are pure reads, so one instance serves every shard's samples).
    model: Option<LocMatcher>,
    days_ingested: u32,
    /// Day batches ingested per shard — the per-shard snapshot epochs.
    shard_days: Vec<u32>,
    /// Persistent trip → shard routing, so waybills referencing trips from
    /// earlier batches reach the shard that ingested the trip.
    trip_shard: HashMap<u32, usize>,
}

impl ShardedEngine {
    /// A fleet of `n_shards` empty engines over a shared address universe,
    /// all running on one pool of `cfg.workers` workers.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero, or if `cfg.clustering_distance_m`
    /// violates the clustering contract (same as [`Engine::new`]).
    pub fn new(addresses: Vec<Address>, cfg: DlInfMaConfig, n_shards: usize) -> Self {
        assert!(n_shards > 0, "n_shards must be at least 1");
        let exec = Arc::new(Pool::new(cfg.workers));
        let shards = (0..n_shards)
            .map(|_| Engine::with_executor(addresses.clone(), cfg, Arc::clone(&exec)))
            .collect();
        Self {
            shards,
            exec,
            model: None,
            days_ingested: 0,
            shard_days: vec![0; n_shards],
            trip_shard: HashMap::new(),
        }
    }

    /// Reassembles a fleet from restored shards — the resume path of
    /// [`crate::snapshot`]. `shards` must all share `exec` (the snapshot
    /// reader builds them that way) and `shard_days` must be parallel to
    /// them.
    pub(crate) fn from_restored(
        shards: Vec<Engine>,
        exec: Arc<Pool>,
        model: Option<LocMatcher>,
        days_ingested: u32,
        shard_days: Vec<u32>,
        trip_shard: HashMap<u32, usize>,
    ) -> Self {
        Self {
            shards,
            exec,
            model,
            days_ingested,
            shard_days,
            trip_shard,
        }
    }

    /// Snapshot view of the fleet-level routing state: per-shard day
    /// counts and the persistent trip → shard table.
    pub(crate) fn snap_state(&self) -> (&[u32], &HashMap<u32, usize>, Option<&LocMatcher>) {
        (&self.shard_days, &self.trip_shard, self.model.as_ref())
    }

    /// Number of station shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines, ascending by shard index.
    pub fn shards(&self) -> &[Engine] {
        &self.shards
    }

    /// One shard's engine.
    pub fn shard(&self, i: usize) -> &Engine {
        &self.shards[i]
    }

    /// The shared worker pool.
    pub fn executor(&self) -> &Pool {
        &self.exec
    }

    /// Day batches ingested by the fleet.
    pub fn days_ingested(&self) -> u32 {
        self.days_ingested
    }

    /// Day batches ingested per shard — the per-shard snapshot epochs.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.shard_days.iter().map(|&d| u64::from(d)).collect()
    }

    /// The configuration in effect (identical across shards).
    pub fn config(&self) -> &DlInfMaConfig {
        self.shards[0].config()
    }

    /// The shared address universe.
    pub fn addresses(&self) -> &[Address] {
        self.shards[0].addresses()
    }

    /// Total accepted trips across the fleet.
    pub fn n_trips(&self) -> usize {
        self.shards.iter().map(Engine::n_trips).sum()
    }

    /// Total extracted stay points across the fleet.
    pub fn n_stays(&self) -> usize {
        self.shards.iter().map(Engine::n_stays).sum()
    }

    /// Total candidates across the fleet's pools. Station-scoped clustering
    /// partitions the candidate set, so this equals a whole-fleet engine's
    /// pool size at any shard count.
    pub fn n_candidates(&self) -> usize {
        self.shards.iter().map(|e| e.pool().len()).sum()
    }

    /// Partitions one day batch by station, reroutes straggler waybills
    /// (trips ingested in earlier batches) to the shard that owns their
    /// trip, and ingests each shard's slice in shard order on the shared
    /// pool. Returns the per-shard reports.
    pub fn ingest(&mut self, batch: &TripBatch) -> FleetIngestReport {
        let n = self.shards.len();
        let mut parts = partition_by_station(batch, n);
        // The stateless partitioner sends waybills whose trip is not in the
        // batch to shard 0; reroute them from the persistent trip table so
        // cross-batch waybills land where their trip's evidence lives (an
        // unknown trip stays on shard 0 and is rejected there exactly once,
        // like a single engine would).
        if n > 1 {
            let in_batch: BTreeSet<u32> = batch.trips.iter().map(|t| t.id.0).collect();
            let mut strays: Vec<Waybill> = Vec::new();
            parts[0].waybills.retain(|w| {
                let stays_here = in_batch.contains(&w.trip.0);
                if !stays_here {
                    strays.push(w.clone());
                }
                stays_here
            });
            for w in strays {
                let s = self.trip_shard.get(&w.trip.0).copied().unwrap_or(0);
                parts[s].waybills.push(w);
            }
        }
        for t in &batch.trips {
            self.trip_shard.insert(t.id.0, t.station.0 as usize % n);
        }
        let mut rep = FleetIngestReport {
            day: batch.day,
            shards: Vec::with_capacity(n),
        };
        for (s, part) in parts.iter().enumerate() {
            let r = self.shards[s].ingest(part);
            self.shard_days[s] += 1;
            rep.shards.push((s as u32, r));
        }
        self.days_ingested += 1;
        rep
    }

    /// The fleet's answer for one address: `(owning shard, its sample)`.
    ///
    /// Shards' samples are ranked by `(has candidates, evidence trips,
    /// smallest station id)` — samples with candidates beat empty ones,
    /// then more evidence wins, ties go to the smaller station id. Station
    /// ids never repeat across shards, so the winner is unique. This is the
    /// cross-shard fallback: when the shard with the most evidence has no
    /// candidates for the address, a shard that does have candidates
    /// serves it instead.
    pub fn merged_sample(&self, addr: AddressId) -> Option<(usize, &AddressSample)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.sample(addr).map(|s| (i, s)))
            .max_by_key(|(_, s)| (!s.candidates.is_empty(), s.n_deliveries, Reverse(s.station)))
    }

    /// One owner sample per address across the whole fleet, ascending by
    /// address id. This set is shard-count-invariant (see module docs), so
    /// anything derived from it — notably the trained model — is too.
    pub fn merged_samples(&self) -> Vec<(usize, &AddressSample)> {
        let mut addrs: BTreeSet<AddressId> = BTreeSet::new();
        for e in &self.shards {
            for s in e.samples() {
                addrs.insert(s.address);
            }
        }
        addrs
            .into_iter()
            .filter_map(|a| self.merged_sample(a))
            .collect()
    }

    /// Labels the merged samples against the dataset's ground truth (each
    /// sample's label is its candidate nearest the true delivery location,
    /// skipping non-finite distances), trains a [`LocMatcher`] on the given
    /// train/validation address ids, and installs it as the fleet model.
    /// Returns the number of labelled samples.
    ///
    /// This mirrors the serve layer's single-engine training recipe, so a
    /// 1-shard fleet trains the bit-identical model a plain [`Engine`]
    /// setup would.
    pub fn train_with(
        &mut self,
        dataset: &Dataset,
        train: &[AddressId],
        val: &[AddressId],
    ) -> usize {
        let truths: OrdMap<AddressId, Point> = dataset
            .addresses
            .iter()
            .map(|a| (a.id, a.true_delivery_location))
            .collect();
        let mut samples: OrdMap<AddressId, AddressSample> = OrdMap::new();
        let mut labelled = 0usize;
        for (shard, s) in self.merged_samples() {
            let mut sample = s.clone();
            if let Some(truth) = truths.get(&sample.address) {
                let pool = self.shards[shard].pool();
                let distances: Vec<f64> = sample
                    .candidates
                    .iter()
                    .map(|c| pool.candidate(*c).pos.distance(truth))
                    .collect();
                sample.label = distances
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.is_finite())
                    .min_by(|(_, a), (_, b)| a.total_cmp(b))
                    .map(|(i, _)| i);
                sample.truth_distances = Some(distances);
                if sample.label.is_some() {
                    labelled += 1;
                }
            }
            samples.insert(sample.address, sample);
        }
        let collect = |ids: &[AddressId]| -> Vec<AddressSample> {
            ids.iter()
                .filter_map(|a| samples.get(a))
                .filter(|s| s.label.is_some())
                .cloned()
                .collect()
        };
        let train_samples = collect(train);
        let val_samples = collect(val);
        let mut model = LocMatcher::new(self.config().model);
        model.train_pooled(&train_samples, &val_samples, &self.exec);
        self.model = Some(model);
        labelled
    }

    /// Installs an externally-trained fleet model.
    pub fn set_model(&mut self, model: LocMatcher) {
        self.model = Some(model);
    }

    /// The fleet model, if any.
    pub fn model(&self) -> Option<&LocMatcher> {
        self.model.as_ref()
    }

    /// Inferred delivery location of an address through the merged index:
    /// the owning shard's sample scored by the fleet model, resolved
    /// against the owning shard's candidate pool. `None` when no shard has
    /// a sample with candidates or no model is installed.
    pub fn infer(&self, addr: AddressId) -> Option<Point> {
        let model = self.model.as_ref()?;
        let (shard, sample) = self.merged_sample(addr)?;
        let idx = model.predict(sample)?;
        Some(
            self.shards[shard]
                .pool()
                .candidate(sample.candidates[idx])
                .pos,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{generate_with, world_config, Preset, Scale};

    fn fast_cfg() -> DlInfMaConfig {
        let mut cfg = DlInfMaConfig::fast();
        cfg.workers = 2;
        cfg
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shards_panics() {
        let _ = ShardedEngine::new(Vec::new(), fast_cfg(), 0);
    }

    #[test]
    fn fleet_totals_match_a_single_engine() {
        let mut cfg = world_config(Preset::DowBJ, Scale::Tiny);
        cfg.sim.n_stations = 3;
        let (_, ds) = generate_with(&cfg, 21);

        let mut single = Engine::new(ds.addresses.clone(), fast_cfg());
        let mut fleet = ShardedEngine::new(ds.addresses.clone(), fast_cfg(), 2);
        for batch in dlinfma_synth::replay(&ds) {
            single.ingest(&batch);
            let rep = fleet.ingest(&batch);
            assert_eq!(rep.shards.len(), 2);
        }
        assert_eq!(fleet.n_trips(), single.n_trips());
        assert_eq!(fleet.n_stays(), single.n_stays());
        assert_eq!(fleet.n_candidates(), single.pool().len());
        assert_eq!(
            fleet.shard_epochs(),
            vec![u64::from(fleet.days_ingested()); 2]
        );
    }

    #[test]
    fn straggler_waybills_reach_their_trips_shard() {
        let mut cfg = world_config(Preset::DowBJ, Scale::Tiny);
        cfg.sim.n_stations = 3;
        let (_, ds) = generate_with(&cfg, 22);
        let batches: Vec<TripBatch> = dlinfma_synth::replay(&ds).collect();
        assert!(batches.len() >= 2);

        // Replay with every waybill delayed by one day: each batch carries
        // the previous day's waybills, so every one is a straggler.
        let mut fleet = ShardedEngine::new(ds.addresses.clone(), fast_cfg(), 2);
        let mut single = Engine::new(ds.addresses.clone(), fast_cfg());
        let mut pending: Vec<Waybill> = Vec::new();
        for b in &batches {
            let shifted = TripBatch {
                day: b.day,
                trips: b.trips.clone(),
                waybills: std::mem::replace(&mut pending, b.waybills.clone()),
                stations: b.stations.clone(),
            };
            let rep = fleet.ingest(&shifted);
            let srep = single.ingest(&shifted);
            let agg = rep.aggregate();
            // No waybill is lost or double-rejected relative to one engine.
            assert_eq!(agg.waybills, srep.waybills);
            assert_eq!(agg.rejected_waybills, srep.rejected_waybills);
        }
        assert!(fleet
            .merged_samples()
            .iter()
            .any(|(_, s)| s.n_deliveries > 0));
    }
}
