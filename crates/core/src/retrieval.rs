//! Location candidate retrieval (pipeline step III-C).
//!
//! For an address, the candidates are the union — over all trips that
//! delivered to it — of the candidates the trip visited *no later than* the
//! recorded delivery time of the address's waybill in that trip. The
//! recorded time is a temporal upper bound: a delayed confirmation can only
//! push the bound later, so the actual delivery location always remains in
//! the retrieved set (the key robustness property versus annotation-based
//! methods).

use crate::candidates::{CandidateId, CandidatePool};
use dlinfma_synth::{AddressId, Dataset, TripId};
use std::collections::HashMap;

/// Precomputed per-address delivery evidence: the trips that served it and
/// the recorded-time bound in each.
#[derive(Debug, Clone)]
pub struct AddressEvidence {
    /// The address.
    pub address: AddressId,
    /// `(trip, recorded delivery time bound)` — if several waybills for the
    /// address share a trip, the latest recorded time is the bound.
    pub trips: Vec<(TripId, f64)>,
}

/// Builds evidence for every address that appears in at least one waybill.
pub fn collect_evidence(dataset: &Dataset) -> Vec<AddressEvidence> {
    let mut per_addr: HashMap<AddressId, HashMap<TripId, f64>> = HashMap::new();
    for w in &dataset.waybills {
        let bound = per_addr
            .entry(w.address)
            .or_default()
            .entry(w.trip)
            .or_insert(f64::NEG_INFINITY);
        *bound = bound.max(w.t_recorded_delivery);
    }
    let mut out: Vec<AddressEvidence> = per_addr
        .into_iter()
        .map(|(address, trips)| {
            let mut trips: Vec<(TripId, f64)> = trips.into_iter().collect();
            trips.sort_by_key(|(t, _)| *t);
            AddressEvidence { address, trips }
        })
        .collect();
    out.sort_by_key(|e| e.address);
    out
}

/// Retrieves the candidate set of one address: the union over its trips of
/// candidates visited at or before the recorded-time bound.
///
/// Candidates visited by only *some* of the trips are kept (the paper keeps
/// them to tolerate GPS noise). The result is sorted by id and deduplicated.
pub fn retrieve_candidates(pool: &CandidatePool, evidence: &AddressEvidence) -> Vec<CandidateId> {
    let mut out: Vec<CandidateId> = Vec::new();
    for &(trip, bound) in &evidence.trips {
        for &(cand, t) in pool.visits(trip) {
            if t <= bound {
                out.push(cand);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::build_pool;
    use crate::staypoints::{extract_stay_points, ExtractionConfig};
    use dlinfma_synth::{generate, DelayConfig, Preset, Scale};

    fn world(
        seed: u64,
    ) -> (
        dlinfma_synth::City,
        Dataset,
        CandidatePool,
        Vec<AddressEvidence>,
    ) {
        let (city, ds) = generate(Preset::DowBJ, Scale::Tiny, seed);
        let stays = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
        let pool = build_pool(&ds, &stays, 40.0);
        let ev = collect_evidence(&ds);
        (city, ds, pool, ev)
    }

    #[test]
    fn evidence_covers_every_delivered_address_once() {
        let (_, ds, _, ev) = world(0);
        let mut delivered: Vec<u32> = ds.waybills.iter().map(|w| w.address.0).collect();
        delivered.sort_unstable();
        delivered.dedup();
        let got: Vec<u32> = ev.iter().map(|e| e.address.0).collect();
        assert_eq!(got, delivered);
    }

    #[test]
    fn bounds_are_the_latest_recorded_time_per_trip() {
        let (_, ds, _, ev) = world(1);
        for e in &ev {
            for &(trip, bound) in &e.trips {
                let max = ds
                    .waybills
                    .iter()
                    .filter(|w| w.address == e.address && w.trip == trip)
                    .map(|w| w.t_recorded_delivery)
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(bound, max);
            }
        }
    }

    #[test]
    fn retrieval_respects_temporal_upper_bound() {
        let (_, _, pool, ev) = world(2);
        for e in ev.iter().take(20) {
            let cands = retrieve_candidates(&pool, e);
            for &c in &cands {
                // Must be visited at or before the bound in at least one trip.
                let ok = e.trips.iter().any(|&(trip, bound)| {
                    pool.visits(trip)
                        .iter()
                        .any(|&(cc, t)| cc == c && t <= bound)
                });
                assert!(ok, "candidate {c:?} visited only after the bound");
            }
        }
    }

    #[test]
    fn retrieved_set_contains_a_candidate_near_truth_for_most_addresses() {
        let (city, _, pool, ev) = world(3);
        let mut hit = 0;
        for e in &ev {
            let gt = city.addresses[e.address.0 as usize].true_delivery_location;
            let cands = retrieve_candidates(&pool, e);
            if cands
                .iter()
                .any(|&c| pool.candidate(c).pos.distance(&gt) < 30.0)
            {
                hit += 1;
            }
        }
        assert!(
            hit * 10 >= ev.len() * 8,
            "{hit}/{} addresses retrievable",
            ev.len()
        );
    }

    #[test]
    fn heavier_delays_never_shrink_the_candidate_set() {
        // The recorded time only moves later under delays, so the retrieved
        // set can only grow — the property that makes the method robust.
        let (_, ds_base) = generate(Preset::DowBJ, Scale::Tiny, 4);
        let mut light = ds_base.clone();
        let mut heavy = ds_base.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        dlinfma_synth::inject_delays(&mut light, &DelayConfig::sweep(0.0), &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        dlinfma_synth::inject_delays(&mut heavy, &DelayConfig::sweep(1.0), &mut rng);

        let stays = extract_stay_points(&light, &ExtractionConfig::paper_defaults());
        let pool = build_pool(&light, &stays, 40.0);

        let ev_light = collect_evidence(&light);
        let ev_heavy = collect_evidence(&heavy);
        for (el, eh) in ev_light.iter().zip(&ev_heavy) {
            assert_eq!(el.address, eh.address);
            let cl = retrieve_candidates(&pool, el);
            let ch = retrieve_candidates(&pool, eh);
            for c in &cl {
                assert!(
                    ch.contains(c),
                    "delay removed candidate {c:?} from {:?}",
                    el.address
                );
            }
        }
    }

    #[test]
    fn empty_evidence_yields_empty_candidates() {
        let (_, _, pool, _) = world(5);
        let e = AddressEvidence {
            address: AddressId(0),
            trips: vec![],
        };
        assert!(retrieve_candidates(&pool, &e).is_empty());
    }
}
