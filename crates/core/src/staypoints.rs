//! Stay-point extraction over a whole dataset (pipeline step III-A).
//!
//! Applies the heuristic noise filter and then the Definition-4 detector to
//! every trip. Mirrors the deployed system's trajectory-level
//! parallelization (Section V-F): trips are processed on a crossbeam scope
//! across available cores.

use dlinfma_synth::{Dataset, TripId};
use dlinfma_traj::{
    detect_stay_points, filter_noise, NoiseFilterConfig, StayPoint, StayPointConfig,
};

/// Configuration of the extraction step; defaults follow the paper
/// (`D_max = 20 m`, `T_min = 30 s`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtractionConfig {
    /// GPS noise filter settings.
    pub noise: NoiseFilterConfig,
    /// Stay-point detector thresholds.
    pub stay: StayPointConfig,
}

impl ExtractionConfig {
    /// The paper's parameters.
    pub fn paper_defaults() -> Self {
        Self::default()
    }
}

/// Stay points of one trip, tagged with their trip.
#[derive(Debug, Clone)]
pub struct TripStays {
    /// The trip the stays belong to.
    pub trip: TripId,
    /// Detected stay points in chronological order.
    pub stays: Vec<StayPoint>,
}

/// Extracts stay points for every trip sequentially.
pub fn extract_stay_points(dataset: &Dataset, cfg: &ExtractionConfig) -> Vec<TripStays> {
    dataset
        .trips
        .iter()
        .map(|t| TripStays {
            trip: t.id,
            stays: detect_stay_points(&filter_noise(&t.trajectory, &cfg.noise), &cfg.stay),
        })
        .collect()
}

/// Extracts stay points for every trip in parallel across `n_workers`
/// threads (trip-level parallelism, as deployed).
pub fn extract_stay_points_parallel(
    dataset: &Dataset,
    cfg: &ExtractionConfig,
    n_workers: usize,
) -> Vec<TripStays> {
    let n_workers = n_workers.max(1);
    if n_workers == 1 || dataset.trips.len() < 2 {
        return extract_stay_points(dataset, cfg);
    }
    let mut out: Vec<Option<TripStays>> = Vec::new();
    out.resize_with(dataset.trips.len(), || None);
    let chunk = dataset.trips.len().div_ceil(n_workers);
    crossbeam::scope(|scope| {
        for (trips, slots) in dataset
            .trips
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
        {
            scope.spawn(move |_| {
                for (t, slot) in trips.iter().zip(slots.iter_mut()) {
                    *slot = Some(TripStays {
                        trip: t.id,
                        stays: detect_stay_points(
                            &filter_noise(&t.trajectory, &cfg.noise),
                            &cfg.stay,
                        ),
                    });
                }
            });
        }
    })
    .expect("stay-point workers do not panic");
    out.into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{generate, Preset, Scale};

    #[test]
    fn sequential_and_parallel_agree() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 0);
        let cfg = ExtractionConfig::paper_defaults();
        let seq = extract_stay_points(&ds, &cfg);
        let par = extract_stay_points_parallel(&ds, &cfg, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.trip, b.trip);
            assert_eq!(a.stays, b.stays);
        }
    }

    #[test]
    fn every_trip_is_covered_in_order() {
        let (_, ds) = generate(Preset::SubBJ, Scale::Tiny, 1);
        let cfg = ExtractionConfig::paper_defaults();
        let out = extract_stay_points(&ds, &cfg);
        assert_eq!(out.len(), ds.trips.len());
        for (i, ts) in out.iter().enumerate() {
            assert_eq!(ts.trip.0 as usize, i);
        }
    }

    #[test]
    fn trips_have_plausible_stay_counts() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 2);
        let out = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
        let mean =
            out.iter().map(|t| t.stays.len()).sum::<usize>() as f64 / out.len() as f64;
        // Trips deliver 10..=18 parcels plus occasional extra stops.
        assert!((8.0..30.0).contains(&mean), "mean stays/trip {mean}");
    }
}
