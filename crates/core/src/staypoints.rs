//! Stay-point extraction over a whole dataset (pipeline step III-A).
//!
//! Applies the heuristic noise filter and then the Definition-4 detector to
//! every trip. Mirrors the deployed system's trajectory-level
//! parallelization (Section V-F): trips are processed on the shared
//! [`dlinfma_pool::Pool`] across available cores.

use dlinfma_obs as obs;
use dlinfma_pool::Pool;
use dlinfma_synth::{Dataset, TripId};
use dlinfma_traj::{
    detect_stay_points, filter_noise, NoiseFilterConfig, StayPoint, StayPointConfig,
};

/// Configuration of the extraction step; defaults follow the paper
/// (`D_max = 20 m`, `T_min = 30 s`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtractionConfig {
    /// GPS noise filter settings.
    pub noise: NoiseFilterConfig,
    /// Stay-point detector thresholds.
    pub stay: StayPointConfig,
}

impl ExtractionConfig {
    /// The paper's parameters.
    pub fn paper_defaults() -> Self {
        Self::default()
    }
}

/// Stay points of one trip, tagged with their trip.
#[derive(Debug, Clone)]
pub struct TripStays {
    /// The trip the stays belong to.
    pub trip: TripId,
    /// Detected stay points in chronological order.
    pub stays: Vec<StayPoint>,
}

/// Funnel counts and accumulated per-phase time for one extraction run.
/// Feeds the `noise-filter` / `stay-point-extraction` stages of the
/// pipeline report; both phases run fused per trip, so their times are
/// accumulated here rather than measured as contiguous regions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractionStats {
    /// GPS fixes before noise filtering.
    pub raw_points: u64,
    /// GPS fixes surviving the filter.
    pub filtered_points: u64,
    /// Stay points detected.
    pub stay_points: u64,
    /// Accumulated noise-filter time, nanoseconds.
    pub noise_filter_ns: u64,
    /// Accumulated stay-point-detection time, nanoseconds.
    pub detect_ns: u64,
}

impl ExtractionStats {
    fn merge(&mut self, other: &ExtractionStats) {
        self.raw_points += other.raw_points;
        self.filtered_points += other.filtered_points;
        self.stay_points += other.stay_points;
        self.noise_filter_ns += other.noise_filter_ns;
        self.detect_ns += other.detect_ns;
    }
}

fn extract_trip(
    t: &dlinfma_synth::DeliveryTrip,
    cfg: &ExtractionConfig,
    stats: &mut ExtractionStats,
) -> TripStays {
    let watch = obs::Stopwatch::start();
    let filtered = filter_noise(&t.trajectory, &cfg.noise);
    let filter_ns = watch.elapsed_ns();
    let watch = obs::Stopwatch::start();
    let stays = detect_stay_points(&filtered, &cfg.stay);
    stats.raw_points += t.trajectory.len() as u64;
    stats.filtered_points += filtered.len() as u64;
    stats.stay_points += stays.len() as u64;
    stats.noise_filter_ns += filter_ns;
    stats.detect_ns += watch.elapsed_ns();
    TripStays { trip: t.id, stays }
}

/// Extracts stay points for every trip sequentially.
pub fn extract_stay_points(dataset: &Dataset, cfg: &ExtractionConfig) -> Vec<TripStays> {
    extract_stay_points_with_stats(dataset, cfg).0
}

/// [`extract_stay_points`] plus funnel counts and per-phase timings.
pub fn extract_stay_points_with_stats(
    dataset: &Dataset,
    cfg: &ExtractionConfig,
) -> (Vec<TripStays>, ExtractionStats) {
    let mut stats = ExtractionStats::default();
    let out = dataset
        .trips
        .iter()
        .map(|t| extract_trip(t, cfg, &mut stats))
        .collect();
    (out, stats)
}

/// Extracts stay points for every trip on the shared pool (trip-level
/// parallelism, as deployed).
pub fn extract_stay_points_parallel(
    dataset: &Dataset,
    cfg: &ExtractionConfig,
    pool: &Pool,
) -> Vec<TripStays> {
    extract_stay_points_parallel_with_stats(dataset, cfg, pool).0
}

/// [`extract_stay_points_parallel`] plus funnel counts and per-phase
/// timings. Phase times in [`ExtractionStats`] are summed across workers —
/// they measure CPU work, not wall clock, when the pool has more than one
/// thread; callers that report durations should pair them with their own
/// wall-clock measurement of the whole call (the engine stores both in its
/// stage report).
pub fn extract_stay_points_parallel_with_stats(
    dataset: &Dataset,
    cfg: &ExtractionConfig,
    pool: &Pool,
) -> (Vec<TripStays>, ExtractionStats) {
    extract_batch_with_stats(&dataset.trips, cfg, pool)
}

/// Extracts stay points for an arbitrary slice of trips (one streamed
/// [`TripBatch`](dlinfma_synth::TripBatch)'s worth) on the shared pool.
/// Per-trip extraction is independent, so batching never changes the
/// detected stays — the property the incremental engine's batch/streaming
/// parity rests on.
pub fn extract_batch_with_stats(
    trips: &[dlinfma_synth::DeliveryTrip],
    cfg: &ExtractionConfig,
    pool: &Pool,
) -> (Vec<TripStays>, ExtractionStats) {
    if pool.threads() == 1 || trips.len() < 2 {
        let mut stats = ExtractionStats::default();
        let out = trips
            .iter()
            .map(|t| extract_trip(t, cfg, &mut stats))
            .collect();
        return (out, stats);
    }
    let chunk = trips.len().div_ceil(pool.threads());
    let per_chunk = pool.par_chunks(trips, chunk, |_, trips| {
        let mut stats = ExtractionStats::default();
        let out: Vec<TripStays> = trips
            .iter()
            .map(|t| extract_trip(t, cfg, &mut stats))
            .collect();
        (out, stats)
    });
    let mut stats = ExtractionStats::default();
    let mut out = Vec::with_capacity(trips.len());
    for (chunk_out, chunk_stats) in per_chunk {
        out.extend(chunk_out);
        stats.merge(&chunk_stats);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlinfma_synth::{generate, Preset, Scale};
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// One shared Tiny world: dataset generation dominates a proptest case,
    /// so every case reuses it and varies only the thresholds.
    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| generate(Preset::DowBJ, Scale::Tiny, 3).1)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn stays_respect_d_max_and_t_min(
            d_max in 5.0..40.0f64,
            t_min in 10.0..120.0f64,
        ) {
            let ds = dataset();
            let cfg = ExtractionConfig {
                stay: dlinfma_traj::StayPointConfig {
                    d_max_m: d_max,
                    t_min_s: t_min,
                },
                ..ExtractionConfig::default()
            };
            let out = extract_stay_points(ds, &cfg);
            prop_assert_eq!(out.len(), ds.trips.len());
            for ts in &out {
                for s in &ts.stays {
                    // Definition 4: a stay spans at least T_min and needs
                    // at least two fixes to span any time at all.
                    prop_assert!(s.duration() >= t_min);
                    prop_assert!(s.n_points >= 2);
                }
                // Chronological and disjoint within a trip.
                for w in ts.stays.windows(2) {
                    prop_assert!(w[0].t_end <= w[1].t_start);
                }
            }
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 0);
        let cfg = ExtractionConfig::paper_defaults();
        let seq = extract_stay_points(&ds, &cfg);
        let par = extract_stay_points_parallel(&ds, &cfg, &Pool::new(4));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.trip, b.trip);
            assert_eq!(a.stays, b.stays);
        }
    }

    #[test]
    fn every_trip_is_covered_in_order() {
        let (_, ds) = generate(Preset::SubBJ, Scale::Tiny, 1);
        let cfg = ExtractionConfig::paper_defaults();
        let out = extract_stay_points(&ds, &cfg);
        assert_eq!(out.len(), ds.trips.len());
        for (i, ts) in out.iter().enumerate() {
            assert_eq!(ts.trip.0 as usize, i);
        }
    }

    #[test]
    fn trips_have_plausible_stay_counts() {
        let (_, ds) = generate(Preset::DowBJ, Scale::Tiny, 2);
        let out = extract_stay_points(&ds, &ExtractionConfig::paper_defaults());
        let mean = out.iter().map(|t| t.stays.len()).sum::<usize>() as f64 / out.len() as f64;
        // Trips deliver 10..=18 parcels plus occasional extra stops.
        assert!((8.0..30.0).contains(&mean), "mean stays/trip {mean}");
    }
}
