//! LocMatcher: the attention-based address-location matching model
//! (Section IV-B, Figure 8).
//!
//! For each address, every retrieved candidate's time distribution passes
//! through a dense layer with `r` units; the result is concatenated with the
//! matching and remaining profile features and projected to a `z`-dimensional
//! representation. A transformer encoder (`N` layers, multi-head
//! self-attention, position-wise feed-forward, residual + layer norm) models
//! correlations *among all candidates jointly* — the paper's key departure
//! from per-candidate classification and pairwise ranking. Finally an
//! additive attention (Equation 3) scores each candidate against an address
//! context vector (POI-category embedding + number of deliveries), and a
//! softmax (Equation 4) yields the selection distribution, trained with
//! cross-entropy against the candidate nearest the ground-truth location.

use crate::features::{AddressSample, CandidateFeatures, FeatureConfig};
use dlinfma_nn::layers::{Activation, Dense, Embedding, TransformerEncoder};
use dlinfma_nn::{Adam, Graph, ParamId, ParamStore, StepDecay, Tensor, Var};
use dlinfma_pool::Pool;
use dlinfma_synth::N_POI_CATEGORIES;
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

/// LocMatcher hyperparameters. `paper_defaults` reproduces Section V-B's
/// setting exactly; `fast` trades a few points of fidelity for much shorter
/// training, which the experiment drivers use at synthetic-data scale.
#[derive(Debug, Clone, Copy)]
pub struct LocMatcherConfig {
    /// Dense units for the time-distribution embedding (paper: 3).
    pub r_time: usize,
    /// Candidate representation width (paper: 8).
    pub z: usize,
    /// Attention scorer width in Equation 3 (paper: 32).
    pub p: usize,
    /// Transformer encoder layers (paper: 3).
    pub n_layers: usize,
    /// Attention heads per layer (paper: 2).
    pub heads: usize,
    /// Feed-forward sublayer width (paper: 32).
    pub ff: usize,
    /// Dropout rate (paper: 0.1).
    pub dropout: f32,
    /// POI category embedding dimension (paper: 3).
    pub poi_embed_dim: usize,
    /// Include the `U c` address-context term of Equation 3; switching it
    /// off is the DLInfMA-nA ablation.
    pub use_address_context: bool,
    /// Which candidate features are fed in (ablations).
    pub features: FeatureConfig,
    /// Adam base learning rate (paper: 1e-4).
    pub lr: f32,
    /// Mini-batch size (paper: 16).
    pub batch_size: usize,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Learning-rate schedule (paper: halve every 5 epochs).
    pub lr_decay: StepDecay,
    /// Candidate-subset augmentation: at train time each *negative*
    /// candidate is kept with this probability (resampled every epoch), so
    /// one address yields many distinct candidate sets. Candidates are
    /// exchangeable, making this a label-preserving augmentation; `1.0`
    /// disables it (the paper's setting — its 20-month datasets do not need
    /// augmentation, a few simulated weeks do).
    pub candidate_keep_prob: f64,
    /// Spatially-soft training targets: `Some(tau)` replaces the one-hot
    /// label with `softmax(-d_k / tau)` over the candidates' distances to
    /// the ground truth, so near-misses are not penalized like gross errors.
    /// `None` is the paper's one-hot cross-entropy; the synthetic-scale
    /// experiments enable it (see EXPERIMENTS.md).
    pub soft_label_tau_m: Option<f64>,
    /// RNG seed for initialization, shuffling and dropout.
    pub seed: u64,
}

impl LocMatcherConfig {
    /// The paper's exact hyperparameters.
    pub fn paper_defaults() -> Self {
        Self {
            r_time: 3,
            z: 8,
            p: 32,
            n_layers: 3,
            heads: 2,
            ff: 32,
            dropout: 0.1,
            poi_embed_dim: 3,
            use_address_context: true,
            features: FeatureConfig::default(),
            lr: 1e-4,
            batch_size: 16,
            max_epochs: 100,
            patience: 5,
            lr_decay: StepDecay::paper_defaults(),
            candidate_keep_prob: 1.0,
            soft_label_tau_m: None,
            seed: 0,
        }
    }

    /// The paper's architecture re-tuned for synthetic-scale data: the
    /// candidate representation is widened to 16 (the 20-month JD datasets
    /// support z = 8; a few simulated weeks need the extra width), with a
    /// higher learning rate and longer patience. Used by the experiment
    /// drivers; see EXPERIMENTS.md.
    pub fn fast() -> Self {
        Self {
            z: 16,
            lr: 3e-3,
            max_epochs: 60,
            patience: 10,
            ..Self::paper_defaults()
        }
    }

    fn input_dim(&self) -> usize {
        let scalars = CandidateFeatures::scalars_len(&self.features);
        if self.features.use_profile {
            scalars + self.r_time
        } else {
            scalars
        }
    }

    fn context_dim(&self) -> usize {
        self.poi_embed_dim + 1
    }
}

/// Spatially-soft targets: `softmax(-d_k / tau)` over candidate distances
/// to the ground truth.
fn soft_targets(distances: &[f64], tau: f64) -> Vec<f32> {
    let max_neg = distances.iter().fold(f64::MIN, |m, &d| m.max(-d / tau));
    let exps: Vec<f64> = distances
        .iter()
        .map(|&d| (-d / tau - max_neg).exp())
        .collect();
    let denom: f64 = exps.iter().sum();
    exps.into_iter().map(|e| (e / denom) as f32).collect()
}

/// Candidate-subset augmentation: keeps the label candidate and each
/// negative with probability `keep_prob`; returns the reduced sample and
/// the label's new index. `keep_prob >= 1` returns the sample unchanged.
fn augment(sample: &AddressSample, keep_prob: f64, rng: &mut StdRng) -> (AddressSample, usize) {
    // lint: allow(L2, train() is only handed labelled samples by construction)
    let target = sample.label.expect("training samples are labelled");
    if keep_prob >= 1.0 || sample.candidates.len() <= 2 {
        return (sample.clone(), target);
    }
    let mut out = sample.clone();
    out.candidates.clear();
    out.features.clear();
    let mut kept_distances = Vec::new();
    let mut new_target = 0;
    for (i, (c, f)) in sample.candidates.iter().zip(&sample.features).enumerate() {
        if i == target {
            new_target = out.candidates.len();
        } else if !rng.gen_bool(keep_prob) {
            continue;
        }
        out.candidates.push(*c);
        out.features.push(f.clone());
        if let Some(d) = &sample.truth_distances {
            kept_distances.push(d[i]);
        }
    }
    out.truth_distances = sample.truth_distances.as_ref().map(|_| kept_distances);
    out.label = Some(new_target);
    (out, new_target)
}

/// Training statistics returned by [`LocMatcher::train`].
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epochs actually run (≤ `max_epochs`).
    pub epochs: usize,
    /// Best validation loss reached.
    pub best_val_loss: f32,
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
    /// Validation loss per epoch, parallel to `train_losses`.
    pub val_losses: Vec<f32>,
}

/// The fitted model; see the module docs for the architecture.
pub struct LocMatcher {
    cfg: LocMatcherConfig,
    store: ParamStore,
    time_dense: Option<Dense>,
    input_dense: Dense,
    encoder: TransformerEncoder,
    poi_embed: Embedding,
    w: ParamId,
    u: ParamId,
    b: ParamId,
    v: ParamId,
}

impl LocMatcher {
    /// Initializes an untrained model.
    pub fn new(cfg: LocMatcherConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let time_dense = cfg.features.use_profile.then(|| {
            Dense::new(
                &mut store,
                "time_dense",
                crate::candidates::TIME_BINS,
                cfg.r_time,
                Activation::Relu,
                &mut rng,
            )
        });
        let input_dense = Dense::new(
            &mut store,
            "input_dense",
            cfg.input_dim(),
            cfg.z,
            Activation::Relu,
            &mut rng,
        );
        let encoder = TransformerEncoder::new(
            &mut store,
            "encoder",
            cfg.n_layers,
            cfg.z,
            cfg.heads,
            cfg.ff,
            cfg.dropout,
            &mut rng,
        );
        let poi_embed = Embedding::new(
            &mut store,
            "poi_embed",
            N_POI_CATEGORIES,
            cfg.poi_embed_dim,
            &mut rng,
        );
        let w = store.register("score.w", Tensor::xavier(cfg.z, cfg.p, &mut rng));
        let u = store.register(
            "score.u",
            Tensor::xavier(cfg.context_dim(), cfg.p, &mut rng),
        );
        let b = store.register_zeros("score.b", vec![cfg.p]);
        let v = store.register("score.v", Tensor::xavier(cfg.p, 1, &mut rng));
        Self {
            cfg,
            store,
            time_dense,
            input_dense,
            encoder,
            poi_embed,
            w,
            u,
            b,
            v,
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &LocMatcherConfig {
        &self.cfg
    }

    /// Number of scalar weights in the model.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Builds the forward graph for one sample; returns the `[n]` logits.
    fn forward(
        &self,
        g: &mut Graph,
        sample: &AddressSample,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let n = sample.candidates.len();
        assert!(n > 0, "forward() needs at least one candidate");
        let fcfg = &self.cfg.features;

        // Per-candidate inputs.
        let scalars_flat: Vec<f32> = sample
            .features
            .iter()
            .flat_map(|f| f.scalars(fcfg))
            .collect();
        let scalars_dim = CandidateFeatures::scalars_len(fcfg);
        let scalars = g.constant(Tensor::new(vec![n, scalars_dim], scalars_flat));

        let inputs = if let Some(td) = &self.time_dense {
            let time_flat: Vec<f32> = sample
                .features
                .iter()
                .flat_map(|f| f.time_distribution.iter().map(|&x| x as f32))
                .collect();
            let time = g.constant(Tensor::new(
                vec![n, crate::candidates::TIME_BINS],
                time_flat,
            ));
            let time_emb = td.forward(g, &self.store, time);
            g.concat_cols(&[scalars, time_emb])
        } else {
            scalars
        };

        let x = self.input_dense.forward(g, &self.store, inputs);
        let z = self.encoder.forward(g, &self.store, x, training, rng);

        // Attention scoring (Equation 3): s = v^T tanh(Z W + U c + b).
        let w = g.param(self.w, self.store.value(self.w).clone());
        let b = g.param(self.b, self.store.value(self.b).clone());
        let v = g.param(self.v, self.store.value(self.v).clone());
        let zw = g.matmul(z, w);
        let pre = if self.cfg.use_address_context {
            let u = g.param(self.u, self.store.value(self.u).clone());
            let poi = self
                .poi_embed
                .forward(g, &self.store, sample.poi_category as usize);
            let nd = g.constant(Tensor::vector(&[(sample.n_deliveries as f32).ln_1p()]));
            let ctx = g.concat1d(&[poi, nd]);
            let ctx_row = g.reshape(ctx, vec![1, self.cfg.context_dim()]);
            let uc = g.matmul(ctx_row, u);
            let uc_flat = g.reshape(uc, vec![self.cfg.p]);
            let zw_uc = g.add_bias_rows(zw, uc_flat);
            g.add_bias_rows(zw_uc, b)
        } else {
            g.add_bias_rows(zw, b)
        };
        let t = g.tanh(pre);
        let s = g.matmul(t, v);
        g.reshape(s, vec![n])
    }

    /// Trains with Adam + step decay and early stopping on validation loss,
    /// restoring the best-epoch weights. Samples without a label or without
    /// candidates are skipped.
    pub fn train(&mut self, train: &[AddressSample], val: &[AddressSample]) -> TrainReport {
        self.train_with_progress(train, val, &mut |_| {})
    }

    /// [`LocMatcher::train`] invoking `progress` after every epoch, so
    /// long-running training can surface live loss curves. Runs on an
    /// inline (single-worker) pool; see
    /// [`LocMatcher::train_pooled_with_progress`] for the parallel path.
    pub fn train_with_progress(
        &mut self,
        train: &[AddressSample],
        val: &[AddressSample],
        progress: &mut dyn FnMut(dlinfma_obs::EpochProgress),
    ) -> TrainReport {
        self.train_pooled_with_progress(train, val, &Pool::sequential(), progress)
    }

    /// [`LocMatcher::train`] running the forward/backward passes of each
    /// mini-batch data-parallel on `pool`.
    pub fn train_pooled(
        &mut self,
        train: &[AddressSample],
        val: &[AddressSample],
        pool: &Pool,
    ) -> TrainReport {
        self.train_pooled_with_progress(train, val, pool, &mut |_| {})
    }

    /// The full training loop: Adam + step decay, early stopping, pooled
    /// mini-batches. Training is bit-for-bit reproducible at any worker
    /// count: each sample draws a private RNG seed *sequentially* from the
    /// epoch RNG before the batch fans out (so augmentation and dropout
    /// never depend on scheduling), and losses and gradients are
    /// accumulated on the caller in batch order, giving the same float
    /// additions as a serial run. Emits a `training` span when the global
    /// collector is enabled.
    pub fn train_pooled_with_progress(
        &mut self,
        train: &[AddressSample],
        val: &[AddressSample],
        pool: &Pool,
        progress: &mut dyn FnMut(dlinfma_obs::EpochProgress),
    ) -> TrainReport {
        let _span = dlinfma_obs::span(dlinfma_obs::stage::TRAINING);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let usable: Vec<&AddressSample> = train
            .iter()
            .filter(|s| s.label.is_some() && !s.candidates.is_empty())
            .collect();
        let mut adam = Adam::new(self.cfg.lr);
        let mut best_val = f32::INFINITY;
        let mut best_snapshot = self.store.snapshot();
        let mut since_best = 0usize;
        let mut train_losses = Vec::new();
        let mut val_losses = Vec::new();
        let mut epochs = 0;

        for epoch in 0..self.cfg.max_epochs {
            epochs = epoch + 1;
            let mut order: Vec<usize> = (0..usable.len()).collect();
            order.shuffle(&mut rng);
            let lr_scale = self.cfg.lr_decay.scale_at(epoch);
            let mut epoch_loss = 0.0f32;
            let mut n_samples = 0usize;
            for batch in order.chunks(self.cfg.batch_size) {
                self.store.zero_grads();
                let seeded: Vec<(usize, u64)> =
                    batch.iter().map(|&i| (i, rng.gen::<u64>())).collect();
                let this = &*self;
                let usable = &usable;
                let results: Vec<(f32, Vec<(ParamId, Tensor)>)> =
                    pool.par_map(&seeded, |&(i, seed)| {
                        let mut srng = StdRng::seed_from_u64(seed);
                        let (sample, target) =
                            augment(usable[i], this.cfg.candidate_keep_prob, &mut srng);
                        let sample = &sample;
                        let mut g = Graph::new();
                        let logits = this.forward(&mut g, sample, true, &mut srng);
                        let loss = match (this.cfg.soft_label_tau_m, &sample.truth_distances) {
                            (Some(tau), Some(d)) => {
                                let q = soft_targets(d, tau);
                                g.softmax_cross_entropy_soft(logits, &q)
                            }
                            _ => g.softmax_cross_entropy_1d(logits, target),
                        };
                        let loss_val = g.value(loss).item();
                        let grads = g.backward(loss);
                        (loss_val, g.take_param_grads(grads))
                    });
                for (loss_val, grads) in results {
                    epoch_loss += loss_val;
                    n_samples += 1;
                    for (pid, grad) in grads {
                        self.store.accumulate_grad(pid, &grad);
                    }
                }
                adam.step(&mut self.store, batch.len(), lr_scale);
            }
            let train_loss = epoch_loss / n_samples.max(1) as f32;
            train_losses.push(train_loss);

            let val_loss = self.mean_loss_pooled(val, pool);
            val_losses.push(val_loss);
            let improved = val_loss < best_val - 1e-5;
            progress(dlinfma_obs::EpochProgress {
                epoch,
                train_loss: train_loss as f64,
                val_loss: val_loss as f64,
                improved,
            });
            if improved {
                best_val = val_loss;
                best_snapshot = self.store.snapshot();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= self.cfg.patience {
                    break;
                }
            }
        }
        self.store.restore(&best_snapshot);
        TrainReport {
            epochs,
            best_val_loss: best_val,
            train_losses,
            val_losses,
        }
    }

    /// Grid-search training, mirroring the paper's "grid search to find the
    /// best hyperparameters for each method": trains one model per
    /// `(learning rate, seed)` combination and keeps the one with the lowest
    /// mean validation error (mean distance from the selected candidate to
    /// the ground truth over labelled validation samples).
    pub fn fit_best(
        grid: &[LocMatcherConfig],
        train: &[AddressSample],
        val: &[AddressSample],
    ) -> LocMatcher {
        Self::fit_best_pooled(grid, train, val, &Pool::sequential())
    }

    /// [`LocMatcher::fit_best`] training each grid point data-parallel on
    /// `pool`. The grid itself is walked serially (each model's training is
    /// already pooled), so the selected model is independent of worker
    /// count.
    pub fn fit_best_pooled(
        grid: &[LocMatcherConfig],
        train: &[AddressSample],
        val: &[AddressSample],
        pool: &Pool,
    ) -> LocMatcher {
        assert!(!grid.is_empty(), "grid must be non-empty");
        let mut best: Option<(f64, LocMatcher)> = None;
        for &cfg in grid {
            let mut model = LocMatcher::new(cfg);
            model.train_pooled(train, val, pool);
            let score = model.mean_val_error(val);
            if best.as_ref().is_none_or(|(b, _)| score < *b) {
                best = Some((score, model));
            }
        }
        // lint: allow(L2, the assert above guarantees at least one iteration)
        best.expect("grid is non-empty").1
    }

    /// The small grid the synthetic-scale experiments search over (encoder
    /// depth x learning rate x initialization seed), derived from a base
    /// configuration.
    pub fn experiment_grid(base: LocMatcherConfig) -> Vec<LocMatcherConfig> {
        if cfg!(debug_assertions) {
            // Debug builds are the test suite; keep them fast with a
            // two-point grid. Release experiments search the full grid.
            return vec![base, LocMatcherConfig { lr: 1e-2, ..base }];
        }
        let mut grid = Vec::new();
        for n_layers in [2usize, 3] {
            for lr in [3e-3f32, 1e-2] {
                grid.push(LocMatcherConfig {
                    n_layers,
                    lr,
                    ..base
                });
            }
        }
        grid
    }

    /// Mean distance (m) from the selected candidate to the ground truth
    /// over labelled samples; `f64::INFINITY` when none are labelled.
    pub fn mean_val_error(&self, samples: &[AddressSample]) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for s in samples {
            let Some(d) = &s.truth_distances else {
                continue;
            };
            if s.candidates.is_empty() {
                continue;
            }
            let Some(idx) = self.predict(s) else { continue };
            total += d[idx];
            n += 1;
        }
        if n == 0 {
            f64::INFINITY
        } else {
            total / n as f64
        }
    }

    /// Exports the trained weights as `(name, shape, data)` triples; pair
    /// with [`LocMatcher::from_weights`] and the model's configuration to
    /// persist a trained model.
    pub fn export_weights(&self) -> Vec<(String, Vec<usize>, Vec<f32>)> {
        self.store.export_weights()
    }

    /// Rebuilds a model from its configuration and a weight dump produced
    /// by [`LocMatcher::export_weights`].
    ///
    /// # Errors
    /// Returns a description of the first mismatch when the dump does not
    /// fit the configuration's parameter layout.
    pub fn from_weights(
        cfg: LocMatcherConfig,
        weights: &[(String, Vec<usize>, Vec<f32>)],
    ) -> Result<Self, String> {
        let mut model = LocMatcher::new(cfg);
        model.store.import_weights(weights)?;
        Ok(model)
    }

    /// Mean cross-entropy over labelled samples (no dropout).
    pub fn mean_loss(&self, samples: &[AddressSample]) -> f32 {
        self.mean_loss_pooled(samples, &Pool::sequential())
    }

    /// [`LocMatcher::mean_loss`] evaluating samples data-parallel on
    /// `pool`; the losses are summed in sample order, so the result is
    /// bitwise-identical at any worker count.
    pub fn mean_loss_pooled(&self, samples: &[AddressSample], pool: &Pool) -> f32 {
        let losses: Vec<Option<f32>> = pool.par_map(samples, |s| {
            let target = s.label?;
            if s.candidates.is_empty() {
                return None;
            }
            let mut rng = StdRng::seed_from_u64(0);
            let mut g = Graph::new();
            let logits = self.forward(&mut g, s, false, &mut rng);
            let loss = g.softmax_cross_entropy_1d(logits, target);
            Some(g.value(loss).item())
        });
        let mut total = 0.0f32;
        let mut n = 0usize;
        for loss in losses.into_iter().flatten() {
            total += loss;
            n += 1;
        }
        if n == 0 {
            f32::INFINITY
        } else {
            total / n as f32
        }
    }

    /// Selection probabilities over the sample's candidates (Equation 4).
    pub fn predict_proba(&self, sample: &AddressSample) -> Vec<f32> {
        if sample.candidates.is_empty() {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = Graph::new();
        let logits = self.forward(&mut g, sample, false, &mut rng);
        let sm = g.value(logits);
        let max = sm.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = sm.data().iter().map(|&x| (x - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        exps.into_iter().map(|e| e / denom).collect()
    }

    /// Index (into `sample.candidates`) of the predicted delivery location,
    /// or `None` when the sample has no candidates.
    pub fn predict(&self, sample: &AddressSample) -> Option<usize> {
        let probs = self.predict_proba(sample);
        probs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{CandidateId, TIME_BINS};
    use dlinfma_geo::Point;
    use rand::Rng;

    /// Builds a synthetic sample where the correct candidate is the one with
    /// the highest trip coverage and lowest commonality.
    fn toy_sample(rng: &mut StdRng, n: usize) -> AddressSample {
        let target = rng.gen_range(0..n);
        let features: Vec<CandidateFeatures> = (0..n)
            .map(|i| {
                let good = i == target;
                let mut td = [0.0f64; TIME_BINS];
                td[10] = 0.6;
                td[15] = 0.4;
                CandidateFeatures {
                    trip_coverage: if good {
                        rng.gen_range(0.8..1.0)
                    } else {
                        rng.gen_range(0.0..0.6)
                    },
                    location_commonality: if good {
                        rng.gen_range(0.0..0.2)
                    } else {
                        rng.gen_range(0.1..0.9)
                    },
                    distance_m: if good {
                        rng.gen_range(10.0..60.0)
                    } else {
                        rng.gen_range(40.0..400.0)
                    },
                    avg_duration_s: rng.gen_range(40.0..200.0),
                    n_couriers: rng.gen_range(1.0..4.0),
                    n_stays: rng.gen_range(1.0..20.0),
                    time_distribution: td,
                }
            })
            .collect();
        AddressSample {
            address: dlinfma_synth::AddressId(0),
            station: dlinfma_synth::StationId(0),
            candidates: (0..n).map(|i| CandidateId(i as u32)).collect(),
            features,
            n_deliveries: rng.gen_range(1..10),
            poi_category: rng.gen_range(0..N_POI_CATEGORIES as u8),
            geocode: Point::ZERO,
            label: Some(target),
            truth_distances: Some(
                (0..n)
                    .map(|i| if i == target { 5.0 } else { 80.0 })
                    .collect(),
            ),
        }
    }

    #[test]
    fn untrained_model_produces_valid_distribution() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = LocMatcher::new(LocMatcherConfig::fast());
        let s = toy_sample(&mut rng, 7);
        let probs = model.predict_proba(&s);
        assert_eq!(probs.len(), 7);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(probs.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn learns_toy_selection_task() {
        let mut rng = StdRng::seed_from_u64(1);
        let train: Vec<AddressSample> = (0..120)
            .map(|_| {
                let n = rng.gen_range(3..10);
                toy_sample(&mut rng, n)
            })
            .collect();
        let val: Vec<AddressSample> = (0..30)
            .map(|_| {
                let n = rng.gen_range(3..10);
                toy_sample(&mut rng, n)
            })
            .collect();
        let mut cfg = LocMatcherConfig::fast();
        cfg.max_epochs = 20;
        let mut model = LocMatcher::new(cfg);
        let report = model.train(&train, &val);
        assert!(report.epochs > 0);
        assert!(report.best_val_loss.is_finite());

        let test: Vec<AddressSample> = (0..50)
            .map(|_| {
                let n = rng.gen_range(3..10);
                toy_sample(&mut rng, n)
            })
            .collect();
        let correct = test.iter().filter(|s| model.predict(s) == s.label).count();
        assert!(correct >= 40, "accuracy {correct}/50");
    }

    #[test]
    fn single_candidate_is_always_selected() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = LocMatcher::new(LocMatcherConfig::fast());
        let s = toy_sample(&mut rng, 1);
        assert_eq!(model.predict(&s), Some(0));
        assert_eq!(model.predict_proba(&s), vec![1.0]);
    }

    #[test]
    fn empty_sample_predicts_none() {
        let model = LocMatcher::new(LocMatcherConfig::fast());
        let s = AddressSample {
            address: dlinfma_synth::AddressId(0),
            station: dlinfma_synth::StationId(0),
            candidates: vec![],
            features: vec![],
            n_deliveries: 0,
            poi_category: 0,
            geocode: Point::ZERO,
            label: None,
            truth_distances: None,
        };
        assert_eq!(model.predict(&s), None);
    }

    #[test]
    fn no_context_variant_runs() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = LocMatcherConfig {
            use_address_context: false,
            ..LocMatcherConfig::fast()
        };
        let model = LocMatcher::new(cfg);
        let s = toy_sample(&mut rng, 5);
        assert!(model.predict(&s).is_some());
    }

    #[test]
    fn feature_ablations_change_input_dim_but_run() {
        let mut rng = StdRng::seed_from_u64(4);
        for features in [
            FeatureConfig {
                use_trip_coverage: false,
                ..FeatureConfig::default()
            },
            FeatureConfig {
                use_profile: false,
                ..FeatureConfig::default()
            },
            FeatureConfig {
                use_distance: false,
                ..FeatureConfig::default()
            },
        ] {
            let cfg = LocMatcherConfig {
                features,
                ..LocMatcherConfig::fast()
            };
            let model = LocMatcher::new(cfg);
            let s = toy_sample(&mut rng, 4);
            assert!(model.predict(&s).is_some());
        }
    }

    #[test]
    fn weight_roundtrip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(9);
        let train: Vec<AddressSample> = (0..20).map(|_| toy_sample(&mut rng, 5)).collect();
        let val: Vec<AddressSample> = (0..8).map(|_| toy_sample(&mut rng, 5)).collect();
        let mut cfg = LocMatcherConfig::fast();
        cfg.max_epochs = 3;
        let mut model = LocMatcher::new(cfg);
        model.train(&train, &val);
        let dump = model.export_weights();
        let restored = LocMatcher::from_weights(cfg, &dump).expect("same layout");
        for s in &val {
            assert_eq!(model.predict_proba(s), restored.predict_proba(s));
        }
        // Mismatched config is rejected.
        let mut other = cfg;
        other.z = cfg.z * 2;
        assert!(LocMatcher::from_weights(other, &dump).is_err());
    }

    #[test]
    fn progress_hook_fires_once_per_epoch() {
        let mut rng = StdRng::seed_from_u64(6);
        let train: Vec<AddressSample> = (0..20).map(|_| toy_sample(&mut rng, 5)).collect();
        let val: Vec<AddressSample> = (0..8).map(|_| toy_sample(&mut rng, 5)).collect();
        let mut cfg = LocMatcherConfig::fast();
        cfg.max_epochs = 4;
        let mut model = LocMatcher::new(cfg);
        let mut seen = Vec::new();
        let report = model.train_with_progress(&train, &val, &mut |p| seen.push(p));
        assert_eq!(seen.len(), report.epochs);
        assert_eq!(report.val_losses.len(), report.epochs);
        for (i, p) in seen.iter().enumerate() {
            assert_eq!(p.epoch, i);
            assert!(p.train_loss.is_finite());
            assert_eq!(p.val_loss as f32, report.val_losses[i]);
        }
        assert!(seen.iter().any(|p| p.improved), "first epoch improves");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(5);
        let train: Vec<AddressSample> = (0..30).map(|_| toy_sample(&mut rng, 5)).collect();
        let val: Vec<AddressSample> = (0..10).map(|_| toy_sample(&mut rng, 5)).collect();
        let run = || {
            let mut cfg = LocMatcherConfig::fast();
            cfg.max_epochs = 3;
            cfg.seed = 77;
            let mut m = LocMatcher::new(cfg);
            m.train(&train, &val);
            m.predict_proba(&val[0])
        };
        assert_eq!(run(), run());
    }
}
