#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
//! DLInfMA — Delivery Location Inference under Mis-Annotation.
//!
//! The primary contribution of *"Discovering Actual Delivery Locations from
//! Mis-Annotated Couriers' Trajectories"* (Ruan et al., ICDE 2022),
//! implemented end to end:
//!
//! 1. **Location candidate generation** — [`staypoints`] extracts stay
//!    points from noise-filtered trajectories; [`candidates`] clusters them
//!    into a profiled candidate pool (one-shot or bi-weekly incremental);
//!    [`retrieval`] filters per-address candidates with the recorded
//!    delivery time as a temporal upper bound.
//! 2. **Delivery location discovery** — [`features`] computes the matching
//!    (trip coverage, location commonality, distance), profile and address
//!    features; [`locmatcher`] selects the delivery location with a
//!    transformer encoder over all candidates jointly plus an additive
//!    attention conditioned on the address context.
//!
//! [`DlInfMa`] in [`pipeline`] wires both components into the public batch
//! API. Underneath, the pipeline is an incremental staged [`Engine`]
//! ([`engine`], [`stages`]): trips stream in as per-day
//! [`TripBatch`]es, each stage's artifact updates in place, and only dirty
//! addresses are re-retrieved and re-featurized. `DlInfMa::prepare` is one
//! big ingest over that engine, so batch and streaming stay bit-for-bit
//! equal.

pub mod candidates;
pub mod engine;
pub mod features;
pub mod locmatcher;
pub mod pipeline;
pub mod retrieval;
pub mod sharded;
pub mod snapshot;
pub mod stages;
pub mod staypoints;

pub use candidates::{
    build_pool, build_pool_grid, build_pool_incremental, build_pool_station_parallel, CandidateId,
    CandidatePool, IncrementalPoolBuilder, LocationCandidate, LocationProfile, TIME_BINS,
};
pub use dlinfma_params as params;
pub use dlinfma_synth::TripBatch;
pub use engine::Engine;
pub use features::{AddressSample, CandidateFeatures, FeatureConfig, FeatureExtractor};
pub use locmatcher::{LocMatcher, LocMatcherConfig, TrainReport};
pub use pipeline::{DlInfMa, DlInfMaConfig, PoolMethod};
pub use retrieval::{collect_evidence, retrieve_candidates, AddressEvidence};
pub use sharded::ShardedEngine;
pub use snapshot::{Checkpoint, RestoredEngine, SnapshotError};
pub use staypoints::{
    extract_batch_with_stats, extract_stay_points, extract_stay_points_parallel, ExtractionConfig,
    TripStays,
};
