//! Shard-count determinism — the fleet-mode headline guarantee: a
//! [`ShardedEngine`]'s merged artifacts (samples, features, trained model,
//! inference) are bit-identical at any shard count × any worker count, and
//! a 1-shard fleet matches a plain [`Engine`] bit for bit. Plus the
//! cross-shard fallback unit test: an address whose best-evidence station
//! yields no candidates is served by the shard that has some.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dlinfma_core::{DlInfMa, DlInfMaConfig, Engine, ShardedEngine};
use dlinfma_synth::{
    generate_with, replay, spatial_split, world_config, Dataset, Preset, Scale, StationId,
    TripBatch, Waybill,
};
use std::collections::BTreeMap;

fn config_for(preset: Preset) -> DlInfMaConfig {
    let mut cfg = DlInfMaConfig::fast();
    cfg.clustering_distance_m = match preset {
        Preset::DowBJ => dlinfma_core::params::TUNED_CLUSTER_DISTANCE_M,
        Preset::SubBJ => dlinfma_core::params::CLUSTER_DISTANCE_M,
    };
    cfg.model.max_epochs = 10;
    cfg
}

/// A Tiny world with three stations, so a 4-shard fleet actually splits
/// the fleet (stations 0..3 land on shards 0..3 via `station % shards`).
fn multi_station_world(preset: Preset, seed: u64) -> Dataset {
    let mut wc = world_config(preset, Scale::Tiny);
    wc.sim.n_stations = 3;
    let (_, ds) = generate_with(&wc, seed);
    assert_eq!(ds.stations.len(), 3);
    ds
}

/// Replays the whole dataset through a fleet and trains the fleet model on
/// the canonical spatial split.
fn run_fleet(ds: &Dataset, mut cfg: DlInfMaConfig, shards: usize, workers: usize) -> ShardedEngine {
    cfg.workers = workers;
    let mut fleet = ShardedEngine::new(ds.addresses.clone(), cfg, shards);
    for batch in replay(ds) {
        fleet.ingest(&batch);
    }
    let split = spatial_split(ds, 0.6, 0.2);
    assert!(fleet.train_with(ds, &split.train, &split.val) > 0);
    fleet
}

/// Asserts two fleets' merged serving surfaces are bitwise-identical:
/// funnel totals, per-address samples (features, deliveries, station,
/// candidates resolved through the owning shard's pool), and post-training
/// inference. Candidate *ids* are per-shard-pool dense and deliberately not
/// compared; their resolved positions and profiles are.
fn assert_merged_parity(left: &ShardedEngine, right: &ShardedEngine, ds: &Dataset) {
    assert_eq!(left.n_trips(), right.n_trips(), "trip totals");
    assert_eq!(left.n_stays(), right.n_stays(), "stay totals");
    assert_eq!(left.n_candidates(), right.n_candidates(), "pool totals");

    let ls = left.merged_samples();
    let rs = right.merged_samples();
    assert_eq!(ls.len(), rs.len(), "merged sample count");
    for ((lshard, l), (rshard, r)) in ls.iter().zip(&rs) {
        assert_eq!(l.address, r.address);
        assert_eq!(l.station, r.station, "{:?} owning station", l.address);
        assert_eq!(l.n_deliveries, r.n_deliveries, "{:?}", l.address);
        assert_eq!(l.features, r.features, "{:?} features", l.address);
        assert_eq!(l.poi_category, r.poi_category);
        assert_eq!(l.geocode, r.geocode);
        assert_eq!(
            l.candidates.len(),
            r.candidates.len(),
            "{:?} candidate count",
            l.address
        );
        for (&lc, &rc) in l.candidates.iter().zip(&r.candidates) {
            let a = left.shard(*lshard).pool().candidate(lc);
            let b = right.shard(*rshard).pool().candidate(rc);
            assert_eq!(a.pos, b.pos, "{:?} candidate centroid", l.address);
            assert_eq!(a.profile, b.profile, "{:?} candidate profile", l.address);
        }
    }

    for a in &ds.addresses {
        assert_eq!(
            left.infer(a.id),
            right.infer(a.id),
            "inference diverged for {:?}",
            a.id
        );
    }
}

/// The acceptance matrix: shards {1, 4} × workers {1, 8}, all four cells
/// bit-identical to the (1 shard, 1 worker) reference.
fn assert_shard_worker_matrix(preset: Preset, seed: u64) {
    let ds = multi_station_world(preset, seed);
    let cfg = config_for(preset);
    let reference = run_fleet(&ds, cfg, 1, 1);
    for (shards, workers) in [(1, 8), (4, 1), (4, 8)] {
        let other = run_fleet(&ds, cfg, shards, workers);
        if shards > 1 {
            // The matrix is only meaningful if the fleet actually split.
            let active = other.shards().iter().filter(|e| e.n_trips() > 0).count();
            assert!(active >= 2, "only {active} shards saw trips");
        }
        assert_merged_parity(&reference, &other, &ds);
    }
}

#[test]
fn shard_count_parity_dowbj() {
    assert_shard_worker_matrix(Preset::DowBJ, 11);
}

#[test]
fn shard_count_parity_subbj() {
    assert_shard_worker_matrix(Preset::SubBJ, 23);
}

/// A 1-shard fleet IS the single-engine path: same samples (ids included —
/// the pools are the same pool), same trained model, same inference as the
/// plain `Engine`/`DlInfMa` pipeline.
#[test]
fn one_shard_fleet_matches_plain_engine() {
    let ds = multi_station_world(Preset::DowBJ, 11);
    let cfg = config_for(Preset::DowBJ);

    let mut engine = Engine::new(ds.addresses.clone(), cfg);
    for batch in replay(&ds) {
        engine.ingest(&batch);
    }
    let fleet = run_fleet(&ds, cfg, 1, cfg.workers);

    assert_eq!(fleet.n_trips(), engine.n_trips());
    assert_eq!(fleet.n_stays(), engine.n_stays());
    assert_eq!(fleet.n_candidates(), engine.pool().len());

    let engine_samples: Vec<_> = engine.samples().collect();
    let fleet_samples = fleet.merged_samples();
    assert_eq!(engine_samples.len(), fleet_samples.len());
    for s in &engine_samples {
        let (shard, t) = fleet.merged_sample(s.address).unwrap();
        assert_eq!(shard, 0);
        assert_eq!(s.candidates, t.candidates, "{:?}", s.address);
        assert_eq!(s.features, t.features, "{:?}", s.address);
        assert_eq!(s.station, t.station);
        assert_eq!(s.n_deliveries, t.n_deliveries);
    }

    // Train the plain pipeline with the identical recipe; inference must
    // agree bit for bit on every address.
    let mut plain = DlInfMa::from_engine(engine);
    let split = spatial_split(&ds, 0.6, 0.2);
    plain.label_from_dataset(&ds);
    plain.train(&split.train, &split.val);
    for a in &ds.addresses {
        assert_eq!(plain.infer(a.id), fleet.infer(a.id), "{:?}", a.id);
    }
}

/// Cross-shard fallback: an address whose *primary* station (most evidence
/// trips) produces no candidates must be served by the shard whose station
/// does — and the served sample must be bitwise what a whole-fleet engine
/// materializes through its in-engine station fallback.
#[test]
fn cross_shard_fallback_serves_from_the_shard_with_candidates() {
    let mut ds = multi_station_world(Preset::DowBJ, 7);

    // Pick a delivered address; call its evidence station B. Synth evidence
    // is single-station, so all of its trips sit at B.
    let target = ds.waybills[0].address;
    let b_station = ds.trips[ds.waybills[0].trip.0 as usize].station;
    let b_count = {
        let mut trips: Vec<u32> = ds
            .waybills
            .iter()
            .filter(|w| w.address == target)
            .map(|w| w.trip.0)
            .collect();
        trips.sort_unstable();
        trips.dedup();
        for &t in &trips {
            assert_eq!(
                ds.trips[t as usize].station, b_station,
                "synth evidence is expected single-station"
            );
        }
        trips.len()
    };

    // Station A: a different station with enough trips to outvote B.
    let mut per_station: BTreeMap<StationId, Vec<u32>> = BTreeMap::new();
    for t in &ds.trips {
        per_station.entry(t.station).or_default().push(t.id.0);
    }
    let (&a_station, a_trips) = per_station
        .iter()
        .filter(|(&s, _)| s != b_station)
        .max_by_key(|(&s, v)| (v.len(), std::cmp::Reverse(s)))
        .unwrap();
    let n_fake = b_count + 1;
    assert!(
        a_trips.len() >= n_fake,
        "station {a_station:?} has only {} trips, need {n_fake}",
        a_trips.len()
    );

    // Forge A-station evidence for the target: more distinct trips than B,
    // but with a recorded-time bound *before* any stay, so retrieval at A
    // yields zero candidates. A becomes the primary station with nothing
    // to serve — exactly the straddling case fallback exists for.
    for &t in a_trips.iter().take(n_fake) {
        ds.waybills.push(Waybill {
            address: target,
            trip: dlinfma_synth::TripId(t),
            t_received: ds.trips[t as usize].t_start,
            t_recorded_delivery: -1.0,
            t_actual_delivery: ds.trips[t as usize].t_start,
        });
    }

    let cfg = config_for(Preset::DowBJ);
    let full = TripBatch::full(&ds);
    let mut single = Engine::new(ds.addresses.clone(), cfg);
    single.ingest(&full);
    let mut fleet = ShardedEngine::new(ds.addresses.clone(), cfg, 3);
    fleet.ingest(&full);

    // The whole-fleet engine falls back in-retrieval: past candidate-less
    // A to B, whose candidates survive.
    let s = single.sample(target).expect("target sampled");
    assert_eq!(s.station, b_station, "in-engine fallback chose B");
    assert!(!s.candidates.is_empty(), "B's candidates survive");
    assert_eq!(s.n_deliveries, b_count);

    // Stations 0..3 map to shards 0..3, so A and B live on different
    // shards. A's shard holds the primary (candidate-less) sample...
    let a_shard = a_station.0 as usize % 3;
    let b_shard = b_station.0 as usize % 3;
    assert_ne!(a_shard, b_shard);
    let on_a = fleet.shard(a_shard).sample(target).expect("A-side sample");
    assert_eq!(on_a.station, a_station);
    assert!(on_a.candidates.is_empty(), "A has nothing to serve");
    assert_eq!(on_a.n_deliveries, n_fake);

    // ...and the merge serves the address from B's shard, bitwise equal to
    // the whole-fleet engine's sample.
    let (shard, merged) = fleet.merged_sample(target).expect("merged sample");
    assert_eq!(shard, b_shard, "served by the shard with candidates");
    assert_eq!(merged.station, b_station);
    assert_eq!(merged.features, s.features);
    assert_eq!(merged.n_deliveries, s.n_deliveries);
    assert_eq!(merged.candidates.len(), s.candidates.len());
    for (&mc, &sc) in merged.candidates.iter().zip(&s.candidates) {
        let a = fleet.shard(shard).pool().candidate(mc);
        let b = single.pool().candidate(sc);
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.profile, b.profile);
    }
}
