//! End-to-end tracing tests: a traced replay must export a golden-shape
//! Chrome trace (validated structurally), event names must be stable
//! across worker counts, tracing must not perturb the engine's artifacts,
//! and back-to-back runs separated by `obs::reset_all` must not leak
//! events into each other.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dlinfma_core::{DlInfMaConfig, Engine};
use dlinfma_obs as obs;
use dlinfma_synth::{generate, replay, Preset, Scale};
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

/// The trace layer is process-global; tests in this binary serialise.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset_all();
    guard
}

fn config(workers: usize) -> DlInfMaConfig {
    let mut cfg = DlInfMaConfig::fast();
    cfg.workers = workers;
    cfg
}

/// Replays the Tiny world through a fresh engine with tracing on and
/// returns the engine plus the drained capture.
fn traced_replay(workers: usize) -> (Engine, obs::TraceCapture) {
    let (_, dataset) = generate(Preset::DowBJ, Scale::Tiny, 1);
    obs::trace_enable();
    let mut engine = Engine::new(dataset.addresses.clone(), config(workers));
    for batch in replay(&dataset) {
        engine.ingest(&batch);
    }
    obs::trace_disable();
    let capture = obs::take_trace();
    (engine, capture)
}

fn names_of(capture: &obs::TraceCapture) -> BTreeSet<&'static str> {
    capture.events.iter().map(|e| e.name).collect()
}

#[test]
fn traced_replay_exports_a_golden_shape_chrome_trace() {
    let _g = lock();
    let (_, capture) = traced_replay(3);
    assert_eq!(capture.dropped, 0, "Tiny replay fits the rings");
    assert!(
        capture.threads.len() >= 3,
        "main + at least two pool workers registered: {:?}",
        capture.threads
    );
    assert!(
        capture
            .threads
            .iter()
            .any(|(_, label)| label.starts_with("dlinfma-pool-")),
        "per-worker tracks carry the pool thread names: {:?}",
        capture.threads
    );

    // Engine stage spans down to the per-dirty-address work and the
    // dirty-component re-clustering are all present.
    let names = names_of(&capture);
    for expected in [
        obs::names::ENGINE_INGEST,
        obs::names::ENGINE_EXTRACT,
        obs::names::ENGINE_MATERIALIZE,
        obs::names::ENGINE_RETRIEVE_ADDRESS,
        obs::names::ENGINE_FEATURES_ADDRESS,
        obs::names::ENGINE_POOL_SIZE,
        obs::names::ENGINE_DIRTY_ADDRESSES,
        obs::names::CLUSTER_MERGE_WEIGHTED,
        obs::names::CLUSTER_MERGE_LOOP,
        obs::names::POOL_TASK,
    ] {
        assert!(names.contains(expected), "missing {expected} in {names:?}");
    }

    // The export round-trips through the golden-shape validator: valid
    // JSON, every B has its E on the same thread with the same name,
    // timestamps non-negative and monotonic per thread.
    let text = obs::chrome_trace_json(&capture).render();
    let summary = obs::validate_chrome_trace(&text).expect("golden shape");
    assert_eq!(summary.events, capture.events.len());
    assert_eq!(summary.dropped, 0);
    assert!(summary.complete_spans > 0);
}

#[test]
fn trace_names_are_stable_across_worker_counts() {
    let _g = lock();
    let (_, serial) = traced_replay(1);
    let (_, parallel) = traced_replay(4);
    // Pool dispatch events only exist when workers exist; every other name
    // must be identical — a name that appears or disappears with the
    // worker count would break trace-diffing across machines.
    let strip = |c: &obs::TraceCapture| -> BTreeSet<&'static str> {
        names_of(c)
            .into_iter()
            .filter(|n| !n.starts_with("pool/"))
            .collect()
    };
    assert_eq!(strip(&serial), strip(&parallel));
}

#[test]
fn tracing_does_not_perturb_engine_artifacts() {
    let _g = lock();
    let (_, dataset) = generate(Preset::DowBJ, Scale::Tiny, 1);
    // Untraced baseline.
    let mut plain = Engine::new(dataset.addresses.clone(), config(3));
    for batch in replay(&dataset) {
        plain.ingest(&batch);
    }
    // Traced run (worker-count parity with tracing enabled rides along:
    // same artifacts at a different worker count, tracing on).
    let (traced, _) = traced_replay(2);

    assert_eq!(plain.pool().len(), traced.pool().len(), "pool size");
    assert_eq!(plain.n_stays(), traced.n_stays());
    let mut plain_samples: Vec<_> = plain.samples().collect();
    let mut traced_samples: Vec<_> = traced.samples().collect();
    plain_samples.sort_by_key(|s| s.address);
    traced_samples.sort_by_key(|s| s.address);
    assert_eq!(plain_samples.len(), traced_samples.len());
    for (a, b) in plain_samples.iter().zip(&traced_samples) {
        assert_eq!(a.address, b.address);
        assert_eq!(a.candidates, b.candidates);
        for (fa, fb) in a.features.iter().zip(&b.features) {
            assert_eq!(fa.trip_coverage, fb.trip_coverage);
            assert_eq!(fa.location_commonality, fb.location_commonality);
            assert_eq!(fa.distance_m, fb.distance_m);
        }
    }
}

#[test]
fn back_to_back_runs_with_reset_do_not_leak_events() {
    let _g = lock();
    let (_, first) = traced_replay(2);
    obs::reset_all();
    let (_, second) = traced_replay(2);

    // The replay is deterministic, so the second capture must repeat the
    // first exactly in event counts — any surplus is a leak across the
    // reset, any deficit a lost ring. Steal markers are the one exception:
    // which worker steals is a scheduling race (the artifacts are parity-
    // checked elsewhere; the steal *count* legitimately varies).
    let count_by_name = |c: &obs::TraceCapture| {
        let mut m = std::collections::BTreeMap::new();
        for e in &c.events {
            if e.name == obs::names::POOL_STEAL {
                continue;
            }
            *m.entry(e.name).or_insert(0u64) += 1;
        }
        m
    };
    assert_eq!(count_by_name(&first), count_by_name(&second));
    assert_eq!(first.dropped, second.dropped);

    // And after a final reset nothing remains to take.
    obs::reset_all();
    assert!(obs::take_trace().events.is_empty());
}

#[test]
fn health_monitor_tracks_every_replayed_day() {
    let _g = lock();
    let (_, dataset) = generate(Preset::DowBJ, Scale::Tiny, 1);
    let mut engine = Engine::new(dataset.addresses.clone(), config(2));
    let mut n_days = 0usize;
    for batch in replay(&dataset) {
        let rep = engine.ingest(&batch);
        assert!(rep.pool.is_some(), "per-ingest pool telemetry delta");
        n_days += 1;
    }
    let health = engine.health_report();
    assert_eq!(health.days.len(), n_days);
    for (day, d) in health.days.iter().enumerate() {
        assert_eq!(d.day as usize, day, "replay days arrive in order");
        assert!(d.trips > 0);
        assert!(d.ingest_ns > 0);
    }
    // The cumulative report carries the pool totals and the JSON render
    // includes the health block keys the CLI exports.
    assert!(engine.report().pool.is_some());
    let json = health.to_json().render();
    for key in ["\"thresholds\"", "\"healthy\"", "\"days\"", "\"anomalies\""] {
        assert!(json.contains(key), "missing {key}");
    }
}
