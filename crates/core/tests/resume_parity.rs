//! Resume parity — the durable-snapshot headline guarantee: restoring a
//! day-`k` checkpoint and ingesting days `k+1..n` is **bit-identical** to
//! a cold run over days `1..n`, at any worker count and any shard count.
//! Equality is asserted on snapshot *bytes* (the strongest equality the
//! engine can state: every stage artifact, counter, and table must agree
//! bit for bit), plus a trained-inference spot check on top.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dlinfma_core::snapshot::{
    engine_to_bytes, latest_checkpoint, read_checkpoint, write_engine_checkpoint,
    write_fleet_checkpoint, RestoredEngine,
};
use dlinfma_core::{DlInfMaConfig, Engine, ShardedEngine};
use dlinfma_synth::{generate_with, replay, world_config, Dataset, Preset, Scale, TripBatch};
use std::path::PathBuf;

fn fast_cfg(workers: usize) -> DlInfMaConfig {
    let mut cfg = DlInfMaConfig::fast();
    cfg.model.max_epochs = 4;
    cfg.workers = workers;
    cfg
}

/// A Tiny world with three stations so multi-shard fleets actually split.
fn tiny_world(seed: u64) -> Dataset {
    let mut wc = world_config(Preset::DowBJ, Scale::Tiny);
    wc.sim.n_stations = 3;
    let (_, ds) = generate_with(&wc, seed);
    ds
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dlinfma-resume-parity-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cold-runs `workers`×`shards`, checkpoints at day `k`, restores the
/// checkpoint in a fresh process-state, ingests the remaining days, and
/// requires the final snapshot bytes to equal the cold run's — per shard.
fn assert_resume_parity(ds: &Dataset, workers: usize, shards: usize, k: usize) {
    let batches: Vec<TripBatch> = replay(ds).collect();
    assert!(
        k < batches.len(),
        "checkpoint day must leave days to resume"
    );
    let dir = scratch_dir(&format!("w{workers}s{shards}"));
    let cfg = fast_cfg(workers);

    // Cold run, checkpointing at day k along the way.
    let cold_bytes: Vec<Vec<u8>> = if shards > 1 {
        let mut fleet = ShardedEngine::new(ds.addresses.clone(), cfg, shards);
        for (i, b) in batches.iter().enumerate() {
            fleet.ingest(b);
            if i + 1 == k {
                write_fleet_checkpoint(&dir, k as u32, &fleet).unwrap();
            }
        }
        (0..shards)
            .map(|s| engine_to_bytes(fleet.shard(s)))
            .collect()
    } else {
        let mut engine = Engine::new(ds.addresses.clone(), cfg);
        for (i, b) in batches.iter().enumerate() {
            engine.ingest(b);
            if i + 1 == k {
                write_engine_checkpoint(&dir, k as u32, &engine).unwrap();
            }
        }
        vec![engine_to_bytes(&engine)]
    };

    // Warm run: restore day k, ingest the rest.
    assert_eq!(latest_checkpoint(&dir).unwrap(), Some(k as u32));
    let cp = read_checkpoint(&dir, k as u32, &ds.addresses, cfg).unwrap();
    assert_eq!(cp.days_ingested, k as u32);
    let warm_bytes: Vec<Vec<u8>> = match cp.engine {
        RestoredEngine::Single(mut engine) => {
            assert_eq!(shards, 1, "single checkpoint implies one shard");
            for b in &batches[k..] {
                engine.ingest(b);
            }
            vec![engine_to_bytes(&engine)]
        }
        RestoredEngine::Fleet(mut fleet) => {
            assert_eq!(fleet.n_shards(), shards);
            for b in &batches[k..] {
                fleet.ingest(b);
            }
            (0..shards)
                .map(|s| engine_to_bytes(fleet.shard(s)))
                .collect()
        }
    };

    assert_eq!(
        cold_bytes, warm_bytes,
        "resumed snapshot bytes diverge from the cold run (workers {workers}, shards {shards})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_parity_across_worker_and_shard_counts() {
    let ds = tiny_world(11);
    for &workers in &[1usize, 8] {
        for &shards in &[1usize, 4] {
            assert_resume_parity(&ds, workers, shards, 2);
        }
    }
}

#[test]
fn resume_parity_holds_when_worker_count_changes_across_the_restart() {
    // Checkpoint under 8 workers, resume under 1: the snapshot must not
    // encode anything worker-dependent.
    let ds = tiny_world(12);
    let batches: Vec<TripBatch> = replay(&ds).collect();
    let dir = scratch_dir("wswitch");

    let mut cold = Engine::new(ds.addresses.clone(), fast_cfg(8));
    for (i, b) in batches.iter().enumerate() {
        cold.ingest(b);
        if i + 1 == 2 {
            write_engine_checkpoint(&dir, 2, &cold).unwrap();
        }
    }

    let cp = read_checkpoint(&dir, 2, &ds.addresses, fast_cfg(1)).unwrap();
    let RestoredEngine::Single(mut warm) = cp.engine else {
        panic!("expected a single engine");
    };
    for b in &batches[2..] {
        warm.ingest(b);
    }
    assert_eq!(engine_to_bytes(&cold), engine_to_bytes(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_restored_trained_engine_infers_identically() {
    // Train a model, checkpoint, restore: the restored engine must carry
    // the model and produce bit-identical inferences for every address.
    let ds = tiny_world(13);
    let split = dlinfma_synth::spatial_split(&ds, 0.6, 0.2);
    let dir = scratch_dir("trained");
    let cfg = fast_cfg(2);

    let mut fleet = ShardedEngine::new(ds.addresses.clone(), cfg, 2);
    for b in replay(&ds) {
        fleet.ingest(&b);
    }
    fleet.train_with(&ds, &split.train, &split.val);
    write_fleet_checkpoint(&dir, fleet.days_ingested(), &fleet).unwrap();

    let cp = read_checkpoint(&dir, fleet.days_ingested(), &ds.addresses, cfg).unwrap();
    let RestoredEngine::Fleet(restored) = cp.engine else {
        panic!("expected a fleet");
    };
    assert!(restored.model().is_some(), "model must survive the restart");
    for a in &ds.addresses {
        assert_eq!(
            fleet.infer(a.id),
            restored.infer(a.id),
            "inference diverged for address {}",
            a.id.0
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
