//! Batch/streaming parity: feeding the engine day by day via `replay` must
//! reproduce one-shot `DlInfMa::prepare` exactly — pool, candidate sets,
//! features, and (after training on the identical samples) inference.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dlinfma_core::{DlInfMa, DlInfMaConfig, Engine, PoolMethod};
use dlinfma_synth::{generate, replay, spatial_split, Preset, Scale};

fn config_for(preset: Preset) -> DlInfMaConfig {
    let mut cfg = DlInfMaConfig::fast();
    // Mirror the eval harness: DowBJ keeps the re-tuned 30 m distance,
    // SubBJ the paper's 40 m.
    cfg.clustering_distance_m = match preset {
        Preset::DowBJ => dlinfma_core::params::TUNED_CLUSTER_DISTANCE_M,
        Preset::SubBJ => dlinfma_core::params::CLUSTER_DISTANCE_M,
    };
    cfg.model.max_epochs = 10;
    cfg
}

/// Streams the dataset through an engine day by day, asserting the
/// dirty-address bookkeeping along the way, and returns it.
fn stream(dataset: &dlinfma_synth::Dataset, cfg: DlInfMaConfig) -> Engine {
    let mut engine = Engine::new(dataset.addresses.clone(), cfg);
    let mut days = 0;
    for (i, batch) in replay(dataset).enumerate() {
        let rep = engine.ingest(&batch);
        assert_eq!(rep.rejected_trips, 0);
        assert_eq!(rep.rejected_waybills, 0);
        assert_eq!(rep.pool_size, engine.pool().len() as u64);
        if i > 0 {
            // Incrementality: after day 1 only part of the address space
            // may be invalidated.
            assert!(
                rep.dirty_addresses < rep.total_addresses,
                "day {}: {} dirty of {} addresses — nothing was incremental",
                batch.day,
                rep.dirty_addresses,
                rep.total_addresses
            );
        }
        days += 1;
    }
    assert!(days >= 2, "Tiny worlds replay over several days");
    engine
}

/// Asserts the prepared artifacts of two pipelines are bitwise-identical:
/// same pool, same candidate sets, same feature floats.
fn assert_same_artifacts(left: &DlInfMa, right: &DlInfMa) {
    // Pool parity: same size, bitwise-identical candidates.
    assert_eq!(left.pool().len(), right.pool().len(), "pool size");
    for (a, b) in left
        .pool()
        .candidates()
        .iter()
        .zip(right.pool().candidates())
    {
        assert_eq!(a.id, b.id);
        assert_eq!(a.pos, b.pos, "candidate {:?} centroid", a.id);
        assert_eq!(a.profile, b.profile, "candidate {:?} profile", a.id);
    }

    // Sample parity: same address set, same candidate sets, same features.
    let left_samples: Vec<_> = left.samples().collect();
    assert_eq!(left_samples.len(), right.samples().count());
    for s in &left_samples {
        let t = right
            .sample(s.address)
            .unwrap_or_else(|| panic!("right pipeline lost {:?}", s.address));
        assert_eq!(s.candidates, t.candidates, "{:?} candidate set", s.address);
        assert_eq!(s.features, t.features, "{:?} features", s.address);
        assert_eq!(s.n_deliveries, t.n_deliveries);
        assert_eq!(s.poi_category, t.poi_category);
        assert_eq!(s.geocode, t.geocode);
    }
}

/// Trains both pipelines on identical splits and asserts their inference
/// agrees on every address.
fn assert_same_inference(left: &mut DlInfMa, right: &mut DlInfMa, ds: &dlinfma_synth::Dataset) {
    let split = spatial_split(ds, 0.6, 0.2);
    left.label_from_dataset(ds);
    right.label_from_dataset(ds);
    left.train(&split.train, &split.val);
    right.train(&split.train, &split.val);
    for a in &ds.addresses {
        assert_eq!(
            left.infer(a.id),
            right.infer(a.id),
            "inference diverged for {:?}",
            a.id
        );
    }
}

fn assert_parity(preset: Preset, pool_method: PoolMethod, seed: u64) {
    let (_, ds) = generate(preset, Scale::Tiny, seed);
    let mut cfg = config_for(preset);
    cfg.pool_method = pool_method;

    let mut batch = DlInfMa::prepare(&ds, cfg);
    let mut streamed = DlInfMa::from_engine(stream(&ds, cfg));

    assert_same_artifacts(&batch, &streamed);
    // The seeded model must infer identically from identical samples.
    assert_same_inference(&mut batch, &mut streamed, &ds);
}

/// Worker-count determinism: the whole pipeline — prepare AND post-training
/// inference — must be bit-for-bit identical at 1 worker and at 8. This is
/// the contract every parallel stage (ordered par_map merges, sequential
/// per-sample seed draws, caller-side ordered gradient sums) exists to
/// uphold.
fn assert_worker_parity(preset: Preset, seed: u64) {
    let (_, ds) = generate(preset, Scale::Tiny, seed);
    let base = config_for(preset);
    let prepare_at = |workers: usize| {
        let mut cfg = base;
        cfg.workers = workers;
        DlInfMa::prepare(&ds, cfg)
    };
    let mut serial = prepare_at(1);
    let mut pooled = prepare_at(8);
    assert_same_artifacts(&serial, &pooled);
    assert_same_inference(&mut serial, &mut pooled, &ds);
}

#[test]
fn batch_streaming_parity_dowbj() {
    assert_parity(Preset::DowBJ, PoolMethod::Hierarchical, 11);
}

#[test]
fn batch_streaming_parity_subbj() {
    assert_parity(Preset::SubBJ, PoolMethod::Hierarchical, 23);
}

#[test]
fn batch_streaming_parity_grid_pool() {
    assert_parity(Preset::DowBJ, PoolMethod::Grid, 7);
}

#[test]
fn worker_count_parity_dowbj() {
    assert_worker_parity(Preset::DowBJ, 11);
}

#[test]
fn worker_count_parity_subbj() {
    assert_worker_parity(Preset::SubBJ, 23);
}
