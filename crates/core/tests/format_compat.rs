//! Snapshot format compatibility — the gate that keeps old checkpoints
//! readable. A golden format-v1 checkpoint of the Tiny world is committed
//! under `tests/fixtures/golden-tiny-v1/`; this suite proves today's
//! decoder still reads it and re-encodes it **bit-identically**, and that
//! hostile mutations of a real engine snapshot always fail with a typed
//! error instead of a panic.
//!
//! See `tests/fixtures/golden-tiny-v1/README.md` for the version-bump
//! procedure (when the golden fixture may be regenerated, and how).
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dlinfma_core::snapshot::{
    engine_to_bytes, read_checkpoint, write_engine_checkpoint, RestoredEngine,
};
use dlinfma_core::{DlInfMaConfig, Engine};
use dlinfma_snap::{write_container, Sections};
use dlinfma_synth::{generate_with, replay, world_config, Dataset, Preset, Scale};
use std::path::Path;

/// The committed fixture: a day-2 checkpoint of the fixture world.
const FIXTURE_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden-tiny-v1");
/// Days ingested into the fixture checkpoint.
const FIXTURE_DAY: u32 = 2;
/// World seed the fixture was generated from.
const FIXTURE_SEED: u64 = 77;

/// The exact world the fixture was generated from. Changing the synthetic
/// generator regenerates different data — that's fine, the fixture is
/// committed bytes and this function is only needed to *resume* from it.
fn fixture_world() -> Dataset {
    let mut wc = world_config(Preset::DowBJ, Scale::Tiny);
    wc.sim.n_stations = 3;
    let (_, ds) = generate_with(&wc, FIXTURE_SEED);
    ds
}

/// The exact configuration the fixture was written under (fingerprinted
/// in its CONFIG section — decode fails loudly if this drifts).
fn fixture_cfg() -> DlInfMaConfig {
    let mut cfg = DlInfMaConfig::fast();
    cfg.model.max_epochs = 4;
    cfg.workers = 2;
    cfg
}

fn fixture_shard_path() -> std::path::PathBuf {
    Path::new(FIXTURE_DIR).join("day-00002/shard-0000.snap")
}

#[test]
fn golden_v1_fixture_decodes_and_reencodes_bit_identically() {
    let ds = fixture_world();
    let fixture_bytes = std::fs::read(fixture_shard_path()).expect(
        "golden fixture missing — run `cargo test -p dlinfma-core --test format_compat \
         -- --ignored regenerate` after a deliberate format bump",
    );
    let cp = read_checkpoint(
        Path::new(FIXTURE_DIR),
        FIXTURE_DAY,
        &ds.addresses,
        fixture_cfg(),
    )
    .expect("today's decoder must read the committed v1 checkpoint");
    assert_eq!(cp.days_ingested, FIXTURE_DAY);
    let RestoredEngine::Single(engine) = cp.engine else {
        panic!("fixture is a single-engine checkpoint");
    };
    assert_eq!(
        engine_to_bytes(&engine),
        fixture_bytes,
        "re-encoding the restored engine must reproduce the committed bytes exactly"
    );
    assert!(engine.n_trips() > 0, "fixture holds ingested trips");
    assert!(engine.n_stays() > 0, "fixture holds extracted stays");
}

#[test]
fn golden_v1_fixture_resumes_cleanly() {
    // Restoring the committed checkpoint and ingesting further days must
    // work (growth from a v1 checkpoint), and a second checkpoint written
    // from the resumed engine must round-trip.
    let ds = fixture_world();
    let cp = read_checkpoint(
        Path::new(FIXTURE_DIR),
        FIXTURE_DAY,
        &ds.addresses,
        fixture_cfg(),
    )
    .expect("fixture decodes");
    let RestoredEngine::Single(mut engine) = cp.engine else {
        panic!("fixture is a single-engine checkpoint");
    };
    let before = engine.n_trips();
    for batch in replay(&ds).skip(FIXTURE_DAY as usize) {
        engine.ingest(&batch);
    }
    assert!(engine.n_trips() > before, "resumed ingest adds trips");
    let bytes = engine_to_bytes(&engine);
    let dir = std::env::temp_dir().join(format!("dlinfma-compat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let day = FIXTURE_DAY + (replay(&ds).count() as u32 - FIXTURE_DAY);
    write_engine_checkpoint(&dir, day, &engine).unwrap();
    let cp = read_checkpoint(&dir, day, &ds.addresses, fixture_cfg()).unwrap();
    let RestoredEngine::Single(restored) = cp.engine else {
        panic!("expected a single engine");
    };
    assert_eq!(bytes, engine_to_bytes(&restored));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A small live engine snapshot for hostile-bytes sweeps: one ingested
/// day keeps the file small enough to mutate densely.
fn small_engine_bytes() -> (Dataset, Vec<u8>) {
    let ds = fixture_world();
    let mut engine = Engine::new(ds.addresses.clone(), fixture_cfg());
    let batch = replay(&ds).next().expect("tiny world has days");
    engine.ingest(&batch);
    (ds, engine_to_bytes(&engine))
}

#[test]
fn flipping_any_sampled_byte_never_panics_and_always_errors() {
    let (ds, bytes) = small_engine_bytes();
    let exec = std::sync::Arc::new(dlinfma_pool::Pool::new(2));
    // Flip every 97th byte (coprime to the section framing) — each flip
    // must be caught by the magic check, a CRC, or a typed decode error.
    for i in (0..bytes.len()).step_by(97) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x20;
        let result = dlinfma_core::snapshot::engine_from_bytes(
            &corrupt,
            ds.addresses.clone(),
            fixture_cfg(),
            std::sync::Arc::clone(&exec),
        );
        assert!(result.is_err(), "flipped byte {i} must not decode");
    }
}

#[test]
fn truncated_section_payloads_yield_typed_errors_not_panics() {
    // Rebuild the container with one section's payload truncated (CRC
    // recomputed, so the container layer passes) — this drives hostile
    // bytes into the *stage decoders*, which must error, never panic.
    let (ds, bytes) = small_engine_bytes();
    let exec = std::sync::Arc::new(dlinfma_pool::Pool::new(2));
    let parsed = Sections::parse(&bytes).expect("own bytes parse");
    let sections: Vec<(u32, Vec<u8>)> = parsed
        .iter()
        .map(|(tag, payload)| (tag, payload.to_vec()))
        .collect();
    for target in 0..sections.len() {
        let payload_len = sections[target].1.len();
        let step = (payload_len / 48).max(1);
        for cut in (0..payload_len).step_by(step) {
            let mutated: Vec<(u32, Vec<u8>)> = sections
                .iter()
                .enumerate()
                .map(|(i, (tag, payload))| {
                    if i == target {
                        (*tag, payload[..cut].to_vec())
                    } else {
                        (*tag, payload.clone())
                    }
                })
                .collect();
            let container = write_container(&mutated);
            let result = dlinfma_core::snapshot::engine_from_bytes(
                &container,
                ds.addresses.clone(),
                fixture_cfg(),
                std::sync::Arc::clone(&exec),
            );
            assert!(
                result.is_err(),
                "section {target} truncated to {cut} bytes must not decode"
            );
        }
    }
}

/// Regenerates the golden fixture. **Only run this after a deliberate
/// format-version bump** — see the README next to the fixture. The diff
/// it produces is the reviewable artifact of the bump.
#[test]
#[ignore = "rewrites the committed golden fixture; run only on a deliberate format bump"]
fn regenerate_golden_fixture() {
    let ds = fixture_world();
    let mut engine = Engine::new(ds.addresses.clone(), fixture_cfg());
    for batch in replay(&ds).take(FIXTURE_DAY as usize) {
        engine.ingest(&batch);
    }
    let path = write_engine_checkpoint(Path::new(FIXTURE_DIR), FIXTURE_DAY, &engine)
        .expect("fixture writes");
    println!("regenerated golden fixture at {}", path.display());
}
