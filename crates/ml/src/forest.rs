//! Random forest of CART trees (bagging + per-split feature subsampling).
//!
//! Matches the DLInfMA-RF variant's setting: 400 trees of maximum depth 10,
//! class weights 8:2.

use crate::matrix::FeatureMatrix;
use crate::tree::{RegressionTree, TreeConfig};
use dlinfma_pool::Pool;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Random forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits (feature subsampling is derived from
    /// `max_features`; `None` defaults to `sqrt(n_features)`).
    pub tree: TreeConfig,
    /// Class weights `(weight_of_0, weight_of_1)` applied to 0/1 targets.
    pub class_weights: Option<(f64, f64)>,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        // The paper's DLInfMA-RF settings.
        Self {
            n_trees: 400,
            tree: TreeConfig {
                max_depth: 10,
                ..TreeConfig::default()
            },
            class_weights: Some((0.2, 0.8)),
        }
    }
}

/// A fitted random-forest binary classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits `cfg.n_trees` trees on bootstrap resamples of `(x, labels)`.
    pub fn fit<R: Rng>(
        x: &FeatureMatrix,
        labels: &[bool],
        cfg: &RandomForestConfig,
        rng: &mut R,
    ) -> Self {
        Self::fit_pooled(x, labels, cfg, rng, &Pool::sequential())
    }

    /// [`RandomForest::fit`] growing trees data-parallel on `pool`. Each
    /// tree draws a private RNG seed *sequentially* from `rng` before the
    /// fan-out, so the fitted forest is identical at any worker count.
    pub fn fit_pooled<R: Rng>(
        x: &FeatureMatrix,
        labels: &[bool],
        cfg: &RandomForestConfig,
        rng: &mut R,
        pool: &Pool,
    ) -> Self {
        assert_eq!(x.n_rows(), labels.len(), "x/labels length mismatch");
        let n = x.n_rows();
        let y: Vec<f64> = labels.iter().map(|&b| f64::from(u8::from(b))).collect();
        let base_w: Vec<f64> = match cfg.class_weights {
            Some((w0, w1)) => labels.iter().map(|&b| if b { w1 } else { w0 }).collect(),
            None => vec![1.0; n],
        };
        let mut tree_cfg = cfg.tree;
        if tree_cfg.max_features.is_none() && x.n_cols() > 1 {
            tree_cfg.max_features = Some((x.n_cols() as f64).sqrt().ceil() as usize);
        }

        let seeds: Vec<u64> = (0..cfg.n_trees).map(|_| rng.gen()).collect();
        let (y, base_w, tree_cfg) = (&y, &base_w, &tree_cfg);
        let trees = pool.par_map(&seeds, |&seed| {
            let mut trng = StdRng::seed_from_u64(seed);
            // Bootstrap via multiplicity weights: cheaper than copying rows
            // and statistically identical for weighted CART.
            let mut w = vec![0.0f64; n];
            if n > 0 {
                for _ in 0..n {
                    w[trng.gen_range(0..n)] += 1.0;
                }
                for (wi, bw) in w.iter_mut().zip(base_w) {
                    *wi *= bw;
                }
            }
            RegressionTree::fit(x, y, Some(&w), tree_cfg, Some(&mut trng))
        });
        Self { trees }
    }

    /// Mean predicted probability over all trees.
    pub fn predict_proba(&self, row: &[f32]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict(row)).sum();
        (sum / self.trees.len() as f64).clamp(0.0, 1.0)
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn ring_data(rng: &mut StdRng, n: usize) -> (Vec<Vec<f32>>, Vec<bool>) {
        // Points inside radius 1 are positive, outside radius 2 negative —
        // non-linearly separable in raw coordinates.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let inner = i % 2 == 0;
            let r: f32 = if inner {
                rng.gen_range(0.0..1.0)
            } else {
                rng.gen_range(2.0..3.0)
            };
            let theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            rows.push(vec![r * theta.cos(), r * theta.sin()]);
            labels.push(inner);
        }
        (rows, labels)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let mut rng = StdRng::seed_from_u64(0);
        let (rows, labels) = ring_data(&mut rng, 400);
        let x = FeatureMatrix::from_rows(&rows);
        let cfg = RandomForestConfig {
            n_trees: 30,
            ..RandomForestConfig::default()
        };
        let rf = RandomForest::fit(&x, &labels, &cfg, &mut rng);
        assert_eq!(rf.n_trees(), 30);

        let (test_rows, test_labels) = ring_data(&mut rng, 200);
        let correct = test_rows
            .iter()
            .zip(&test_labels)
            .filter(|(r, &l)| rf.predict(r) == l)
            .count();
        assert!(correct >= 180, "accuracy {correct}/200");
    }

    #[test]
    fn empty_forest_predicts_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = RandomForestConfig {
            n_trees: 0,
            ..RandomForestConfig::default()
        };
        let rf = RandomForest::fit(&FeatureMatrix::from_rows(&[]), &[], &cfg, &mut rng);
        assert_eq!(rf.predict_proba(&[0.0]), 0.0);
    }

    #[test]
    fn pooled_fit_is_identical_across_worker_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let (rows, labels) = ring_data(&mut rng, 120);
        let x = FeatureMatrix::from_rows(&rows);
        let cfg = RandomForestConfig {
            n_trees: 12,
            ..RandomForestConfig::default()
        };
        let fit_at = |workers: usize| {
            let mut r = StdRng::seed_from_u64(42);
            RandomForest::fit_pooled(&x, &labels, &cfg, &mut r, &Pool::new(workers))
        };
        let reference = fit_at(1);
        for workers in [2, 8] {
            let rf = fit_at(workers);
            for row in rows.iter().take(40) {
                assert_eq!(
                    reference.predict_proba(row).to_bits(),
                    rf.predict_proba(row).to_bits(),
                    "forest must be bitwise-identical at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn probability_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let rows = vec![vec![0.0f32], vec![1.0]];
        let labels = vec![false, true];
        let rf = RandomForest::fit(
            &FeatureMatrix::from_rows(&rows),
            &labels,
            &RandomForestConfig {
                n_trees: 10,
                ..RandomForestConfig::default()
            },
            &mut rng,
        );
        for v in [-5.0f32, 0.0, 0.5, 1.0, 5.0] {
            let p = rf.predict_proba(&[v]);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
