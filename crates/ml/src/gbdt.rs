//! Gradient-boosted decision trees with logistic loss.
//!
//! Friedman-style boosting for binary classification: each stage fits a
//! shallow regression tree to the negative gradient of the logistic loss
//! and replaces each leaf value with a one-step Newton update. Matches the
//! DLInfMA-GBDT variant (150 boosting stages, class weights 8:2).

use crate::matrix::FeatureMatrix;
use crate::tree::{RegressionTree, TreeConfig};
use dlinfma_detcol::OrdMap;
use rand::Rng;

/// GBDT hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GbdtConfig {
    /// Number of boosting stages.
    pub n_stages: usize,
    /// Shrinkage applied to each stage's contribution.
    pub learning_rate: f64,
    /// Per-stage tree limits (boosting uses shallow trees).
    pub tree: TreeConfig,
    /// Class weights `(weight_of_0, weight_of_1)`.
    pub class_weights: Option<(f64, f64)>,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        // The paper's DLInfMA-GBDT setting: 150 stages.
        Self {
            n_stages: 150,
            learning_rate: 0.1,
            tree: TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            class_weights: Some((0.2, 0.8)),
        }
    }
}

/// A fitted gradient-boosted binary classifier.
#[derive(Debug, Clone)]
pub struct Gbdt {
    base_score: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Gbdt {
    /// Fits the boosted ensemble.
    #[allow(clippy::needless_range_loop)] // i couples rows, targets and scores
    pub fn fit<R: Rng>(x: &FeatureMatrix, labels: &[bool], cfg: &GbdtConfig, rng: &mut R) -> Self {
        assert_eq!(x.n_rows(), labels.len(), "x/labels length mismatch");
        let n = x.n_rows();
        let w: Vec<f64> = match cfg.class_weights {
            Some((w0, w1)) => labels.iter().map(|&b| if b { w1 } else { w0 }).collect(),
            None => vec![1.0; n],
        };
        let y: Vec<f64> = labels.iter().map(|&b| f64::from(u8::from(b))).collect();

        // Base score: weighted log-odds.
        let pos: f64 = y.iter().zip(&w).map(|(&yi, &wi)| yi * wi).sum();
        let total: f64 = w.iter().sum();
        let p0 = if total > 0.0 {
            (pos / total).clamp(1e-6, 1.0 - 1e-6)
        } else {
            0.5
        };
        let base_score = (p0 / (1.0 - p0)).ln();

        let mut f: Vec<f64> = vec![base_score; n];
        let mut trees = Vec::with_capacity(cfg.n_stages);
        for _ in 0..cfg.n_stages {
            if n == 0 {
                break;
            }
            // Negative gradient of weighted logistic loss: w * (y - p).
            let residual: Vec<f64> = y
                .iter()
                .zip(&f)
                .map(|(&yi, &fi)| yi - sigmoid(fi))
                .collect();
            let mut tree = RegressionTree::fit(x, &residual, Some(&w), &cfg.tree, Some(rng));

            // Newton leaf update: sum(w*(y-p)) / sum(w*p*(1-p)) per leaf.
            let mut num: OrdMap<usize, f64> = OrdMap::new();
            let mut den: OrdMap<usize, f64> = OrdMap::new();
            for i in 0..n {
                let leaf = tree.apply(x.row(i));
                let p = sigmoid(f[i]);
                *num.entry(leaf).or_default() += w[i] * (y[i] - p);
                *den.entry(leaf).or_default() += w[i] * p * (1.0 - p);
            }
            for (&leaf, &nv) in &num {
                let dv = den[&leaf].max(1e-9);
                tree.set_leaf_value(leaf, nv / dv);
            }

            for i in 0..n {
                f[i] += cfg.learning_rate * tree.predict(x.row(i));
            }
            trees.push(tree);
        }

        Self {
            base_score,
            learning_rate: cfg.learning_rate,
            trees,
        }
    }

    /// Raw additive score (log-odds).
    pub fn decision_function(&self, row: &[f32]) -> f64 {
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Probability that the label is `true`.
    pub fn predict_proba(&self, row: &[f32]) -> f64 {
        sigmoid(self.decision_function(row))
    }

    /// Hard decision at probability 0.5.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Number of fitted stages.
    pub fn n_stages(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(0);
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![false, true, true, false];
        let x = FeatureMatrix::from_rows(&rows);
        let cfg = GbdtConfig {
            n_stages: 50,
            ..GbdtConfig::default()
        };
        let model = Gbdt::fit(&x, &labels, &cfg, &mut rng);
        for (r, &l) in rows.iter().zip(&labels) {
            assert_eq!(model.predict(r), l, "row {r:?}");
        }
    }

    #[test]
    fn probability_increases_with_signal() {
        let mut rng = StdRng::seed_from_u64(1);
        // y = 1 iff x > 0.5, with noise-free data.
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 / 100.0]).collect();
        let labels: Vec<bool> = (0..100).map(|i| i > 50).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let model = Gbdt::fit(
            &x,
            &labels,
            &GbdtConfig {
                n_stages: 30,
                ..GbdtConfig::default()
            },
            &mut rng,
        );
        assert!(model.predict_proba(&[0.9]) > 0.9);
        assert!(model.predict_proba(&[0.1]) < 0.1);
        // 0.9 and 0.6 may share a leaf on separable data, so only demand
        // monotonicity across the boundary, not strictly within a side.
        assert!(model.predict_proba(&[0.9]) >= model.predict_proba(&[0.6]));
        assert!(model.predict_proba(&[0.6]) > model.predict_proba(&[0.4]));
    }

    #[test]
    fn empty_training_set() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = Gbdt::fit(
            &FeatureMatrix::from_rows(&[]),
            &[],
            &GbdtConfig::default(),
            &mut rng,
        );
        let p = model.predict_proba(&[0.0]);
        assert!((p - 0.5).abs() < 1e-9, "uninformed prior, got {p}");
    }

    #[test]
    fn all_one_class() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows = vec![vec![0.0f32], vec![1.0], vec![2.0]];
        let labels = vec![true, true, true];
        let model = Gbdt::fit(
            &FeatureMatrix::from_rows(&rows),
            &labels,
            &GbdtConfig {
                n_stages: 5,
                ..GbdtConfig::default()
            },
            &mut rng,
        );
        assert!(model.predict_proba(&[0.5]) > 0.9);
    }

    #[test]
    fn class_weights_shift_decision() {
        let mut rng = StdRng::seed_from_u64(4);
        // Identical features, 50/50 labels: decision follows the weights.
        let rows = vec![vec![0.0f32]; 10];
        let labels: Vec<bool> = (0..10).map(|i| i < 5).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let upweight_pos = Gbdt::fit(
            &x,
            &labels,
            &GbdtConfig {
                n_stages: 5,
                class_weights: Some((0.2, 0.8)),
                ..GbdtConfig::default()
            },
            &mut rng,
        );
        assert!(upweight_pos.predict_proba(&[0.0]) > 0.5);
    }
}
