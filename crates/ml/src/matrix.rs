//! A dense row-major feature matrix.

/// A dense `n_rows x n_cols` matrix of `f32` features, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f32>,
    n_rows: usize,
    n_cols: usize,
}

impl FeatureMatrix {
    /// Creates a matrix from flat row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != n_rows * n_cols`.
    pub fn new(n_rows: usize, n_cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "data length mismatch");
        Self {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Builds a matrix from per-sample feature vectors.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged feature rows");
            data.extend_from_slice(r);
        }
        Self {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Number of samples.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Feature vector of sample `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Feature `j` of sample `i`.
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.n_cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.at(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn empty_matrix() {
        let m = FeatureMatrix::from_rows(&[]);
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
    }
}
