//! Pairwise ranking harness.
//!
//! GeoRank and the DLInfMA-RkDT / DLInfMA-RkNet variants train a binary
//! model on *pairs* of candidates — "is candidate `i` a better delivery
//! location than candidate `j`?" — and infer by letting every candidate play
//! every other and counting wins (the paper's voting scheme).

use crate::matrix::FeatureMatrix;

/// Anything that can judge an ordered pair of feature vectors, returning the
/// probability that the first is the better candidate.
pub trait PairwiseScorer {
    /// Probability that `a` should rank above `b`.
    fn score_pair(&self, a: &[f32], b: &[f32]) -> f64;
}

impl<F: Fn(&[f32], &[f32]) -> f64> PairwiseScorer for F {
    fn score_pair(&self, a: &[f32], b: &[f32]) -> f64 {
        self(a, b)
    }
}

/// Builds pairwise training rows from one group of candidates.
///
/// For a group with positive candidate `pos`, emits for every negative `j`
/// both orderings: `(pos ++ x_j, true)` and `(x_j ++ pos, false)`. Rows are
/// appended to `rows`/`labels`.
pub fn make_training_pairs(
    features: &FeatureMatrix,
    pos: usize,
    rows: &mut Vec<Vec<f32>>,
    labels: &mut Vec<bool>,
) {
    assert!(pos < features.n_rows(), "positive index out of range");
    for j in 0..features.n_rows() {
        if j == pos {
            continue;
        }
        let mut fwd = features.row(pos).to_vec();
        fwd.extend_from_slice(features.row(j));
        rows.push(fwd);
        labels.push(true);
        let mut rev = features.row(j).to_vec();
        rev.extend_from_slice(features.row(pos));
        rows.push(rev);
        labels.push(false);
    }
}

/// Runs the round-robin vote: each ordered pair `(i, j)` is scored and `i`
/// gets a win when the scorer says it ranks above `j` (p > 0.5). Returns the
/// index with the most wins; ties break toward the lower index (stable).
///
/// Returns `None` for an empty candidate set.
#[allow(clippy::needless_range_loop)] // i/j index features and the tally
pub fn vote_best<S: PairwiseScorer>(features: &FeatureMatrix, scorer: &S) -> Option<usize> {
    let n = features.n_rows();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(0);
    }
    let mut wins = vec![0u32; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if scorer.score_pair(features.row(i), features.row(j)) > 0.5 {
                wins[i] += 1;
            }
        }
    }
    wins.iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{TreeClassifier, TreeConfig};

    #[test]
    fn vote_best_empty_and_single() {
        let scorer = |_: &[f32], _: &[f32]| 1.0;
        assert_eq!(vote_best(&FeatureMatrix::from_rows(&[]), &scorer), None);
        assert_eq!(
            vote_best(&FeatureMatrix::from_rows(&[vec![1.0]]), &scorer),
            Some(0)
        );
    }

    #[test]
    fn vote_best_follows_a_transitive_scorer() {
        // Scorer: first feature decides; larger wins.
        let scorer = |a: &[f32], b: &[f32]| if a[0] > b[0] { 0.9 } else { 0.1 };
        let feats = FeatureMatrix::from_rows(&[vec![3.0], vec![7.0], vec![5.0], vec![1.0]]);
        assert_eq!(vote_best(&feats, &scorer), Some(1));
    }

    #[test]
    fn ties_break_to_lower_index() {
        let scorer = |_: &[f32], _: &[f32]| 0.0; // nobody ever wins
        let feats = FeatureMatrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0]]);
        assert_eq!(vote_best(&feats, &scorer), Some(0));
    }

    #[test]
    fn make_pairs_counts_and_symmetry() {
        let feats = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        make_training_pairs(&feats, 1, &mut rows, &mut labels);
        assert_eq!(rows.len(), 4); // 2 negatives x 2 orderings
        assert_eq!(labels, vec![true, false, true, false]);
        assert_eq!(rows[0], vec![3.0, 4.0, 1.0, 2.0]);
        assert_eq!(rows[1], vec![1.0, 2.0, 3.0, 4.0]);
    }

    /// Regression: a scorer that returns NaN (an untrained or diverged
    /// model) must never panic the voting path — every `NaN > 0.5`
    /// comparison is simply false, so the first index wins by tie-break.
    #[test]
    fn nan_scores_do_not_panic_vote_best() {
        let rows: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32, 1.0]).collect();
        let feats = FeatureMatrix::from_rows(&rows);
        let scorer = |_: &[f32], _: &[f32]| f64::NAN;
        assert_eq!(vote_best(&feats, &scorer), Some(0));
    }

    /// End-to-end: a decision-tree pairwise ranker (the GeoRank construction)
    /// learns to pick the candidate with the largest first feature.
    #[test]
    fn tree_ranker_end_to_end() {
        // Groups of 4 candidates; positive = argmax of feature 0.
        let groups: Vec<Vec<Vec<f32>>> = (0..30)
            .map(|g| {
                (0..4)
                    .map(|c| vec![((g * 7 + c * 13) % 10) as f32, (c % 3) as f32])
                    .collect()
            })
            .collect();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for g in &groups {
            let feats = FeatureMatrix::from_rows(g);
            let pos = g
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a[0].total_cmp(&b[0]))
                .map(|(i, _)| i)
                .unwrap();
            make_training_pairs(&feats, pos, &mut rows, &mut labels);
        }
        let x = FeatureMatrix::from_rows(&rows);
        let clf = TreeClassifier::fit(
            &x,
            &labels,
            None,
            &TreeConfig {
                max_leaf_nodes: 1024,
                ..TreeConfig::default()
            },
            None as Option<&mut rand::rngs::ThreadRng>,
        );
        let scorer = |a: &[f32], b: &[f32]| {
            let mut row = a.to_vec();
            row.extend_from_slice(b);
            clf.predict_proba(&row)
        };
        // Held-out groups drawn from the same value distribution; the
        // `c * 13 % 10` offsets (0, 3, 6, 9) keep feature 0 distinct within
        // a group so the argmax target is unambiguous.
        let mut correct = 0;
        for g in 100..120 {
            let cand: Vec<Vec<f32>> = (0..4)
                .map(|c| vec![((g * 7 + c * 13) % 10) as f32, (c % 2) as f32])
                .collect();
            let want = cand
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a[0].total_cmp(&b[0]))
                .map(|(i, _)| i)
                .unwrap();
            let feats = FeatureMatrix::from_rows(&cand);
            if vote_best(&feats, &scorer) == Some(want) {
                correct += 1;
            }
        }
        assert!(correct >= 16, "ranker accuracy {correct}/20");
    }
}
