#![warn(missing_docs)]
//! Classical machine learning used by the paper's baselines and variants.
//!
//! * [`RegressionTree`] — weighted CART with best-first growth (supports the
//!   `max_leaf_nodes = 1024` setting of GeoRank / DLInfMA-RkDT);
//! * [`TreeClassifier`] — binary classification on top of a regression tree
//!   over 0/1 targets with class weights (the paper uses 8:2);
//! * [`RandomForest`] — bagged trees with per-split feature subsampling
//!   (DLInfMA-RF: 400 trees, depth 10);
//! * [`Gbdt`] — gradient-boosted trees with logistic loss and Newton leaf
//!   updates (DLInfMA-GBDT: 150 stages);
//! * [`pairwise`] — the pairwise-ranking harness used by GeoRank and the
//!   RkDT/RkNet variants (train on candidate pairs, infer by vote counting).

pub mod forest;
pub mod gbdt;
pub mod matrix;
pub mod pairwise;
pub mod tree;

pub use forest::{RandomForest, RandomForestConfig};
pub use gbdt::{Gbdt, GbdtConfig};
pub use matrix::FeatureMatrix;
pub use pairwise::{make_training_pairs, vote_best, PairwiseScorer};
pub use tree::{RegressionTree, TreeClassifier, TreeConfig};
